//! Packet-level tracing for debugging router logic: attach a
//! [`CsvTracer`](netsim::trace::CsvTracer) to a run and inspect every
//! enqueue, drop, delivery and control message in simulation order.
//!
//! ```text
//! cargo run --release -p scenarios --example trace_debugging
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use corelite::{CoreliteConfig, CoreliteCore, CoreliteEdge};
use netsim::flow::FlowSpec;
use netsim::link::LinkSpec;
use netsim::logic::ForwardLogic;
use netsim::topology::TopologyBuilder;
use netsim::trace::{CountingTracer, CsvTracer};
use sim_core::time::{SimDuration, SimTime};

fn main() {
    // A short congested run with the CSV tracer capturing everything.
    let cfg = CoreliteConfig::default();
    let tracer = Rc::new(RefCell::new(CsvTracer::new(Vec::new())));
    let counter = Rc::new(RefCell::new(CountingTracer::default()));

    let mut b = TopologyBuilder::new(5);
    b.tracer(tracer.clone());
    let e1 = b.node("edge1", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
    let e2 = b.node("edge2", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
    let core = b.node("core", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
    let sink = b.node("sink", |_| Box::new(ForwardLogic));
    let access = LinkSpec::new(40_000_000, SimDuration::from_millis(1), 400);
    b.link(e1, core, access);
    b.link(e2, core, access);
    b.link(
        core,
        sink,
        LinkSpec::new(1_000_000, SimDuration::from_millis(10), 40), // 125 pkt/s
    );
    b.flow(FlowSpec::new(vec![e1, core, sink], 1).active(SimTime::ZERO, None));
    b.flow(FlowSpec::new(vec![e2, core, sink], 2).active(SimTime::ZERO, None));

    let end = SimTime::from_secs(30);
    let mut net = b.build();
    net.run_until(end);
    let report = net.into_report(end);

    let rows = tracer.borrow().rows();
    let csv_tracer = Rc::try_unwrap(tracer).expect("sole owner").into_inner();
    let text = String::from_utf8(csv_tracer.into_inner()).expect("utf8 trace");

    println!("captured {rows} packet-level events; first 12 rows:\n");
    for line in text.lines().take(13) {
        println!("  {line}");
    }
    // The control rows are the marker feedback driving the rate control.
    let feedback_rows = text
        .lines()
        .filter(|l| l.contains(",control,") && l.contains("feedback=true"))
        .count();
    println!("\nmarker-feedback control events: {feedback_rows}");
    println!(
        "deliveries traced: {} (matches the report: {})",
        text.lines().filter(|l| l.contains(",deliver,")).count(),
        report
            .flows
            .iter()
            .map(|f| f.delivered_packets)
            .sum::<u64>(),
    );
    println!(
        "\nPipe the CSV into your own tooling, or attach a CountingTracer\n\
         ({:?}) when only totals matter.",
        *counter.borrow()
    );
}
