//! Quickstart: two flows with weights 1 and 2 share a 1 Mbps bottleneck
//! under Corelite, and the network allocates the link in a 1:2 ratio
//! without dropping a packet.
//!
//! ```text
//! cargo run --release -p scenarios --example quickstart
//! ```

use corelite::{CoreliteConfig, CoreliteCore, CoreliteEdge};
use netsim::flow::FlowSpec;
use netsim::link::LinkSpec;
use netsim::logic::ForwardLogic;
use netsim::topology::TopologyBuilder;
use netsim::FlowId;
use sim_core::time::{SimDuration, SimTime};

fn main() {
    let cfg = CoreliteConfig::default(); // the paper's parameters
    let mut b = TopologyBuilder::new(42);

    // Two ingress edge routers, one core router, one egress.
    let edge_a = b.node("edge-a", |seed| {
        Box::new(CoreliteEdge::new(seed, cfg.clone()))
    });
    let edge_b = b.node("edge-b", |seed| {
        Box::new(CoreliteEdge::new(seed, cfg.clone()))
    });
    let core = b.node("core", |seed| {
        Box::new(CoreliteCore::new(seed, cfg.clone()))
    });
    let sink = b.node("sink", |_| Box::new(ForwardLogic));

    // Uncongested access links into the core; a 1 Mbps (125 pkt/s at 1 KB
    // packets) bottleneck out of it.
    let access = LinkSpec::new(40_000_000, SimDuration::from_millis(1), 400);
    b.link(edge_a, core, access);
    b.link(edge_b, core, access);
    b.link(
        core,
        sink,
        LinkSpec::new(1_000_000, SimDuration::from_millis(10), 40),
    );

    // Flow 0 has rate weight 1, flow 1 rate weight 2.
    b.flow(FlowSpec::new(vec![edge_a, core, sink], 1).active(SimTime::ZERO, None));
    b.flow(FlowSpec::new(vec![edge_b, core, sink], 2).active(SimTime::ZERO, None));

    let horizon = SimTime::from_secs(120);
    let mut net = b.build();
    net.run_until(horizon);
    let report = net.into_report(horizon);

    println!("After {horizon} of simulated time:");
    for i in 0..2 {
        let flow = FlowId::from_index(i);
        let rate = report
            .allotted_rate(flow)
            .and_then(|s| s.mean_in(SimTime::from_secs(90), horizon))
            .unwrap_or(0.0);
        let fr = report.flow(flow);
        println!(
            "  flow {} (weight {}): allotted ≈ {rate:6.1} pkt/s, delivered {} packets, {} drops",
            i + 1,
            fr.weight,
            fr.delivered_packets,
            fr.total_drops(),
        );
    }
    println!(
        "  bottleneck utilization: {:.0}%",
        report.links[2].utilization * 100.0
    );
    println!("  total drops anywhere: {}", report.total_drops());
    println!("\nWeighted rate fairness: the weight-2 flow receives ~2x the weight-1 flow,");
    println!("with no per-flow state at the core router and no packet loss.");
}
