//! Service classes: the deployment scenario from the paper's
//! introduction. A network administrator offers three rate classes —
//! bronze (weight 1), silver (weight 2), gold (weight 4) — and customers
//! pick a class. Corelite then delivers end-to-end rates proportional to
//! the class weights, re-dividing bandwidth automatically as customers
//! come and go, with zero per-flow state in the backbone.
//!
//! ```text
//! cargo run --release -p scenarios --example service_classes
//! ```

use corelite::CoreliteConfig;
use scenarios::discipline::Corelite;
use scenarios::runner::{Scenario, ScenarioFlow};
use scenarios::topology::{Route, TopologySpec};
use sim_core::time::SimTime;

#[derive(Clone, Copy)]
enum Class {
    Bronze,
    Silver,
    Gold,
}

impl Class {
    fn weight(self) -> u32 {
        match self {
            Class::Bronze => 1,
            Class::Silver => 2,
            Class::Gold => 4,
        }
    }
    fn name(self) -> &'static str {
        match self {
            Class::Bronze => "bronze",
            Class::Silver => "silver",
            Class::Gold => "gold",
        }
    }
}

fn main() {
    use Class::*;
    // Eight customers on the backbone's first congested link. The two
    // gold customers join halfway through the day.
    let customers: Vec<(Class, u64)> = vec![
        (Bronze, 0),
        (Bronze, 0),
        (Bronze, 0),
        (Silver, 0),
        (Silver, 0),
        (Silver, 0),
        (Gold, 150),
        (Gold, 150),
    ];
    let scenario = Scenario {
        topology: TopologySpec::paper_chain(),
        faults: Default::default(),
        churn: None,
        name: "service_classes",
        flows: customers
            .iter()
            .map(|&(class, start)| ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: class.weight(),
                min_rate: 0.0,
                activations: vec![(SimTime::from_secs(start), None)],
            })
            .collect(),
        horizon: SimTime::from_secs(300),
        seed: 7,
        shards: 1,
    };
    let result = scenario.run(&Corelite::new(CoreliteConfig::default()));

    let phase = |label: &str, from: u64, to: u64| {
        println!("\n{label} (t ∈ [{from}s, {to}s)):");
        let expected = scenario.expected_rates_at(SimTime::from_secs((from + to) / 2));
        for (i, &(class, _)) in customers.iter().enumerate() {
            let measured = result.mean_rate_in(i, SimTime::from_secs(from), SimTime::from_secs(to));
            println!(
                "  customer {} ({:6}, w={}): {measured:6.1} pkt/s  (weighted fair share {:5.1})",
                i + 1,
                class.name(),
                class.weight(),
                expected[i]
            );
        }
    };

    phase("Before the gold customers arrive", 100, 150);
    phase("After the gold customers arrive", 250, 300);
    println!(
        "\ntotal packet drops in the backbone: {}",
        result.total_drops()
    );
    println!("(no core router kept any per-flow state)");
}
