//! Head-to-head: Corelite vs weighted CSFQ on the paper's §4.2 scenario
//! (10 flows, weights ⌈i/2⌉, simultaneous start). Prints the steady-state
//! accuracy, the drop counts, and the per-flow settling times for both
//! disciplines.
//!
//! ```text
//! cargo run --release -p scenarios --example corelite_vs_csfq
//! ```

use scenarios::discipline::{Corelite, Csfq};
use scenarios::report::{convergence_summary, steady_state_summary, window_jain_index};
use scenarios::{fig5_6, Discipline};
use sim_core::time::{SimDuration, SimTime};

fn main() {
    let seed = 20000;
    let disciplines: Vec<Box<dyn Discipline>> = vec![
        Box::new(Corelite::new(corelite::CoreliteConfig::default())),
        Box::new(Csfq::new(csfq::CsfqConfig::default())),
    ];
    for discipline in disciplines {
        let scenario = fig5_6(seed);
        let horizon = scenario.horizon;
        let result = scenario.run(discipline.as_ref());
        println!("\n=== {} ===", result.discipline_name);
        let from = SimTime::from_secs(60);
        for s in steady_state_summary(&result, from, horizon) {
            println!(
                "  flow {:2} (w{}): measured {:6.1} pkt/s, share {:6.1} ({:4.1}% off)",
                s.flow,
                s.weight,
                s.measured,
                s.expected,
                s.relative_error() * 100.0
            );
        }
        println!(
            "  Jain index {:.4}, total drops {}",
            window_jain_index(&result, from, horizon),
            result.total_drops()
        );
        let conv = convergence_summary(
            &result,
            horizon - SimDuration::from_secs(1),
            0.25,
            SimDuration::from_secs(10),
        );
        let settled: Vec<String> = conv
            .iter()
            .map(|(f, t)| match t {
                Some(t) => format!("f{f}:{:.0}s", t.as_secs_f64()),
                None => format!("f{f}:–"),
            })
            .collect();
        println!("  settling times: {}", settled.join(" "));
    }
    println!(
        "\nShape to look for (paper §4.2): both disciplines are fair in steady\n\
         state, but Corelite gets there without dropping a single packet,\n\
         while CSFQ's fair-share mis-estimation during startup costs it\n\
         hundreds of drops — losses that hit flows before they ever reach\n\
         their fair share."
    );
}
