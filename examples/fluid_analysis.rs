//! The paper's convergence *analysis*, executable: compare the fluid
//! model's prediction of the Corelite control loop against the packet
//! simulator on the same flow population, then use the fluid model to
//! answer a what-if (adding a contracted flow) in microseconds.
//!
//! ```text
//! cargo run --release -p scenarios --example fluid_analysis
//! ```

use corelite::{CoreliteConfig, FluidModel};
use scenarios::discipline::Corelite;
use scenarios::runner::{Scenario, ScenarioFlow};
use scenarios::topology::{Route, TopologySpec};
use sim_core::time::SimTime;

fn main() {
    let weights = [1u32, 2, 3];

    // Fluid model: thousands of control epochs in microseconds.
    let mut fluid = FluidModel::new(CoreliteConfig::default(), 500.0);
    for &w in &weights {
        fluid.add_flow(w as f64, 0.0, 1.0);
    }
    fluid.run(8_000);
    let fluid_rates = fluid.rates();

    // Packet simulator: the ground truth, at packet granularity.
    let scenario = Scenario {
        topology: TopologySpec::paper_chain(),
        faults: Default::default(),
        churn: None,
        name: "fluid_vs_packets",
        flows: weights
            .iter()
            .map(|&w| ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: w,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            })
            .collect(),
        horizon: SimTime::from_secs(260),
        seed: 3,
        shards: 1,
    };
    let result = scenario.run(&Corelite::new(CoreliteConfig::default()));

    println!("flow  weight  fluid prediction  packet simulation  analytic share");
    let expect = fluid.expected_rates();
    for (i, &w) in weights.iter().enumerate() {
        let measured = result.mean_rate_in(i, SimTime::from_secs(200), SimTime::from_secs(260));
        println!(
            "  {:2}    {w}        {:7.1}            {measured:7.1}         {:7.1}",
            i + 1,
            fluid_rates[i],
            expect[i]
        );
    }

    // What-if, answered without running packets: a customer wants a
    // 200 pkt/s contract — what happens to everyone else?
    let mut what_if = FluidModel::new(CoreliteConfig::default(), 500.0);
    for &w in &weights {
        what_if.add_flow(w as f64, 0.0, 1.0);
    }
    what_if.add_flow(1.0, 200.0, 200.0);
    what_if.run(8_000);
    println!("\nwhat-if: admit a weight-1 flow with a 200 pkt/s contract:");
    for (i, r) in what_if.rates().iter().enumerate() {
        println!("  flow {}: {r:6.1} pkt/s", i + 1);
    }
    println!(
        "\nThe fluid recursion is the paper's §2.2 convergence argument made\n\
         executable; EXPERIMENTS.md shows it agrees with the packet model."
    );
}
