//! Multi-bottleneck max-min: the classic "parking lot" shape on the
//! paper's core chain. A long flow crosses all three congested links
//! while local flows load each link; Corelite's max-over-cores feedback
//! rule gives the long flow its full weighted max-min share instead of
//! punishing it once per congested hop.
//!
//! The analytic reference comes from `fairness::MaxMinProblem`, so the
//! example doubles as a live demonstration of the water-filling solver.
//!
//! ```text
//! cargo run --release -p scenarios --example parking_lot
//! ```

use corelite::CoreliteConfig;
use fairness::maxmin::MaxMinProblem;
use scenarios::discipline::Corelite;
use scenarios::runner::{Scenario, ScenarioFlow};
use scenarios::topology::{Route, TopologySpec, LINK_CAPACITY_PPS};
use sim_core::time::SimTime;

fn main() {
    // Flow 0: the long flow over C1→C4 (three congested links).
    // Flows 1-6: two local flows per congested link.
    let mut flows = vec![ScenarioFlow {
        transport: Default::default(),
        path: Route::new(0, 3).into(),
        weight: 2,
        min_rate: 0.0,
        activations: vec![(SimTime::ZERO, None)],
    }];
    for link in 0..3 {
        for _ in 0..2 {
            flows.push(ScenarioFlow {
                transport: Default::default(),
                path: Route::new(link, link + 1).into(),
                weight: 2,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            });
        }
    }
    let scenario = Scenario {
        topology: TopologySpec::paper_chain(),
        faults: Default::default(),
        churn: None,
        name: "parking_lot",
        flows,
        horizon: SimTime::from_secs(200),
        seed: 99,
        shards: 1,
    };

    // Analytic weighted max-min via water-filling.
    let mut problem = MaxMinProblem::new();
    let links: Vec<_> = (0..3).map(|_| problem.link(LINK_CAPACITY_PPS)).collect();
    let mut refs = vec![problem.flow(2.0, links.clone())];
    for &link in &links {
        for _ in 0..2 {
            refs.push(problem.flow(2.0, [link]));
        }
    }
    let alloc = problem.solve();

    let result = scenario.run(&Corelite::new(CoreliteConfig::default()));
    println!("parking lot, equal weights: every flow should get C/3 ≈ 166.7 pkt/s\n");
    println!("flow  hops  analytic  measured");
    for (i, r) in refs.iter().enumerate() {
        let measured = result.mean_rate_in(i, SimTime::from_secs(150), SimTime::from_secs(200));
        let hops = scenario.flows[i].path.congested_links();
        println!(
            "  {:2}    {hops}    {:7.1}   {measured:7.1}",
            i + 1,
            alloc.rate(*r)
        );
    }
    println!("\ntotal drops: {}", result.total_drops());
    println!(
        "\nThe long flow crosses three congested links yet keeps (approximately)\n\
         the same rate as the one-hop flows — the edge reacts to the *maximum*\n\
         per-core feedback, so it is throttled by its bottleneck, not by the\n\
         sum of all congested hops (paper §2.2 step 3)."
    );
}
