//! Two Corelite clouds in series, joined by an inter-cloud gateway — the
//! deployment story from the paper's §2: each network cloud runs Corelite
//! independently, and a cross-cloud flow is re-shaped at the gateway edge
//! router between them.
//!
//! ```text
//!            cloud A                 cloud B
//!   E ──► A1 ══► A2 ──► G ──► B1 ══► B2 ──► X
//!                             ▲
//!                       EB ───┘   (local competitor in cloud B)
//! ```
//!
//! The cross-cloud flow ends up with the *minimum* of its per-cloud
//! weighted fair shares; the gateway's buffer absorbs the mismatch.
//!
//! ```text
//! cargo run --release -p scenarios --example two_clouds
//! ```

use corelite::{CoreliteConfig, CoreliteCore, CoreliteEdge, CoreliteGateway};
use netsim::flow::FlowSpec;
use netsim::link::LinkSpec;
use netsim::logic::ForwardLogic;
use netsim::topology::TopologyBuilder;
use netsim::FlowId;
use sim_core::time::{SimDuration, SimTime};

fn main() {
    let cfg = CoreliteConfig::default();
    let mut b = TopologyBuilder::new(2026);

    let e = b.node("E", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
    let a1 = b.node("A1", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
    let a2 = b.node("A2", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
    let g = b.node("G", |s| Box::new(CoreliteGateway::new(s, cfg.clone(), 200)));
    let b1 = b.node("B1", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
    let b2 = b.node("B2", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
    let x = b.node("X", |_| Box::new(ForwardLogic));
    let eb = b.node("EB", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
    let xb = b.node("XB", |_| Box::new(ForwardLogic));

    let fast = LinkSpec::new(40_000_000, SimDuration::from_millis(5), 400);
    let bottleneck = LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40);
    b.link(e, a1, fast);
    b.link(a1, a2, bottleneck); // cloud A's congested link (uncontested)
    b.link(a2, g, fast);
    b.link(g, b1, fast);
    b.link(b1, b2, bottleneck); // cloud B's congested link (shared 1:1)
    b.link(b2, x, fast);
    b.link(eb, b1, fast);
    b.link(b2, xb, fast);

    let cross = b.flow(FlowSpec::new(vec![e, a1, a2, g, b1, b2, x], 1).active(SimTime::ZERO, None));
    let local = b.flow(FlowSpec::new(vec![eb, b1, b2, xb], 1).active(SimTime::ZERO, None));

    let end = SimTime::from_secs(200);
    let mut net = b.build();
    net.run_until(end);
    let report = net.into_report(end);

    let goodput = |f: FlowId| {
        report
            .flow(f)
            .mean_goodput_in(SimTime::from_secs(150), end)
            .unwrap_or(0.0)
    };
    println!("steady state (t ∈ [150s, 200s)):");
    println!(
        "  cross-cloud flow: {:6.1} pkt/s  (cloud A offers 500, cloud B's fair share is 250)",
        goodput(cross)
    );
    println!("  cloud-B local   : {:6.1} pkt/s", goodput(local));
    println!(
        "  gateway: {} markers injected downstream, {} feedback received, {} buffer drops (peak {} pkts)",
        report.counter_total("gateway_markers_injected"),
        report.counter_total("gateway_feedback_received"),
        report.counter_total("gateway_buffer_drops"),
        report.counter_total("gateway_buffer_peak"),
    );
    println!(
        "\nEach cloud enforces weighted fairness independently; the gateway\n\
         re-marks and re-shapes the flow for the downstream cloud, so no\n\
         mechanism ever spans more than one cloud (paper §2)."
    );
}
