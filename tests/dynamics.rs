//! Integration test: flows joining and leaving redistribute bandwidth
//! gracefully (the paper's §4.1/§4.3 dynamics claims).

use corelite::CoreliteConfig;
use csfq::CsfqConfig;
use scenarios::discipline::{Corelite, Csfq};
use scenarios::runner::{Scenario, ScenarioFlow};
use scenarios::topology::{Route, TopologySpec};
use sim_core::time::SimTime;

/// Two resident flows (weights 1 and 2) plus a weight-3 visitor active
/// during [200 s, 280 s), all over the first congested link. The long
/// lead-in gives the residents time to reach their 167/333 pkt/s shares
/// at the paper's +α-per-epoch linear increase.
fn join_leave(seed: u64) -> Scenario {
    Scenario {
        topology: TopologySpec::paper_chain(),
        faults: Default::default(),
        churn: None,
        name: "join_leave",
        flows: vec![
            ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: 1,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            },
            ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: 2,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            },
            ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: 3,
                min_rate: 0.0,
                activations: vec![(SimTime::from_secs(200), Some(SimTime::from_secs(280)))],
            },
        ],
        horizon: SimTime::from_secs(420),
        seed,
        shards: 1,
    }
}

fn phase_rates(result: &scenarios::ExperimentResult, from: u64, to: u64) -> Vec<f64> {
    (0..3)
        .map(|i| result.mean_rate_in(i, SimTime::from_secs(from), SimTime::from_secs(to)))
        .collect()
}

#[test]
fn corelite_redistributes_on_join_and_leave() {
    let result = join_leave(21).run(&Corelite::new(CoreliteConfig::default()));

    // Before the visitor: shares 167/333 (weights 1:2 on 500 pkt/s).
    let before = phase_rates(&result, 180, 200);
    assert!((before[0] - 167.0).abs() / 167.0 < 0.3, "before {before:?}");
    assert!((before[1] - 333.0).abs() / 333.0 < 0.3, "before {before:?}");
    assert!(before[2] < 1.0, "visitor inactive: {before:?}");

    // With the visitor: shares 83.3 / 166.7 / 250 (the visitor is still
    // ramping toward its share at +2 pkt/s²; accept a generous band).
    let during = phase_rates(&result, 260, 280);
    assert!((during[0] - 83.3).abs() / 83.3 < 0.35, "during {during:?}");
    assert!(
        (during[1] - 166.7).abs() / 166.7 < 0.35,
        "during {during:?}"
    );
    assert!(
        during[2] > 150.0 && during[2] < 300.0,
        "visitor approaching its 250 pkt/s share: {during:?}"
    );

    // After it leaves: residents climb back toward their old shares.
    let after = phase_rates(&result, 400, 420);
    assert!(
        after[0] > during[0] * 1.2 && after[1] > during[1] * 1.1,
        "residents should reclaim bandwidth: during {during:?} after {after:?}"
    );
    assert!(after[2] < 1.0, "visitor stopped: {after:?}");
}

#[test]
fn resident_flows_fall_back_quickly_on_join() {
    // §4.1: "when flows start, other flows fall back almost
    // instantaneously". Within ~15 s of the join, the residents must have
    // given back a substantial part of their pre-join rates.
    let result = join_leave(22).run(&Corelite::new(CoreliteConfig::default()));
    let pre = phase_rates(&result, 180, 200);
    let shortly_after = phase_rates(&result, 205, 215);
    assert!(
        shortly_after[1] < pre[1] * 0.85,
        "weight-2 resident should fall back quickly: pre {pre:?}, after {shortly_after:?}"
    );
}

#[test]
fn csfq_also_redistributes_but_with_losses() {
    let result = join_leave(23).run(&Csfq::new(CsfqConfig::default()));
    let during = phase_rates(&result, 260, 280);
    assert!(
        during[2] > 150.0 && during[2] < 320.0,
        "visitor approaching its share under CSFQ: {during:?}"
    );
    assert!(
        result.total_drops() > 0,
        "CSFQ redistributes through packet losses"
    );
}

#[test]
fn restart_gets_a_fresh_slow_start() {
    // A restarting flow is a new arrival: it must ramp from the initial
    // rate again rather than resume its old allocation instantly.
    let mut scenario = join_leave(24);
    scenario.flows[2].activations = vec![
        (SimTime::from_secs(200), Some(SimTime::from_secs(240))),
        (SimTime::from_secs(250), None),
    ];
    let result = scenario.run(&Corelite::new(CoreliteConfig::default()));
    let series = result.allotted_rate(2);
    let just_restarted = series
        .value_at(SimTime::from_secs_f64(250.6))
        .expect("series covers restart");
    assert!(
        just_restarted < 10.0,
        "restart should begin near the initial rate, got {just_restarted}"
    );
    let settled = result.mean_rate_in(2, SimTime::from_secs(390), SimTime::from_secs(420));
    assert!(
        (settled - 250.0).abs() / 250.0 < 0.3,
        "restarted flow reconverges: {settled}"
    );
}

#[test]
fn window_agent_is_an_alternative_adaptation_scheme() {
    // §4.4 lists "different adaptation schemes at the edge router" as
    // ongoing work; the TCP-like window agent is the natural candidate.
    // It should still: converge, keep losses minimal, give more to
    // higher-weight flows, and keep the link busy. (It is weight-
    // *influenced*, not exactly weight-proportional: throttle frequency
    // rather than amplitude tracks the normalized rate.)
    use corelite::config::AdaptationScheme;
    let cfg = CoreliteConfig {
        adaptation: AdaptationScheme::WindowAimd,
        ..CoreliteConfig::default()
    };
    let result = join_leave(25).run(&Corelite::new(cfg));
    let rates = phase_rates(&result, 160, 200); // flows 0 (w1) and 1 (w2)
    assert!(
        rates[1] > rates[0] * 1.2,
        "weight 2 should clearly beat weight 1: {rates:?}"
    );
    let total = rates[0] + rates[1];
    assert!(
        total > 350.0,
        "window agents should keep the 500 pkt/s link busy: {total}"
    );
    assert!(
        result.total_drops() < 200,
        "window agents over Corelite stay mostly loss-free: {}",
        result.total_drops()
    );
}
