//! Integration tests for the control-plane telemetry subsystem: probed
//! runs of the paper's Figure-2 chain must emit every per-epoch metric
//! the disciplines advertise, in a stable JSONL shape, and the
//! convergence diagnostics built on top of them must be sane.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use corelite::{CoreliteConfig, SelectorKind};
use csfq::CsfqConfig;
use netsim::telemetry::{Probe, RingProbe};
use netsim::FlowId;
use scenarios::discipline::{Corelite, Csfq};
use scenarios::report::{jain_trajectory, settling_summary};
use scenarios::{fig5_6, Discipline, ExperimentResult};
use sim_core::event::QueueBackend;
use sim_core::time::{SimDuration, SimTime};

const SEED: u64 = 20000;

fn probed_run(
    discipline: &dyn Discipline,
    horizon: SimTime,
) -> (ExperimentResult, Rc<RefCell<RingProbe>>) {
    let mut s = fig5_6(SEED);
    s.horizon = horizon;
    let probe = Rc::new(RefCell::new(RingProbe::with_capacity(1 << 17)));
    let result = s.run_instrumented(
        discipline,
        QueueBackend::Wheel,
        probe.clone() as Rc<RefCell<dyn Probe>>,
    );
    (result, probe)
}

fn metric_names(probe: &RingProbe) -> BTreeSet<&'static str> {
    probe.iter().map(|r| r.sample.name).collect()
}

#[test]
fn stateless_corelite_emits_every_paper_metric() {
    let (_, probe) = probed_run(
        &Corelite::new(CoreliteConfig::default()),
        SimTime::from_secs(20),
    );
    let p = probe.borrow();
    let names = metric_names(&p);
    for required in [
        "q_avg",
        "f_n",
        "sent_this_epoch",
        "r_av",
        "w_av",
        "p_w",
        "deficit",
        "m_f",
        "b_g",
        "slow_start",
    ] {
        assert!(names.contains(required), "missing {required}: {names:?}");
    }
    // Link metrics carry a link id; flow metrics carry a flow id, one
    // series per flow.
    assert!(p
        .iter()
        .filter(|r| r.sample.name == "q_avg")
        .all(|r| r.sample.link.is_some() && r.sample.flow.is_none()));
    for i in 0..10 {
        let series = p.series("b_g", None, Some(FlowId::from_index(i)), None);
        assert!(!series.is_empty(), "flow {i} published no b_g");
        // Granted rates are per-epoch and positive once active.
        assert!(series.last_value().unwrap() > 0.0);
    }
}

#[test]
fn cache_selector_swaps_selector_metrics() {
    let (_, probe) = probed_run(
        &Corelite::new(
            CoreliteConfig::default().with_selector(SelectorKind::Cache { capacity: 512 }),
        ),
        SimTime::from_secs(20),
    );
    let p = probe.borrow();
    let names = metric_names(&p);
    assert!(names.contains("cache_len"), "{names:?}");
    assert!(names.contains("q_avg") && names.contains("b_g"));
    // The stateless selector's internals must not appear under the cache.
    for absent in ["r_av", "w_av", "p_w", "deficit", "sent_this_epoch"] {
        assert!(!names.contains(absent), "unexpected {absent}");
    }
}

#[test]
fn csfq_emits_fair_share_estimates() {
    let (_, probe) = probed_run(&Csfq::new(CsfqConfig::default()), SimTime::from_secs(20));
    let p = probe.borrow();
    let names = metric_names(&p);
    assert!(names.contains("alpha"), "{names:?}");
    assert!(names.contains("congested"), "{names:?}");
    // The bottleneck saw congestion at some point, and alpha is a
    // plausible normalized rate.
    assert!(p
        .iter()
        .any(|r| r.sample.name == "congested" && r.sample.value == 1.0));
    assert!(p
        .iter()
        .filter(|r| r.sample.name == "alpha")
        .all(|r| r.sample.value.is_finite() && r.sample.value > 0.0));
}

#[test]
fn jsonl_stream_shape_is_stable() {
    let (_, probe) = probed_run(
        &Corelite::new(CoreliteConfig::default()),
        SimTime::from_secs(5),
    );
    let p = probe.borrow();
    let jsonl = p.to_jsonl();
    // The very first epoch tick is core C1 (node 0) reading an idle
    // queue — pinned byte for byte so downstream parsers can rely on
    // the field order.
    assert_eq!(
        jsonl.lines().next().unwrap(),
        r#"{"t":0.100000,"node":0,"name":"q_avg","value":0,"link":0}"#
    );
    assert_eq!(jsonl.lines().count(), p.len());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"t\":") && line.ends_with('}'), "{line}");
    }
}

#[test]
fn settling_diagnostics_are_sane_on_the_figure2_chain() {
    let result = fig5_6(SEED).run(&Corelite::new(CoreliteConfig::default()));
    let horizon = result.scenario.horizon;
    let rows = settling_summary(&result, horizon, 0.3, SimDuration::from_secs(10));
    assert_eq!(rows.len(), 10);
    // Analytic references: 16.67 pkt/s per unit weight on the C1–C2
    // bottleneck (total weight 30 over 500 pkt/s).
    for r in &rows {
        let expected = 500.0 / 30.0 * f64::from(r.weight);
        assert!(
            (r.reference - expected).abs() < 1e-6,
            "flow {}: reference {} != {expected}",
            r.flow,
            r.reference
        );
    }
    // The chain settles well inside the 80 s horizon and oscillates
    // moderately around the share afterwards.
    let settled: Vec<_> = rows.iter().filter(|r| r.settling_time.is_some()).collect();
    assert!(
        settled.len() >= 8,
        "only {} flows settled: {rows:?}",
        settled.len()
    );
    for r in &settled {
        assert!(r.settling_time.unwrap() < horizon);
        let osc = r.oscillation.expect("settled flows report oscillation");
        assert!((0.0..1.0).contains(&osc), "{r:?}");
    }
    let traj = jain_trajectory(&result, SimDuration::from_secs(10));
    assert!(!traj.is_empty());
    let late = traj
        .mean_in(SimTime::from_secs(60), horizon + SimDuration::from_secs(1))
        .unwrap();
    assert!(late > 0.9, "late-run Jain index {late}");
}
