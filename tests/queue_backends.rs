//! Byte-identity across event-queue backends: a full figure scenario
//! must produce exactly the same `ExperimentResult` (every time series,
//! drop counter and logic report, compared via the complete `Debug`
//! rendering) whether the engine runs on the timer wheel or the seed
//! binary heap — and whether the sweep executes serially or in
//! parallel. The wheel is a pure data-structure substitution; any
//! divergence is an ordering bug.

use std::cell::RefCell;
use std::rc::Rc;

use netsim::telemetry::{Probe, RingProbe};
use scenarios::exec::{run_parallel, run_serial};
use scenarios::runner::Scenario;
use scenarios::PaperFigure;
use sim_core::event::QueueBackend;
use sim_core::time::SimTime;

fn compressed(figure: PaperFigure, seed: u64) -> Scenario {
    let mut s = figure.scenario(seed);
    s.horizon = SimTime::from_secs(20);
    s
}

#[test]
fn wheel_and_heap_agree_on_a_full_figure_scenario() {
    // Figure 3/4: the paper's 20-flow chain dynamics under Corelite —
    // the densest workload (timers, markers, feedback, drops).
    let figure = PaperFigure::Fig3;
    let scenario = compressed(figure, 1);
    let discipline = figure.discipline();
    let wheel = format!(
        "{:?}",
        scenario.run_with_queue(discipline.as_ref(), QueueBackend::Wheel)
    );
    let heap = format!(
        "{:?}",
        scenario.run_with_queue(discipline.as_ref(), QueueBackend::Heap)
    );
    assert_eq!(wheel, heap, "queue backends diverged on {}", figure.name());
    // The default path is the wheel.
    let default = format!("{:?}", scenario.run(discipline.as_ref()));
    assert_eq!(default, wheel);
}

#[test]
fn every_figure_agrees_across_backends() {
    // Shorter horizon, but every figure: covers CSFQ, min-rate
    // contracts, and the sources/selectors each figure exercises.
    for figure in PaperFigure::ALL {
        let mut scenario = figure.scenario(1);
        scenario.horizon = SimTime::from_secs(8);
        let discipline = figure.discipline();
        let wheel = format!(
            "{:?}",
            scenario.run_with_queue(discipline.as_ref(), QueueBackend::Wheel)
        );
        let heap = format!(
            "{:?}",
            scenario.run_with_queue(discipline.as_ref(), QueueBackend::Heap)
        );
        assert_eq!(wheel, heap, "queue backends diverged on {}", figure.name());
    }
}

#[test]
fn probe_streams_agree_across_backends() {
    // Telemetry must be a pure function of the event stream: the same
    // scenario probed on the wheel and on the heap yields byte-identical
    // JSONL. Covers both the Corelite per-epoch hooks and CSFQ's
    // probe-gated sampling timer (Fig5 = Corelite, Fig6 = CSFQ).
    for figure in [PaperFigure::Fig5, PaperFigure::Fig6] {
        let scenario = compressed(figure, 1);
        let discipline = figure.discipline();
        let stream = |backend: QueueBackend| {
            let probe = Rc::new(RefCell::new(RingProbe::with_capacity(1 << 16)));
            scenario.run_instrumented(
                discipline.as_ref(),
                backend,
                probe.clone() as Rc<RefCell<dyn Probe>>,
            );
            let jsonl = probe.borrow().to_jsonl();
            assert!(
                !jsonl.is_empty(),
                "{}: probe recorded nothing",
                figure.name()
            );
            jsonl
        };
        assert_eq!(
            stream(QueueBackend::Wheel),
            stream(QueueBackend::Heap),
            "probe streams diverged across backends on {}",
            figure.name()
        );
    }
}

#[test]
fn backends_agree_under_serial_and_parallel_exec() {
    let figure = PaperFigure::Fig5;
    let discipline = figure.discipline();
    let seeds: Vec<u64> = (1..=4).collect();
    let wheel_work = |seed: u64| {
        format!(
            "{:?}",
            compressed(figure, seed).run_with_queue(discipline.as_ref(), QueueBackend::Wheel)
        )
    };
    let heap_work = |seed: u64| {
        format!(
            "{:?}",
            compressed(figure, seed).run_with_queue(discipline.as_ref(), QueueBackend::Heap)
        )
    };
    let wheel_serial = run_serial(seeds.clone(), wheel_work);
    let wheel_parallel = run_parallel(seeds.clone(), wheel_work);
    let heap_serial = run_serial(seeds.clone(), heap_work);
    let heap_parallel = run_parallel(seeds, heap_work);
    assert_eq!(wheel_serial, wheel_parallel);
    assert_eq!(heap_serial, heap_parallel);
    assert_eq!(wheel_serial, heap_serial);
    // Non-vacuous: different seeds produce different results.
    assert!(wheel_serial.windows(2).any(|w| w[0] != w[1]));
}
