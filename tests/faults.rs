//! Robustness under injected faults: Corelite's soft-state feedback loop
//! must degrade gracefully when control messages are lost (§3.2's
//! resilience argument), and the degradation sweep must stay
//! byte-deterministic across executors and repeats.

use corelite::{CoreliteConfig, SelectorKind};
use scenarios::discipline::{by_name, Corelite};
use scenarios::fault::{degradation_markdown, degradation_rows, FaultSpec};
use scenarios::report::window_jain_index;
use scenarios::{fig5_6, Discipline};
use sim_core::time::{SimDuration, SimTime};

/// Steady-state weighted Jain index of the Figure-5/6 schedule under the
/// given control-message loss probability.
fn jain_under_loss(cfg: CoreliteConfig, loss: f64) -> f64 {
    let mut scenario = fig5_6(42);
    if loss > 0.0 {
        scenario.faults = FaultSpec::new().control_loss(loss);
    }
    let result = scenario.run(&Corelite::new(cfg));
    let horizon = result.scenario.horizon;
    window_jain_index(&result, horizon - SimDuration::from_secs(20), horizon)
}

fn assert_tolerates_feedback_loss(cfg: CoreliteConfig, label: &str) {
    let clean = jain_under_loss(cfg.clone(), 0.0);
    let lossy = jain_under_loss(cfg, 0.2);
    assert!(clean > 0.9, "{label}: clean Jain {clean:.4}");
    // The acceptance bound: 20% feedback loss costs less than 15% of the
    // weighted fairness index.
    assert!(
        lossy >= 0.85 * clean,
        "{label}: Jain degraded {clean:.4} -> {lossy:.4} at 20% control loss"
    );
}

#[test]
fn stateless_selector_tolerates_twenty_percent_feedback_loss() {
    assert_tolerates_feedback_loss(CoreliteConfig::default(), "corelite/stateless");
}

#[test]
fn cache_selector_tolerates_twenty_percent_feedback_loss() {
    assert_tolerates_feedback_loss(
        CoreliteConfig::default().with_selector(SelectorKind::Cache { capacity: 256 }),
        "corelite/cache",
    );
}

#[test]
fn degradation_table_is_byte_deterministic() {
    let mut scenario = fig5_6(20000);
    scenario.horizon = SimTime::from_secs(25);
    let registry: Vec<Box<dyn Discipline>> = vec![
        by_name("corelite").expect("registered"),
        by_name("csfq").expect("registered"),
    ];
    let losses = [0, 20];
    let table = |serial| {
        degradation_markdown(&degradation_rows(
            &[scenario.clone()],
            &registry,
            &losses,
            serial,
        ))
    };
    let serial = table(true);
    let parallel = table(false);
    let repeat = table(false);
    assert_eq!(serial, parallel, "serial vs parallel sweep");
    assert_eq!(parallel, repeat, "repeated sweep");
    // 2 disciplines x 2 loss levels plus the two header lines.
    assert_eq!(serial.lines().count(), 6, "{serial}");
    assert!(serial.contains("| corelite |"), "{serial}");
    assert!(serial.contains("| 20 |"), "{serial}");
}
