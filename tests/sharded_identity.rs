//! Sharded-vs-serial identity suite: the sharded engine must reproduce
//! the serial engine's results **byte for byte** at every shard count —
//! reports, probe streams, churn accounting — across the paper figures,
//! fat-tree mixes, fault injection and flow churn. This is the contract
//! that makes `--shards` a pure wall-clock knob (DESIGN.md §16): any
//! divergence, however small, is a bug in the epoch/mailbox protocol,
//! never an acceptable "parallel rounding" artifact.
//!
//! The comparison is `format!("{:?}", report)` equality on the full
//! [`netsim::SimReport`] — every flow's delivery counts, delay
//! distribution, drop split, every link's counters, per-node logic
//! reports, the event total, and the churn report all participate.

use std::cell::RefCell;
use std::rc::Rc;

use corelite::CoreliteConfig;
use netsim::telemetry::{Probe, RingProbe};
use scenarios::discipline::{by_name, Corelite};
use scenarios::fault::FaultSpec;
use scenarios::runner::Scenario;
use scenarios::{fig3_4, fig5_6, fig7_8, fig9_10, Discipline};
use sim_core::event::QueueBackend;
use sim_core::time::SimTime;

/// Shrinks a scenario's horizon (activation schedules are untouched;
/// periods beyond the horizon simply never fire).
fn compress(mut scenario: Scenario, secs: u64) -> Scenario {
    scenario.horizon = SimTime::from_secs(secs);
    scenario
}

/// Asserts the sharded run reproduces the serial report byte for byte
/// at each of `shard_counts`, and that the per-shard event split is
/// plausible (one entry per shard, non-zero total).
fn assert_identical(scenario: &Scenario, discipline: &dyn Discipline, shard_counts: &[usize]) {
    let serial = scenario.run(discipline);
    let expected = format!("{:?}", serial.report);
    for &shards in shard_counts {
        let (sharded, per_shard) = scenario.run_sharded(discipline, shards);
        assert_eq!(per_shard.len(), shards, "{}: split arity", scenario.name);
        assert!(
            per_shard.iter().sum::<u64>() > 0,
            "{}: sharded run did no work",
            scenario.name
        );
        assert_eq!(
            expected,
            format!("{:?}", sharded.report),
            "{} diverged at {shards} shards",
            scenario.name
        );
    }
}

#[test]
fn figure_schedules_are_byte_identical_across_shards() {
    let corelite = Corelite::new(CoreliteConfig::default());
    for scenario in [fig3_4(7), fig5_6(7), fig7_8(7), fig9_10(7)] {
        assert_identical(&compress(scenario, 12), &corelite, &[2, 3]);
    }
}

#[test]
fn shard_count_sweep_is_byte_identical() {
    // Including 1: a single-shard "parallel" run takes the sharded code
    // path (mailboxes, epochs, merge) and must still match serial.
    let corelite = Corelite::new(CoreliteConfig::default());
    assert_identical(&compress(fig5_6(21), 15), &corelite, &[1, 2, 4, 8]);
}

#[test]
fn fat_tree_mixes_are_byte_identical() {
    let corelite = Corelite::new(CoreliteConfig::default());
    assert_identical(
        &Scenario::fat_tree_mix(SimTime::from_secs(10), 3),
        &corelite,
        &[2, 4],
    );
    assert_identical(
        &Scenario::fat_tree_k16(SimTime::from_secs(4), 3),
        &corelite,
        &[4],
    );
}

#[test]
fn faulted_runs_are_byte_identical() {
    // Control-plane loss and delay draw from per-node RNG streams, link
    // flaps drop packets mid-flight, pauses freeze a core's control
    // processing — all of it must replay identically under sharding.
    let corelite = Corelite::new(CoreliteConfig::default());
    let scenario = compress(fig5_6(11), 15).with_faults(
        FaultSpec::new()
            .control_loss(0.2)
            .control_delay(0.05, 0.01)
            .marker_loss(1, 0.5)
            .flap(0, 5.0, 7.0)
            .pause(2, 8.0, 9.0),
    );
    assert_identical(&scenario, &corelite, &[2, 4]);
}

#[test]
fn churn_runs_are_byte_identical() {
    // The k = 16 fat-tree churn workload: tens of thousands of dynamic
    // flow arrivals, slot recycling, lifecycle timers and completion
    // accounting. The churn report rides inside the SimReport, so FCT
    // and settling statistics are part of the byte-identity check.
    let corelite = Corelite::new(CoreliteConfig::default());
    let scenario = Scenario::fat_tree_k16_100k(SimTime::from_secs(4), 5);
    let serial = scenario.run(&corelite);
    let churn = serial.report.churn.as_ref().expect("churn report present");
    assert!(
        churn.arrivals > 1_000,
        "churn barely ran: {}",
        churn.arrivals
    );
    assert_identical(&scenario, &corelite, &[2, 4, 8]);
}

#[test]
fn csfq_baseline_is_byte_identical() {
    // A second discipline exercises different logic state, control
    // traffic and RNG draws through the same sharded machinery.
    let csfq = by_name("csfq").expect("csfq is registered");
    assert_identical(&compress(fig3_4(13), 12), csfq.as_ref(), &[2, 3]);
}

#[test]
fn probe_streams_are_byte_identical() {
    // Telemetry: the sharded engine replays its merged sample log into
    // the probe in canonical order, so the rendered JSONL stream must
    // match the serial stream byte for byte.
    let corelite = Corelite::new(CoreliteConfig::default());
    let scenario = compress(fig5_6(17), 15);

    let serial_probe = Rc::new(RefCell::new(RingProbe::with_capacity(1 << 16)));
    scenario.run_instrumented(
        &corelite,
        QueueBackend::Wheel,
        serial_probe.clone() as Rc<RefCell<dyn Probe>>,
    );
    let expected = serial_probe.borrow().to_jsonl();
    assert!(!expected.is_empty(), "serial probe recorded nothing");

    for shards in [2usize, 4] {
        let probe = Rc::new(RefCell::new(RingProbe::with_capacity(1 << 16)));
        scenario.run_instrumented_sharded(
            &corelite,
            shards,
            probe.clone() as Rc<RefCell<dyn Probe>>,
        );
        assert_eq!(
            expected,
            probe.borrow().to_jsonl(),
            "probe stream diverged at {shards} shards"
        );
    }
}

#[test]
fn scenario_shards_field_routes_through_the_sharded_engine() {
    // `Scenario.shards` is the transparent dispatch knob: plain `run()`
    // on a shards = 4 scenario must produce the serial bytes too (this
    // is what the DSL `shards` directive and `--shards` flag rely on).
    let corelite = Corelite::new(CoreliteConfig::default());
    let scenario = compress(fig3_4(29), 12);
    let serial = scenario.run(&corelite);
    let mut sharded_scenario = scenario.clone();
    sharded_scenario.shards = 4;
    let sharded = sharded_scenario.run(&corelite);
    assert_eq!(
        format!("{:?}", serial.report),
        format!("{:?}", sharded.report)
    );
}
