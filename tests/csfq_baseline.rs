//! Integration test: the weighted CSFQ baseline behaves like the
//! SIGCOMM '98 description — probabilistic label-driven drops, fair-share
//! tracking, and the startup weaknesses the Corelite paper exploits.

use csfq::CsfqConfig;
use scenarios::discipline::{Corelite, Csfq};
use scenarios::runner::{Scenario, ScenarioFlow};
use scenarios::topology::{Route, TopologySpec};
use sim_core::time::SimTime;

fn scenario(weights: &[u32], horizon: u64, seed: u64) -> Scenario {
    Scenario {
        topology: TopologySpec::paper_chain(),
        faults: Default::default(),
        churn: None,
        name: "csfq_baseline",
        flows: weights
            .iter()
            .map(|&w| ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: w,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            })
            .collect(),
        horizon: SimTime::from_secs(horizon),
        seed,
        shards: 1,
    }
}

#[test]
fn csfq_uses_policy_drops_not_only_tail_drops() {
    let result = scenario(&[1, 1, 2, 2], 120, 31).run(&Csfq::new(CsfqConfig::default()));
    let policy: u64 = result.report.flows.iter().map(|f| f.policy_drops).sum();
    assert!(
        policy > 0,
        "CSFQ's probabilistic dropper should act before queues overflow"
    );
}

#[test]
fn csfq_drops_concentrate_on_over_share_flows() {
    // A weight-1 and a weight-3 flow: in steady state both sit at their
    // shares, but the weight-1 flow pushes relatively harder during
    // convergence; drops must track the *normalized* excess, so per
    // delivered packet the two flows see comparable drop ratios, and
    // neither flow is starved.
    let result = scenario(&[1, 3], 200, 32).run(&Csfq::new(CsfqConfig::default()));
    let f0 = &result.report.flows[0];
    let f1 = &result.report.flows[1];
    assert!(f0.delivered_packets > 0 && f1.delivered_packets > 0);
    let share0 = result.mean_rate_in(0, SimTime::from_secs(160), SimTime::from_secs(200));
    let share1 = result.mean_rate_in(1, SimTime::from_secs(160), SimTime::from_secs(200));
    let ratio = share1 / share0;
    assert!(
        (ratio - 3.0).abs() < 1.0,
        "weighted shares should approach 1:3, got {share0:.1}:{share1:.1}"
    );
}

#[test]
fn csfq_relabels_so_downstream_links_see_capped_labels() {
    // Two congested links in series: the upstream router caps labels at
    // its fair share, so the downstream router's running estimates stay
    // meaningful. Observable end-to-end: a two-hop flow still gets a
    // weighted-fair allocation.
    let scenario = Scenario {
        topology: TopologySpec::paper_chain(),
        faults: Default::default(),
        churn: None,
        name: "csfq_two_hop",
        flows: vec![
            ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 2).into(), // crosses C1-C2 and C2-C3
                weight: 2,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            },
            ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: 2,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            },
            ScenarioFlow {
                transport: Default::default(),
                path: Route::new(1, 2).into(),
                weight: 2,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            },
        ],
        horizon: SimTime::from_secs(200),
        seed: 33,
        shards: 1,
    };
    let result = scenario.run(&Csfq::new(CsfqConfig::default()));
    let rates: Vec<f64> = (0..3)
        .map(|i| result.mean_rate_in(i, SimTime::from_secs(150), SimTime::from_secs(200)))
        .collect();
    // Equal weights on equally loaded links: all should be near 250.
    for (i, r) in rates.iter().enumerate() {
        assert!(
            (*r - 250.0).abs() / 250.0 < 0.35,
            "flow {i} rate {r:.1}, expected ≈250 ({rates:?})"
        );
    }
}

#[test]
fn csfq_startup_shows_early_losses_unlike_corelite() {
    // §4.2's mechanism for CSFQ's slower convergence: flows observe
    // losses before reaching their fair share. Fifteen weight-1 flows
    // collectively cross the link capacity while still in slow-start;
    // count drops during the first 20 seconds only.
    let weights = [1u32; 15];
    let result = scenario(&weights, 20, 34).run(&Csfq::new(CsfqConfig::default()));
    assert!(
        result.total_drops() > 0,
        "CSFQ flows should already lose packets during startup"
    );
    let corelite =
        scenario(&weights, 20, 34).run(&Corelite::new(corelite::CoreliteConfig::default()));
    assert!(
        corelite.total_drops() <= result.total_drops() / 5,
        "corelite startup drops {} vs csfq {}",
        corelite.total_drops(),
        result.total_drops()
    );
}
