//! Byte-identity across transmission-dispatch modes: a full figure
//! scenario must produce exactly the same `ExperimentResult` (every
//! time series, drop counter and logic report, compared via the
//! complete `Debug` rendering) whether the engine coalesces
//! back-to-back transmissions into a link's departure train
//! (`DispatchMode::Train`, the default) or schedules one `TxDone`
//! checkpoint per packet (`DispatchMode::PerPacket`). The train is a
//! pure event-coalescing substitution — departures carry their own
//! timestamps, so when the link's accounting runs cannot be
//! observable. Any divergence is a batching bug.

use std::cell::RefCell;
use std::rc::Rc;

use netsim::telemetry::{Probe, RingProbe};
use netsim::DispatchMode;
use scenarios::exec::{run_parallel, run_serial};
use scenarios::runner::Scenario;
use scenarios::PaperFigure;
use sim_core::time::SimTime;

fn compressed(figure: PaperFigure, seed: u64) -> Scenario {
    let mut s = figure.scenario(seed);
    s.horizon = SimTime::from_secs(20);
    s
}

#[test]
fn train_and_per_packet_agree_on_a_full_figure_scenario() {
    // Figure 3/4: the paper's 20-flow chain dynamics under Corelite —
    // the densest workload (timers, markers, feedback, drops).
    let figure = PaperFigure::Fig3;
    let scenario = compressed(figure, 1);
    let discipline = figure.discipline();
    let train = format!(
        "{:?}",
        scenario.run_with_dispatch(discipline.as_ref(), DispatchMode::Train)
    );
    let per_packet = format!(
        "{:?}",
        scenario.run_with_dispatch(discipline.as_ref(), DispatchMode::PerPacket)
    );
    assert_eq!(
        train,
        per_packet,
        "dispatch modes diverged on {}",
        figure.name()
    );
    // The default path is the train.
    let default = format!("{:?}", scenario.run(discipline.as_ref()));
    assert_eq!(default, train);
}

#[test]
fn every_figure_agrees_across_dispatch_modes() {
    // Shorter horizon, but every figure: covers CSFQ (whose core logic
    // reads instantaneous queue lengths per packet), min-rate
    // contracts, and the sources/selectors each figure exercises.
    for figure in PaperFigure::ALL {
        let mut scenario = figure.scenario(1);
        scenario.horizon = SimTime::from_secs(8);
        let discipline = figure.discipline();
        let train = format!(
            "{:?}",
            scenario.run_with_dispatch(discipline.as_ref(), DispatchMode::Train)
        );
        let per_packet = format!(
            "{:?}",
            scenario.run_with_dispatch(discipline.as_ref(), DispatchMode::PerPacket)
        );
        assert_eq!(
            train,
            per_packet,
            "dispatch modes diverged on {}",
            figure.name()
        );
    }
}

#[test]
fn fat_tree_agrees_across_dispatch_modes() {
    // Multi-path topology: trains matter most where many links carry
    // interleaved back-to-back bursts.
    let scenario = Scenario::fat_tree_mix(SimTime::from_secs(15), 7);
    let figure = PaperFigure::Fig3;
    let discipline = figure.discipline();
    let train = format!(
        "{:?}",
        scenario.run_with_dispatch(discipline.as_ref(), DispatchMode::Train)
    );
    let per_packet = format!(
        "{:?}",
        scenario.run_with_dispatch(discipline.as_ref(), DispatchMode::PerPacket)
    );
    assert_eq!(train, per_packet, "dispatch modes diverged on fat_tree_mix");

    // The wide k=8 instance (8 leaves x 4 spines) from the scaling
    // benches: more links, more concurrent trains per tick.
    let scenario = Scenario::fat_tree_k_mix(8, 4, SimTime::from_secs(10), 7);
    let train = format!(
        "{:?}",
        scenario.run_with_dispatch(discipline.as_ref(), DispatchMode::Train)
    );
    let per_packet = format!(
        "{:?}",
        scenario.run_with_dispatch(discipline.as_ref(), DispatchMode::PerPacket)
    );
    assert_eq!(
        train, per_packet,
        "dispatch modes diverged on fat_tree_k_mix"
    );
}

#[test]
fn probe_streams_agree_across_dispatch_modes() {
    // Telemetry must be a pure function of the logical event stream:
    // the same scenario probed under trains and under per-packet
    // checkpoints yields byte-identical JSONL (Fig5 = Corelite's
    // per-epoch hooks, Fig6 = CSFQ's probe-gated sampling timer).
    for figure in [PaperFigure::Fig5, PaperFigure::Fig6] {
        let scenario = compressed(figure, 1);
        let discipline = figure.discipline();
        let stream = |dispatch: DispatchMode| {
            let probe = Rc::new(RefCell::new(RingProbe::with_capacity(1 << 16)));
            scenario.run_instrumented_dispatch(
                discipline.as_ref(),
                dispatch,
                probe.clone() as Rc<RefCell<dyn Probe>>,
            );
            let jsonl = probe.borrow().to_jsonl();
            assert!(
                !jsonl.is_empty(),
                "{}: probe recorded nothing",
                figure.name()
            );
            jsonl
        };
        assert_eq!(
            stream(DispatchMode::Train),
            stream(DispatchMode::PerPacket),
            "probe streams diverged across dispatch modes on {}",
            figure.name()
        );
    }
}

#[test]
fn dispatch_modes_agree_under_serial_and_parallel_exec() {
    let figure = PaperFigure::Fig5;
    let discipline = figure.discipline();
    let seeds: Vec<u64> = (1..=4).collect();
    let train_work = |seed: u64| {
        format!(
            "{:?}",
            compressed(figure, seed).run_with_dispatch(discipline.as_ref(), DispatchMode::Train)
        )
    };
    let per_packet_work = |seed: u64| {
        format!(
            "{:?}",
            compressed(figure, seed)
                .run_with_dispatch(discipline.as_ref(), DispatchMode::PerPacket)
        )
    };
    let train_serial = run_serial(seeds.clone(), train_work);
    let train_parallel = run_parallel(seeds.clone(), train_work);
    let per_packet_serial = run_serial(seeds.clone(), per_packet_work);
    let per_packet_parallel = run_parallel(seeds, per_packet_work);
    assert_eq!(train_serial, train_parallel);
    assert_eq!(per_packet_serial, per_packet_parallel);
    assert_eq!(train_serial, per_packet_serial);
    // Non-vacuous: different seeds produce different results.
    assert!(train_serial.windows(2).any(|w| w[0] != w[1]));
}
