//! Integration test: the paper's Figure-2 topology under network
//! dynamics (a compressed Figure-3 scenario) reproduces the analytic
//! weighted max-min shares with no packet loss.

use corelite::CoreliteConfig;
use scenarios::discipline::Corelite;
use scenarios::runner::{Scenario, ScenarioFlow};
use scenarios::topology::{Route, TopologySpec};
use sim_core::time::SimTime;

/// A time-compressed §4.1 scenario: flows 1, 9, 10, 11, 16 live during
/// [60 s, 120 s); all others during [0 s, 180 s).
fn compressed_fig3(seed: u64) -> Scenario {
    let late = [1, 9, 10, 11, 16];
    let flows = (1..=20)
        .map(|i| ScenarioFlow {
            transport: Default::default(),
            path: Route::of_paper_flow(i).into(),
            weight: Route::paper_weight(i),
            min_rate: 0.0,
            activations: if late.contains(&i) {
                vec![(SimTime::from_secs(60), Some(SimTime::from_secs(120)))]
            } else {
                vec![(SimTime::ZERO, Some(SimTime::from_secs(180)))]
            },
        })
        .collect();
    Scenario {
        topology: TopologySpec::paper_chain(),
        faults: Default::default(),
        churn: None,
        name: "compressed_fig3",
        flows,
        horizon: SimTime::from_secs(200),
        seed,
        shards: 1,
    }
}

#[test]
fn corelite_tracks_weighted_maxmin_through_dynamics() {
    let scenario = compressed_fig3(7);
    let result = scenario.run(&Corelite::new(CoreliteConfig::default()));

    // Phase 1 (15 flows): 33.33 pkt/s per unit weight.
    // Phase 2 (20 flows): 25 pkt/s per unit weight.
    // Phase 3 (15 flows): back to 33.33.
    let windows = [
        (SimTime::from_secs(35), SimTime::from_secs(60)),
        (SimTime::from_secs(90), SimTime::from_secs(120)),
        (SimTime::from_secs(150), SimTime::from_secs(180)),
    ];
    for (from, to) in windows {
        let mid = SimTime::from_secs_f64((from.as_secs_f64() + to.as_secs_f64()) / 2.0);
        let expected = scenario.expected_rates_at(mid);
        for (i, &share) in expected.iter().enumerate() {
            let measured = result.mean_rate_in(i, from, to);
            if share == 0.0 {
                assert!(
                    measured < 1.0,
                    "flow {} should be idle in [{from}, {to}), measured {measured}",
                    i + 1
                );
            } else {
                let err = (measured - share).abs() / share;
                assert!(
                    err < 0.25,
                    "flow {} in [{from}, {to}): measured {measured:.1}, share {share:.1} (err {:.0}%)",
                    i + 1,
                    err * 100.0
                );
            }
        }
    }
}

#[test]
fn corelite_is_loss_free_on_the_paper_topology() {
    let scenario = compressed_fig3(13);
    let result = scenario.run(&Corelite::new(CoreliteConfig::default()));
    assert_eq!(
        result.total_drops(),
        0,
        "Corelite must not drop packets in the §4.1 scenario"
    );
    // Congested links are used efficiently despite loss-free operation.
    // Links 0..3 are the core chain C1-C2, C2-C3, C3-C4.
    for link in &result.report.links[0..3] {
        assert!(
            link.utilization > 0.75,
            "congested link {} utilization {:.2}",
            link.id,
            link.utilization
        );
    }
}

#[test]
fn corelite_transient_loss_is_negligible_across_seeds() {
    // The loss-free steady state is the paper's claim; the t=60 s join of
    // five extra flows can cost a handful of packets on unlucky seeds
    // before the slow-start probing backs off. Keep that transient
    // bounded to a vanishing fraction of the ~250k delivered packets.
    for seed in [1u64, 2, 11, 17] {
        let result = compressed_fig3(seed).run(&Corelite::new(CoreliteConfig::default()));
        let delivered: u64 = result
            .report
            .flows
            .iter()
            .map(|f| f.delivered_packets)
            .sum();
        let drops = result.total_drops();
        assert!(
            (drops as f64) < (delivered as f64) * 1e-3,
            "seed {seed}: {drops} drops against {delivered} delivered"
        );
    }
}

#[test]
fn cumulative_service_groups_by_weight_not_by_path_length() {
    // Figure 4's claim: total service depends on the weight only, not on
    // RTT or the number of congested links crossed. Compare flows of
    // weight 2 crossing 1, 2 and 3 congested links over the full-load
    // window.
    let scenario = compressed_fig3(13);
    let result = scenario.run(&Corelite::new(CoreliteConfig::default()));
    let service = |i: usize| {
        let c = &result.report.flows[i].cumulative;
        c.value_at(SimTime::from_secs(55)).unwrap_or(0.0)
            - c.value_at(SimTime::from_secs(25)).unwrap_or(0.0)
    };
    let one_hop = service(1); // flow 2: C1-C2 only
    let two_hop = service(6); // flow 7: C1-C3
    let mid_two_hop = service(13); // flow 14: C2-C4
    for (name, s) in [("two-hop", two_hop), ("mid two-hop", mid_two_hop)] {
        let ratio = s / one_hop;
        assert!(
            (ratio - 1.0).abs() < 0.25,
            "{name} flow served {s} vs one-hop {one_hop} (ratio {ratio:.2})"
        );
    }
}
