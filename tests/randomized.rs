//! Randomized end-to-end property test: for *any* small population of
//! flows on the paper topology, Corelite's steady-state allocation tracks
//! the analytic weighted max-min solution and losses stay negligible.
//!
//! This is the whole-system analogue of the per-module property tests:
//! the `check` harness draws the flow population (routes, weights,
//! stagger), the simulator runs it, and the water-filling solver judges
//! the outcome.

use corelite::CoreliteConfig;
use scenarios::runner::{Scenario, ScenarioFlow};
use scenarios::topology::{Route, TopologySpec};
use sim_core::check;
use sim_core::time::SimTime;

#[test]
fn corelite_tracks_maxmin_for_random_populations() {
    check::cases(8, 0x5A_01, |g| {
        let flows: Vec<ScenarioFlow> = (0..g.usize_in(2, 7))
            .map(|_| {
                let first_draw = g.usize_in(0, 3);
                let span = g.usize_in(1, 3);
                let weight = g.u64_in(1, 4) as u32;
                let start = g.u64_in(0, 5);
                let last = (first_draw + span).min(Route::CORE_COUNT - 1);
                let first = first_draw.min(last - 1);
                ScenarioFlow {
                    transport: Default::default(),
                    path: Route::new(first, last).into(),
                    weight,
                    min_rate: 0.0,
                    activations: vec![(SimTime::from_secs(start), None)],
                }
            })
            .collect();
        let scenario = Scenario {
            topology: TopologySpec::paper_chain(),
            faults: Default::default(),
            churn: None,
            name: "randomized",
            flows,
            horizon: SimTime::from_secs(220),
            seed: 1234,
            shards: 1,
        };
        let result = scenario.run(&scenarios::discipline::Corelite::new(
            CoreliteConfig::default(),
        ));

        let from = SimTime::from_secs(180);
        let to = scenario.horizon;
        let expected = scenario.expected_rates_at(SimTime::from_secs(200));
        let mut aggregate_err = 0.0;
        for (i, &share) in expected.iter().enumerate() {
            let measured = result.mean_rate_in(i, from, to);
            assert!(share > 0.0, "every drawn flow is active");
            let err = (measured - share).abs() / share;
            aggregate_err += err;
            // Individual flows may sit off their share when the analytic
            // optimum depends on second-order effects; bound each loosely
            // and the population tightly.
            assert!(
                err < 0.45,
                "flow {i}: measured {measured:.1} vs share {share:.1} ({:.0}%)",
                err * 100.0
            );
        }
        let mean_err = aggregate_err / expected.len() as f64;
        assert!(
            mean_err < 0.25,
            "population mean error {:.0}%",
            mean_err * 100.0
        );

        // Loss-free up to slow-start transients.
        let delivered: u64 = result
            .report
            .flows
            .iter()
            .map(|f| f.delivered_packets)
            .sum();
        let drops = result.total_drops();
        assert!(
            (drops as f64) < 0.005 * delivered as f64 + 50.0,
            "drops {drops} of {delivered} delivered"
        );
    });
}
