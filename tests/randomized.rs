//! Randomized end-to-end property test: for *any* small population of
//! flows on the paper topology, Corelite's steady-state allocation tracks
//! the analytic weighted max-min solution and losses stay negligible.
//!
//! This is the whole-system analogue of the per-module property tests:
//! proptest draws the flow population (routes, weights, stagger), the
//! simulator runs it, and the water-filling solver judges the outcome.

use corelite::CoreliteConfig;
use proptest::prelude::*;
use scenarios::runner::{Discipline, Scenario, ScenarioFlow};
use scenarios::topology::Route;
use sim_core::time::SimTime;

#[derive(Debug, Clone)]
struct FlowDraw {
    first: usize,
    span: usize,
    weight: u32,
    start: u64,
}

fn flow_draw() -> impl Strategy<Value = FlowDraw> {
    (0usize..3, 1usize..3, 1u32..4, 0u64..5).prop_map(|(first, span, weight, start)| FlowDraw {
        first,
        span,
        weight,
        start,
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    #[test]
    fn corelite_tracks_maxmin_for_random_populations(draws in prop::collection::vec(flow_draw(), 2..7)) {
        let flows: Vec<ScenarioFlow> = draws
            .iter()
            .map(|d| {
                let last = (d.first + d.span).min(Route::CORE_COUNT - 1);
                let first = d.first.min(last - 1);
                ScenarioFlow {
                    route: Route::new(first, last),
                    weight: d.weight,
                    min_rate: 0.0,
                    activations: vec![(SimTime::from_secs(d.start), None)],
                }
            })
            .collect();
        let scenario = Scenario {
            name: "randomized",
            flows,
            horizon: SimTime::from_secs(220),
            seed: 1234,
        };
        let result = scenario.run(&Discipline::Corelite(CoreliteConfig::default()));

        let from = SimTime::from_secs(180);
        let to = scenario.horizon;
        let expected = scenario.expected_rates_at(SimTime::from_secs(200));
        let mut aggregate_err = 0.0;
        for (i, &share) in expected.iter().enumerate() {
            let measured = result.mean_rate_in(i, from, to);
            prop_assert!(share > 0.0, "every drawn flow is active");
            let err = (measured - share).abs() / share;
            aggregate_err += err;
            // Individual flows may sit off their share when the analytic
            // optimum depends on second-order effects; bound each loosely
            // and the population tightly.
            prop_assert!(
                err < 0.45,
                "flow {i}: measured {measured:.1} vs share {share:.1} ({:.0}%)",
                err * 100.0
            );
        }
        let mean_err = aggregate_err / expected.len() as f64;
        prop_assert!(mean_err < 0.25, "population mean error {:.0}%", mean_err * 100.0);

        // Loss-free up to slow-start transients.
        let delivered: u64 = result.report.flows.iter().map(|f| f.delivered_packets).sum();
        let drops = result.total_drops();
        prop_assert!(
            (drops as f64) < 0.005 * delivered as f64 + 50.0,
            "drops {drops} of {delivered} delivered"
        );
    }
}
