//! Integration tests: the weighted max-min reference on non-chain
//! topologies. `fairness::maxmin` water-filling is cross-checked three
//! ways — hand-computed shares, a `MaxMinProblem` built directly from
//! the link lists, and `Scenario::expected_rates_at` going through
//! [`scenarios::topology::TopologySpec`].

use fairness::maxmin::MaxMinProblem;
use scenarios::runner::{Scenario, ScenarioFlow};
use scenarios::topology::{CorePath, TopologySpec, LINK_CAPACITY_PPS};
use sim_core::time::SimTime;

const EPS: f64 = 1e-9;

fn assert_close(actual: &[f64], expected: &[f64]) {
    assert_eq!(actual.len(), expected.len());
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        assert!(
            (a - e).abs() < EPS,
            "flow {i}: got {a}, expected {e} (all: {actual:?})"
        );
    }
}

#[test]
fn equal_weight_parking_lot_splits_every_link_in_half() {
    // One long flow over `hops` links plus one cross flow per link, all
    // weight 1: every link carries exactly two unit-weight flows, so
    // everyone gets capacity / 2 regardless of path length.
    for hops in [1usize, 3, 5] {
        let scenario = Scenario::parking_lot(hops, SimTime::from_secs(10), 1);
        let rates = scenario.expected_rates_at(SimTime::from_secs(5));
        assert_close(&rates, &vec![LINK_CAPACITY_PPS / 2.0; hops + 1]);
    }
}

#[test]
fn weighted_parking_lot_bottlenecks_the_long_flow_at_its_tightest_link() {
    // Long flow (weight 1) over three links; cross weights 1, 3, 1.
    // The middle link fills first at unit rate 500/4 = 125, freezing the
    // long flow there; the outer cross flows then take the 375 left over.
    let topology = TopologySpec::parking_lot(3);
    let flows = vec![
        ScenarioFlow::best_effort(CorePath::new(vec![0, 1, 2, 3]), 1, SimTime::ZERO),
        ScenarioFlow::best_effort(CorePath::new(vec![0, 1]), 1, SimTime::ZERO),
        ScenarioFlow::best_effort(CorePath::new(vec![1, 2]), 3, SimTime::ZERO),
        ScenarioFlow::best_effort(CorePath::new(vec![2, 3]), 1, SimTime::ZERO),
    ];
    let scenario = Scenario::on(topology, "weighted_lot", flows, SimTime::from_secs(10), 1);
    let rates = scenario.expected_rates_at(SimTime::from_secs(5));
    assert_close(&rates, &[125.0, 375.0, 375.0, 375.0]);

    // The same problem posed to the solver directly, bypassing the
    // topology layer entirely.
    let mut p = MaxMinProblem::new();
    let links: Vec<_> = (0..3).map(|_| p.link(LINK_CAPACITY_PPS)).collect();
    let refs = [
        p.flow(1.0, links.clone()),
        p.flow(1.0, [links[0]]),
        p.flow(3.0, [links[1]]),
        p.flow(1.0, [links[2]]),
    ];
    let alloc = p.solve();
    let direct: Vec<f64> = refs.iter().map(|&r| alloc.rate(r)).collect();
    assert_close(&direct, &rates);
}

#[test]
fn fat_tree_mix_shares_match_hand_computed_uplink_bottlenecks() {
    // Eight flows, spines alternating by index, weights cycling 1,2,3.
    // Every spine→leaf downlink carries one flow, so only the four
    // leaf→spine uplinks are contended, two flows each:
    //   leaf0→s0: w1 (f0), w2 (f4) → 166.67 / 333.33
    //   leaf2→s0: w3 (f2), w1 (f6) → 375 / 125
    //   leaf1→s1: w2 (f1), w3 (f5) → 200 / 300
    //   leaf3→s1: w1 (f3), w2 (f7) → 166.67 / 333.33
    let scenario = Scenario::fat_tree_mix(SimTime::from_secs(10), 1);
    let rates = scenario.expected_rates_at(SimTime::from_secs(5));
    let c = LINK_CAPACITY_PPS;
    assert_close(
        &rates,
        &[
            c / 3.0,
            c * 2.0 / 5.0,
            c * 3.0 / 4.0,
            c / 3.0,
            c * 2.0 / 3.0,
            c * 3.0 / 5.0,
            c / 4.0,
            c * 2.0 / 3.0,
        ],
    );
}

#[test]
fn fat_tree_reference_agrees_with_a_directly_posed_problem() {
    let scenario = Scenario::fat_tree_mix(SimTime::from_secs(10), 1);
    let topology = &scenario.topology;
    let via_topology = scenario.expected_rates_at(SimTime::from_secs(5));

    let mut p = MaxMinProblem::new();
    let links: Vec<_> = (0..topology.link_count())
        .map(|_| p.link(LINK_CAPACITY_PPS))
        .collect();
    let refs: Vec<_> = scenario
        .flows
        .iter()
        .map(|f| {
            let crossed: Vec<_> = f
                .path
                .link_indices(topology)
                .into_iter()
                .map(|l| links[l])
                .collect();
            p.flow(f.weight as f64, crossed)
        })
        .collect();
    let alloc = p.solve();
    let direct: Vec<f64> = refs.iter().map(|&r| alloc.rate(r)).collect();
    assert_close(&direct, &via_topology);
}

#[test]
fn min_rate_floors_survive_on_non_chain_topologies() {
    // Give the long parking-lot flow a floor above its water-filling
    // share: the floor is reserved first (leaving 200 per link), and the
    // flow still competes with its weight for the residual — 100 more on
    // top of the guarantee, with the cross flows absorbing the loss.
    let topology = TopologySpec::parking_lot(2);
    let flows = vec![
        ScenarioFlow {
            transport: Default::default(),
            path: CorePath::new(vec![0, 1, 2]),
            weight: 1,
            min_rate: 300.0,
            activations: vec![(SimTime::ZERO, None)],
        },
        ScenarioFlow::best_effort(CorePath::new(vec![0, 1]), 1, SimTime::ZERO),
        ScenarioFlow::best_effort(CorePath::new(vec![1, 2]), 1, SimTime::ZERO),
    ];
    let scenario = Scenario::on(topology, "floored_lot", flows, SimTime::from_secs(10), 1);
    let rates = scenario.expected_rates_at(SimTime::from_secs(5));
    assert_close(&rates, &[400.0, 100.0, 100.0]);
}
