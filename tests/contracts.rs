//! Integration test: minimum rate contracts (the paper's "per-flow rate
//! contracts", §4/§6). A contracted flow is never throttled below its
//! floor; markers are injected only for its out-of-profile traffic, so
//! the surplus capacity is shared by weight among everyone's excess
//! (allocation = floor + weighted share of the surplus).

use corelite::CoreliteConfig;
use scenarios::discipline::Corelite;
use scenarios::runner::{Scenario, ScenarioFlow};
use scenarios::topology::{Route, TopologySpec};
use sim_core::time::SimTime;

fn contract_scenario(contract: f64, seed: u64) -> Scenario {
    Scenario {
        topology: TopologySpec::paper_chain(),
        faults: Default::default(),
        churn: None,
        name: "contracts",
        flows: vec![
            // The contracted flow (weight 1).
            ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: 1,
                min_rate: contract,
                activations: vec![(SimTime::ZERO, None)],
            },
            // Three best-effort weight-1 flows.
            ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: 1,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            },
            ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: 1,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            },
            ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: 1,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            },
        ],
        horizon: SimTime::from_secs(120),
        seed,
        shards: 1,
    }
}

fn steady(result: &scenarios::ExperimentResult, i: usize) -> f64 {
    result.mean_rate_in(i, SimTime::from_secs(80), SimTime::from_secs(120))
}

#[test]
fn binding_contract_is_honoured() {
    // The 300 pkt/s contract is reserved; the 200 pkt/s surplus is split
    // four ways (floor + share): contracted = 350, best-effort = 50.
    let scenario = contract_scenario(300.0, 41);
    let expected = scenario.expected_rates_at(SimTime::from_secs(100));
    assert!((expected[0] - 350.0).abs() < 1e-6, "{expected:?}");
    assert!((expected[1] - 50.0).abs() < 1e-6, "{expected:?}");

    let result = scenario.run(&Corelite::new(CoreliteConfig::default()));
    let contracted = steady(&result, 0);
    assert!(
        contracted >= 300.0 * 0.99,
        "contracted flow got {contracted}, contract is 300"
    );
    assert!(
        (contracted - 350.0).abs() / 350.0 < 0.15,
        "contracted flow got {contracted}, expected ≈350"
    );
    for i in 1..4 {
        let r = steady(&result, i);
        assert!(
            (r - 50.0).abs() / 50.0 < 0.35,
            "best-effort flow {i} got {r}, expected ≈50"
        );
    }
}

#[test]
fn contract_floor_holds_from_the_first_instant() {
    // Unlike best-effort flows, a contracted flow never slow-starts below
    // its admitted rate: the allotted rate is ≥ the contract at every
    // recorded instant.
    let scenario = contract_scenario(200.0, 42);
    let result = scenario.run(&Corelite::new(CoreliteConfig::default()));
    for (t, rate) in result.allotted_rate(0).iter() {
        assert!(
            rate >= 200.0 - 1e-9,
            "allotted rate {rate} below contract at {t}"
        );
    }
}

#[test]
fn small_contract_adds_its_reservation() {
    // floor + share: a 50 pkt/s contract is reserved off the top, then
    // the 450 pkt/s surplus splits 112.5 each: contracted 162.5, others
    // 112.5.
    let scenario = contract_scenario(50.0, 43);
    let expected = scenario.expected_rates_at(SimTime::from_secs(100));
    assert!((expected[0] - 162.5).abs() < 1e-6, "{expected:?}");
    assert!((expected[1] - 112.5).abs() < 1e-6, "{expected:?}");
    let result = scenario.run(&Corelite::new(CoreliteConfig::default()));
    let contracted = steady(&result, 0);
    let others: f64 = (1..4).map(|i| steady(&result, i)).sum::<f64>() / 3.0;
    assert!(
        contracted > others + 25.0,
        "contracted flow should keep its reservation edge: {contracted} vs {others}"
    );
}

#[test]
fn contract_survives_a_congestion_storm() {
    // Ten extra best-effort flows join mid-run; the contracted flow must
    // stay pinned at its floor throughout.
    let mut scenario = contract_scenario(250.0, 44);
    for _ in 0..10 {
        scenario.flows.push(ScenarioFlow {
            transport: Default::default(),
            path: Route::new(0, 1).into(),
            weight: 2,
            min_rate: 0.0,
            activations: vec![(SimTime::from_secs(40), None)],
        });
    }
    let result = scenario.run(&Corelite::new(CoreliteConfig::default()));
    let storm = result.mean_rate_in(0, SimTime::from_secs(80), SimTime::from_secs(120));
    assert!(
        storm >= 250.0 * 0.99,
        "contract violated during congestion storm: {storm}"
    );
    // The storm flows still make progress on the residual capacity.
    let total_best_effort: f64 = (4..14)
        .map(|i| result.mean_rate_in(i, SimTime::from_secs(80), SimTime::from_secs(120)))
        .sum();
    assert!(
        total_best_effort > 100.0,
        "best-effort flows starved: {total_best_effort}"
    );
}
