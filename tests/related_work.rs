//! Integration test reproducing the paper's §5 related-work claims:
//! RED "provides no fairness guarantees" — goodput under RED follows the
//! offered load, not the rate weights — while Corelite delivers the
//! weighted allocation for the same flow population.

use baselines::{GreedySource, RedConfig, RedCore};
use corelite::{CoreliteConfig, CoreliteCore, CoreliteEdge};
use fairness::metrics::jain_index;
use netsim::flow::FlowSpec;
use netsim::link::LinkSpec;
use netsim::logic::ForwardLogic;
use netsim::topology::TopologyBuilder;
use netsim::{FlowId, SimReport};
use sim_core::time::{SimDuration, SimTime};

const WEIGHTS: [u32; 3] = [1, 2, 3];

fn access() -> LinkSpec {
    LinkSpec::new(40_000_000, SimDuration::from_millis(1), 400)
}

fn bottleneck() -> LinkSpec {
    LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40)
}

/// Three greedy flows, all offering 400 pkt/s, through a RED core.
fn red_run(offered: [f64; 3]) -> SimReport {
    let mut b = TopologyBuilder::new(61);
    let mut edges = Vec::new();
    for (i, rate) in offered.into_iter().enumerate() {
        edges.push(b.node(&format!("src{i}"), move |_| {
            Box::new(GreedySource::new(rate))
        }));
    }
    let red = b.node("red", |s| Box::new(RedCore::new(s, RedConfig::default())));
    let sink = b.node("sink", |_| Box::new(ForwardLogic));
    for &e in &edges {
        b.link(e, red, access());
    }
    b.link(red, sink, bottleneck());
    for (i, &e) in edges.iter().enumerate() {
        b.flow(FlowSpec::new(vec![e, red, sink], WEIGHTS[i]).active(SimTime::ZERO, None));
    }
    let end = SimTime::from_secs(60);
    let mut net = b.build();
    net.run_until(end);
    net.into_report(end)
}

/// The same three weighted flows under Corelite's adaptive edges.
fn corelite_run() -> SimReport {
    let cfg = CoreliteConfig::default();
    let mut b = TopologyBuilder::new(61);
    let mut edges = Vec::new();
    for i in 0..3 {
        let cfg = cfg.clone();
        edges.push(b.node(&format!("edge{i}"), move |s| {
            Box::new(CoreliteEdge::new(s, cfg))
        }));
    }
    let core = b.node("core", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
    let sink = b.node("sink", |_| Box::new(ForwardLogic));
    for &e in &edges {
        b.link(e, core, access());
    }
    b.link(core, sink, bottleneck());
    for (i, &e) in edges.iter().enumerate() {
        b.flow(FlowSpec::new(vec![e, core, sink], WEIGHTS[i]).active(SimTime::ZERO, None));
    }
    let end = SimTime::from_secs(150);
    let mut net = b.build();
    net.run_until(end);
    net.into_report(end)
}

fn goodputs(report: &SimReport, from: u64, to: u64) -> Vec<f64> {
    (0..3)
        .map(|i| {
            report
                .flow(FlowId::from_index(i))
                .mean_goodput_in(SimTime::from_secs(from), SimTime::from_secs(to))
                .unwrap_or(0.0)
        })
        .collect()
}

#[test]
fn red_ignores_weights() {
    // Equal offered loads, weights 1:2:3 — RED splits the link equally.
    let report = red_run([400.0, 400.0, 400.0]);
    let g = goodputs(&report, 30, 60);
    let weights: Vec<f64> = WEIGHTS.iter().map(|&w| w as f64).collect();
    let weighted_jain = jain_index(&g, &weights);
    assert!(
        weighted_jain < 0.9,
        "RED should NOT be weighted-fair: Jain {weighted_jain:.3}, goodputs {g:?}"
    );
    // …but it IS roughly equal-per-flow for equal offered loads.
    let unweighted_jain = jain_index(&g, &[1.0, 1.0, 1.0]);
    assert!(
        unweighted_jain > 0.98,
        "equal offered loads should split roughly equally: {g:?}"
    );
}

#[test]
fn red_rewards_sending_more() {
    // Offered 150 vs 600 pkt/s with the HIGHER weight on the low sender:
    // RED still gives the aggressive flow more.
    let report = red_run([600.0, 150.0, 150.0]);
    let g = goodputs(&report, 30, 60);
    assert!(
        g[0] > 1.5 * g[1],
        "the aggressive flow should win under RED: {g:?}"
    );
}

#[test]
fn corelite_delivers_weighted_fairness_where_red_cannot() {
    let report = corelite_run();
    let g = goodputs(&report, 120, 150);
    let weights: Vec<f64> = WEIGHTS.iter().map(|&w| w as f64).collect();
    let weighted_jain = jain_index(&g, &weights);
    assert!(
        weighted_jain > 0.98,
        "Corelite should be weighted-fair: Jain {weighted_jain:.3}, goodputs {g:?}"
    );
}

#[test]
fn red_spreads_drops_but_queue_stays_short() {
    // RED's actual virtue (early detection) shows in our substrate too:
    // under the same overload a drop-tail queue rides at its cap while
    // RED holds a short average queue.
    let red = red_run([400.0, 400.0, 400.0]);
    assert!(
        red.links[3].peak_occupancy < 40,
        "RED peak queue {} should stay below the 40-packet cap",
        red.links[3].peak_occupancy
    );
    assert!(red.counter_total("red_early_drops") > 0.0);
}
