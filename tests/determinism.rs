//! Integration test: simulations are a pure function of the seed, and
//! conclusions are robust across seeds.

use std::cell::RefCell;
use std::rc::Rc;

use corelite::CoreliteConfig;
use fairness::metrics::jain_index;
use netsim::telemetry::{Probe, RingProbe};
use scenarios::discipline::Corelite;
use scenarios::exec::{run_parallel, run_serial};
use scenarios::runner::{Scenario, ScenarioFlow};
use scenarios::topology::{Route, TopologySpec};
use sim_core::event::QueueBackend;
use sim_core::time::SimTime;

fn scenario(seed: u64) -> Scenario {
    Scenario {
        topology: TopologySpec::paper_chain(),
        faults: Default::default(),
        churn: None,
        name: "determinism",
        flows: (0..4)
            .map(|i| ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: i % 2 + 1,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            })
            .collect(),
        horizon: SimTime::from_secs(60),
        seed,
        shards: 1,
    }
}

#[test]
fn identical_seeds_give_identical_runs() {
    let a = scenario(99).run(&Corelite::new(CoreliteConfig::default()));
    let b = scenario(99).run(&Corelite::new(CoreliteConfig::default()));
    assert_eq!(a.report.events_processed, b.report.events_processed);
    for i in 0..4 {
        assert_eq!(
            a.report.flows[i].delivered_packets, b.report.flows[i].delivered_packets,
            "flow {i} delivery counts differ"
        );
        let ra: Vec<_> = a.allotted_rate(i).iter().collect();
        let rb: Vec<_> = b.allotted_rate(i).iter().collect();
        assert_eq!(ra, rb, "flow {i} rate series differ");
    }
}

#[test]
fn different_seeds_differ_but_agree_on_fairness() {
    let a = scenario(1).run(&Corelite::new(CoreliteConfig::default()));
    let b = scenario(2).run(&Corelite::new(CoreliteConfig::default()));
    // The random marker selection must actually differ...
    let da: Vec<u64> = a.report.flows.iter().map(|f| f.delivered_packets).collect();
    let db: Vec<u64> = b.report.flows.iter().map(|f| f.delivered_packets).collect();
    assert_ne!(da, db, "different seeds should perturb the run");
    // ...while the fairness conclusion is seed-independent.
    for r in [&a, &b] {
        let rates: Vec<f64> = (0..4)
            .map(|i| r.mean_rate_in(i, SimTime::from_secs(40), SimTime::from_secs(60)))
            .collect();
        let weights: Vec<f64> = r.scenario.flows.iter().map(|f| f.weight as f64).collect();
        let j = jain_index(&rates, &weights);
        assert!(j > 0.97, "seed {}: Jain {j:.4}", r.scenario.seed);
    }
}

/// Runs `scenario(seed)` with a probe installed and returns the
/// rendered JSONL stream. Probes are `Rc`-shared (not `Send`), so each
/// executor job builds its own inside the closure and hands back the
/// rendered string.
fn probe_stream(seed: u64) -> String {
    let probe = Rc::new(RefCell::new(RingProbe::with_capacity(1 << 16)));
    scenario(seed).run_instrumented(
        &Corelite::new(CoreliteConfig::default()),
        QueueBackend::Wheel,
        probe.clone() as Rc<RefCell<dyn Probe>>,
    );
    let jsonl = probe.borrow().to_jsonl();
    assert!(!jsonl.is_empty(), "probe recorded nothing");
    jsonl
}

#[test]
fn probe_streams_are_identical_across_runs_and_executors() {
    let seeds: Vec<u64> = vec![7, 8];
    let serial = run_serial(seeds.clone(), probe_stream);
    let parallel = run_parallel(seeds, probe_stream);
    assert_eq!(
        serial, parallel,
        "probe streams diverged between serial and parallel execution"
    );
    // A repeat run of the same seed reproduces the stream byte for byte,
    // and different seeds genuinely perturb it.
    assert_eq!(serial[0], probe_stream(7));
    assert_ne!(serial[0], serial[1]);
}

#[test]
fn probe_installation_does_not_change_the_simulation() {
    // The epoch-grained hooks only *observe*; a probed run must report
    // exactly what the probe-less run reports. (CSFQ's sampling timer is
    // gated on `probe_enabled` for the same reason.)
    let bare = scenario(99).run(&Corelite::new(CoreliteConfig::default()));
    let probe = Rc::new(RefCell::new(RingProbe::with_capacity(1 << 16)));
    let probed = scenario(99).run_instrumented(
        &Corelite::new(CoreliteConfig::default()),
        QueueBackend::Wheel,
        probe.clone() as Rc<RefCell<dyn Probe>>,
    );
    assert_eq!(bare.report.events_processed, probed.report.events_processed);
    assert_eq!(format!("{:?}", bare.report), format!("{:?}", probed.report));
    assert!(!probe.borrow().is_empty());
}

#[test]
fn event_counts_are_plausible() {
    let r = scenario(5).run(&Corelite::new(CoreliteConfig::default()));
    // Every delivered packet takes at least 3 hops of events.
    let delivered: u64 = r.report.flows.iter().map(|f| f.delivered_packets).sum();
    assert!(r.report.events_processed > 3 * delivered);
}
