//! Integration test: simulations are a pure function of the seed, and
//! conclusions are robust across seeds.

use corelite::CoreliteConfig;
use fairness::metrics::jain_index;
use scenarios::discipline::Corelite;
use scenarios::runner::{Scenario, ScenarioFlow};
use scenarios::topology::{Route, TopologySpec};
use sim_core::time::SimTime;

fn scenario(seed: u64) -> Scenario {
    Scenario {
        topology: TopologySpec::paper_chain(),
        faults: Default::default(),
        name: "determinism",
        flows: (0..4)
            .map(|i| ScenarioFlow {
                path: Route::new(0, 1).into(),
                weight: i % 2 + 1,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            })
            .collect(),
        horizon: SimTime::from_secs(60),
        seed,
    }
}

#[test]
fn identical_seeds_give_identical_runs() {
    let a = scenario(99).run(&Corelite::new(CoreliteConfig::default()));
    let b = scenario(99).run(&Corelite::new(CoreliteConfig::default()));
    assert_eq!(a.report.events_processed, b.report.events_processed);
    for i in 0..4 {
        assert_eq!(
            a.report.flows[i].delivered_packets, b.report.flows[i].delivered_packets,
            "flow {i} delivery counts differ"
        );
        let ra: Vec<_> = a.allotted_rate(i).iter().collect();
        let rb: Vec<_> = b.allotted_rate(i).iter().collect();
        assert_eq!(ra, rb, "flow {i} rate series differ");
    }
}

#[test]
fn different_seeds_differ_but_agree_on_fairness() {
    let a = scenario(1).run(&Corelite::new(CoreliteConfig::default()));
    let b = scenario(2).run(&Corelite::new(CoreliteConfig::default()));
    // The random marker selection must actually differ...
    let da: Vec<u64> = a.report.flows.iter().map(|f| f.delivered_packets).collect();
    let db: Vec<u64> = b.report.flows.iter().map(|f| f.delivered_packets).collect();
    assert_ne!(da, db, "different seeds should perturb the run");
    // ...while the fairness conclusion is seed-independent.
    for r in [&a, &b] {
        let rates: Vec<f64> = (0..4)
            .map(|i| r.mean_rate_in(i, SimTime::from_secs(40), SimTime::from_secs(60)))
            .collect();
        let weights: Vec<f64> = r.scenario.flows.iter().map(|f| f.weight as f64).collect();
        let j = jain_index(&rates, &weights);
        assert!(j > 0.97, "seed {}: Jain {j:.4}", r.scenario.seed);
    }
}

#[test]
fn event_counts_are_plausible() {
    let r = scenario(5).run(&Corelite::new(CoreliteConfig::default()));
    // Every delivered packet takes at least 3 hops of events.
    let delivered: u64 = r.report.flows.iter().map(|f| f.delivered_packets).sum();
    assert!(r.report.events_processed > 3 * delivered);
}
