//! Engine-mode byte-identity for the closed-loop transport scenarios:
//! the mixed LIMD/GBN/Reno workloads must produce the same
//! `format!("{:?}", report)` bytes under every engine configuration —
//! serial vs the sharded executor at 1, 2 and 4 shards, the wheel vs
//! the heap event queue, and transmission trains vs per-packet
//! dispatch. Ack-clocked senders add reverse-path control traffic,
//! RTO/tick timer chains and receiver-side state to the event stream;
//! none of it may observe the engine mode.

use corelite::CoreliteConfig;
use netsim::{DispatchMode, Transport};
use scenarios::discipline::Corelite;
use scenarios::exec::{run_parallel, run_serial};
use scenarios::runner::Scenario;
use scenarios::{mixed_transports, mixed_transports_fat_tree};
use sim_core::event::QueueBackend;
use sim_core::time::SimTime;

fn compress(mut scenario: Scenario, secs: u64) -> Scenario {
    scenario.horizon = SimTime::from_secs(secs);
    scenario
}

fn scenarios() -> [Scenario; 2] {
    [
        compress(mixed_transports(7), 15),
        compress(mixed_transports_fat_tree(7), 15),
    ]
}

#[test]
fn transport_scenarios_are_byte_identical_across_shards() {
    let corelite = Corelite::new(CoreliteConfig::default());
    for scenario in scenarios() {
        let serial = scenario.run(&corelite);
        let expected = format!("{:?}", serial.report);
        // Shard 1 included: the single-shard run still goes through the
        // mailbox/epoch machinery and the replicated-push protocol that
        // the ack sink's receiver resets rely on.
        for shards in [1usize, 2, 4] {
            let (sharded, per_shard) = scenario.run_sharded(&corelite, shards);
            assert_eq!(per_shard.len(), shards);
            assert_eq!(
                expected,
                format!("{:?}", sharded.report),
                "{} diverged at {shards} shards",
                scenario.name
            );
        }
    }
}

#[test]
fn transport_scenarios_are_byte_identical_across_queue_backends() {
    let corelite = Corelite::new(CoreliteConfig::default());
    for scenario in scenarios() {
        let wheel = format!(
            "{:?}",
            scenario.run_with_queue(&corelite, QueueBackend::Wheel)
        );
        let heap = format!(
            "{:?}",
            scenario.run_with_queue(&corelite, QueueBackend::Heap)
        );
        assert_eq!(wheel, heap, "{} diverged across backends", scenario.name);
    }
}

#[test]
fn transport_scenarios_are_byte_identical_across_dispatch_modes() {
    let corelite = Corelite::new(CoreliteConfig::default());
    for scenario in scenarios() {
        let train = format!(
            "{:?}",
            scenario.run_with_dispatch(&corelite, DispatchMode::Train)
        );
        let per_packet = format!(
            "{:?}",
            scenario.run_with_dispatch(&corelite, DispatchMode::PerPacket)
        );
        assert_eq!(
            train, per_packet,
            "dispatch modes diverged on {}",
            scenario.name
        );
    }
}

#[test]
fn transport_runs_agree_under_serial_and_parallel_exec() {
    let seeds: Vec<u64> = (1..=4).collect();
    let work = |seed: u64| {
        let corelite = Corelite::new(CoreliteConfig::default());
        format!(
            "{:?}",
            compress(mixed_transports(seed), 12).run(&corelite).report
        )
    };
    let serial = run_serial(seeds.clone(), work);
    let parallel = run_parallel(seeds, work);
    assert_eq!(serial, parallel);
    // Non-vacuous: the seed reaches the event stream.
    assert!(serial.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn closed_loop_cohorts_actually_ran() {
    // Guard against the identity suite passing vacuously: the Reno
    // flows must have delivered real traffic through the ack-clocked
    // path (distinct from the open-loop cohort's behaviour).
    let corelite = Corelite::new(CoreliteConfig::default());
    let scenario = compress(mixed_transports(7), 15);
    let result = scenario.run(&corelite);
    for (i, f) in scenario.flows.iter().enumerate() {
        let report = &result.report.flows[i];
        assert!(
            report.delivered_packets > 50,
            "flow {} ({:?}) delivered only {}",
            i + 1,
            f.transport,
            report.delivered_packets
        );
        if f.transport == Transport::Limd {
            assert_eq!(
                report.duplicate_packets,
                0,
                "open-loop flow {} cannot redeliver",
                i + 1
            );
        }
    }
    // Go-back-N retransmits whole windows on loss; with ten flows on a
    // 500 pkt/s bottleneck some duplicate deliveries must occur.
    let dups: u64 = result
        .report
        .flows
        .iter()
        .map(|f| f.duplicate_packets)
        .sum();
    assert!(dups > 0, "no duplicate deliveries recorded");
}

#[test]
fn closed_loop_flows_respect_rate_weights() {
    // The acceptance bound documented in EXPERIMENTS.md ("Mixed
    // transports"): on the full 80 s chain scenario, every flow's
    // steady-state goodput — ack-clocked Reno cohort included — stays
    // within ±45% of its weighted max-min share, each cohort's mean
    // rate per unit weight within ±10% of the analytic 16.67 pkt/s,
    // and the pooled weighted Jain index at or above 0.97.
    let corelite = Corelite::new(CoreliteConfig::default());
    let scenario = mixed_transports(20000);
    let result = scenario.run(&corelite);
    let from = SimTime::from_secs(40);
    let to = scenario.horizon;
    let expected = result.expected_rates_at(SimTime::from_secs(60));

    let mut per_weight = std::collections::BTreeMap::new();
    let mut rates = Vec::new();
    let mut weights = Vec::new();
    for (i, f) in scenario.flows.iter().enumerate() {
        let measured = result.report.flows[i]
            .goodput
            .mean_in(from, to)
            .unwrap_or(0.0);
        let err = (measured - expected[i]).abs() / expected[i];
        assert!(
            err <= 0.45,
            "flow {} ({:?}, w={}) off by {:.0}%: {measured:.1} vs {:.1}",
            i + 1,
            f.transport,
            f.weight,
            100.0 * err,
            expected[i]
        );
        let entry = per_weight.entry(f.transport as u8).or_insert((0.0, 0usize));
        entry.0 += measured / f.weight as f64;
        entry.1 += 1;
        rates.push(measured);
        weights.push(f.weight as f64);
    }
    for (transport, (sum, n)) in per_weight {
        let mean = sum / n as f64;
        let share = 500.0 / 30.0; // C1-C2 bottleneck, total weight 30
        assert!(
            (mean - share).abs() / share <= 0.10,
            "cohort {transport} mean per-weight rate {mean:.2} vs {share:.2}"
        );
    }
    let jain = fairness::metrics::jain_index(&rates, &weights);
    assert!(jain >= 0.97, "pooled weighted Jain {jain:.4}");
}
