//! Integration test: end-to-end delay statistics are physically
//! consistent — bounded below by propagation and above by the worst-case
//! queueing along the path — and Corelite's incipient-congestion target
//! keeps typical queueing well below the drop-tail bound.

use corelite::CoreliteConfig;
use csfq::CsfqConfig;
use scenarios::discipline::{Corelite, Csfq, Discipline};
use scenarios::runner::{Scenario, ScenarioFlow};
use scenarios::topology::{Route, TopologySpec};
use sim_core::time::SimTime;

fn scenario(seed: u64) -> Scenario {
    Scenario {
        topology: TopologySpec::paper_chain(),
        faults: Default::default(),
        churn: None,
        name: "delay",
        flows: (0..6)
            .map(|i| ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: i as u32 % 3 + 1,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            })
            .collect(),
        horizon: SimTime::from_secs(120),
        seed,
        shards: 1,
    }
}

/// Path: ingress → C1 → C2 → egress = 3 links of 40 ms propagation plus
/// serialization (2 ms per hop at 1 KB / 4 Mbps).
const PROPAGATION_S: f64 = 3.0 * 0.040;
/// Worst case adds a full 40-packet queue at each of 3 hops: 40 × 2 ms.
const WORST_QUEUEING_S: f64 = 3.0 * 40.0 * 0.002;

#[test]
fn delay_quantiles_are_physically_bounded() {
    let disciplines: Vec<Box<dyn Discipline>> = vec![
        Box::new(Corelite::new(CoreliteConfig::default())),
        Box::new(Csfq::new(CsfqConfig::default())),
    ];
    for discipline in disciplines {
        let result = scenario(71).run(discipline.as_ref());
        for (i, f) in result.report.flows.iter().enumerate() {
            let p01 = f.delay_quantile(0.01).expect("packets delivered");
            let p50 = f.delay_quantile(0.5).unwrap();
            let p99 = f.delay_quantile(0.99).unwrap();
            assert!(
                p01 >= PROPAGATION_S * 0.99,
                "{}, flow {i}: p01 {p01} below light-speed floor",
                result.discipline_name
            );
            assert!(
                p50 <= p99,
                "{}, flow {i}: p50 {p50} > p99 {p99}",
                result.discipline_name
            );
            assert!(
                p99 <= PROPAGATION_S + WORST_QUEUEING_S + 0.05,
                "{}, flow {i}: p99 {p99} above the drop-tail bound",
                result.discipline_name
            );
            assert!(
                f.mean_delay_secs >= PROPAGATION_S * 0.99
                    && f.mean_delay_secs <= PROPAGATION_S + WORST_QUEUEING_S,
                "{}, flow {i}: mean {} out of range",
                result.discipline_name,
                f.mean_delay_secs
            );
        }
    }
}

#[test]
fn corelite_keeps_typical_queueing_near_the_threshold() {
    // q_thresh = 8 packets of 40: typical (median) queueing should sit
    // nearer 8×2 ms per congested hop than the 80 ms worst case.
    let result = scenario(72).run(&Corelite::new(CoreliteConfig::default()));
    for (i, f) in result.report.flows.iter().enumerate() {
        let p50 = f.delay_quantile(0.5).unwrap();
        let queueing = p50 - PROPAGATION_S - 3.0 * 0.002;
        assert!(
            queueing < 0.06,
            "flow {i}: median queueing {queueing:.3}s should stay well below the 80 ms cap"
        );
    }
}

#[test]
fn idle_flow_reports_no_delay_quantiles() {
    let mut s = scenario(73);
    // Flow 5 never activates within the horizon.
    s.flows[5].activations = vec![(SimTime::from_secs(500), None)];
    let result = s.run(&Corelite::new(CoreliteConfig::default()));
    assert_eq!(result.report.flows[5].delay_quantile(0.5), None);
    assert_eq!(result.report.flows[5].delivered_packets, 0);
}
