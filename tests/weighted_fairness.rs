//! Integration test: both disciplines and both Corelite marker selectors
//! allocate a shared bottleneck in proportion to the rate weights.

use corelite::{CoreliteConfig, SelectorKind};
use csfq::CsfqConfig;
use fairness::metrics::{jain_index, normalized_spread};
use scenarios::discipline::{Corelite, Csfq};
use scenarios::runner::{Scenario, ScenarioFlow};
use scenarios::topology::{Route, TopologySpec};
use sim_core::time::SimTime;

/// Six flows with weights 1, 1, 2, 2, 3, 3 over the first congested link
/// (total weight 12 ⇒ 41.67 pkt/s per unit weight).
fn six_flows(seed: u64) -> Scenario {
    let weights = [1u32, 1, 2, 2, 3, 3];
    Scenario {
        topology: TopologySpec::paper_chain(),
        faults: Default::default(),
        churn: None,
        name: "six_flows",
        flows: weights
            .into_iter()
            .map(|w| ScenarioFlow {
                transport: Default::default(),
                path: Route::new(0, 1).into(),
                weight: w,
                min_rate: 0.0,
                activations: vec![(SimTime::ZERO, None)],
            })
            .collect(),
        horizon: SimTime::from_secs(120),
        seed,
        shards: 1,
    }
}

fn steady_rates(result: &scenarios::ExperimentResult) -> Vec<f64> {
    (0..result.scenario.flows.len())
        .map(|i| result.mean_rate_in(i, SimTime::from_secs(80), SimTime::from_secs(120)))
        .collect()
}

fn assert_weighted_fair(result: &scenarios::ExperimentResult, label: &str) {
    let rates = steady_rates(result);
    let weights: Vec<f64> = result
        .scenario
        .flows
        .iter()
        .map(|f| f.weight as f64)
        .collect();
    let jain = jain_index(&rates, &weights);
    assert!(jain > 0.98, "{label}: Jain {jain:.4}, rates {rates:?}");
    let spread = normalized_spread(&rates, &weights);
    assert!(
        spread < 1.4,
        "{label}: normalized spread {spread:.2}, rates {rates:?}"
    );
    // The link is actually being used.
    let total: f64 = rates.iter().sum();
    assert!(total > 400.0, "{label}: aggregate {total:.0} of 500 pkt/s");
}

#[test]
fn corelite_stateless_selector_is_weighted_fair() {
    let result = six_flows(1).run(&Corelite::new(CoreliteConfig::default()));
    assert_weighted_fair(&result, "corelite/stateless");
    assert_eq!(result.total_drops(), 0, "corelite should be loss-free here");
}

#[test]
fn corelite_cache_selector_is_weighted_fair() {
    let cfg = CoreliteConfig::default().with_selector(SelectorKind::Cache { capacity: 256 });
    let result = six_flows(2).run(&Corelite::new(cfg));
    assert_weighted_fair(&result, "corelite/cache");
}

#[test]
fn csfq_is_weighted_fair() {
    let result = six_flows(3).run(&Csfq::new(CsfqConfig::default()));
    assert_weighted_fair(&result, "csfq");
}

#[test]
fn corelite_drops_far_less_than_csfq() {
    // The paper's headline §4.4 comparison on equal terms.
    let corelite = six_flows(4).run(&Corelite::new(CoreliteConfig::default()));
    let csfq = six_flows(4).run(&Csfq::new(CsfqConfig::default()));
    assert!(
        csfq.total_drops() > 10 * corelite.total_drops().max(1),
        "corelite {} drops vs csfq {}",
        corelite.total_drops(),
        csfq.total_drops()
    );
}

#[test]
fn below_share_flows_receive_no_corelite_feedback() {
    // §3.2: flows transmitting at or below their weighted fair share must
    // not be throttled. Give flow 0 a tiny activation gap so it stays in
    // slow-start ramp far below its share while others saturate.
    let mut scenario = six_flows(5);
    // Flow 0 starts late: while it ramps from 1 pkt/s it is far below its
    // 41 pkt/s share, so it must climb monotonically (no feedback).
    scenario.flows[0].activations = vec![(SimTime::from_secs(60), None)];
    let result = scenario.run(&Corelite::new(CoreliteConfig::default()));
    let series = result.allotted_rate(0);
    let early: Vec<f64> = series
        .iter()
        .filter(|(t, _)| *t >= SimTime::from_secs(60) && *t < SimTime::from_secs(64))
        .map(|(_, v)| v)
        .collect();
    assert!(
        early.windows(2).all(|w| w[1] >= w[0]),
        "a far-below-share flow should ramp monotonically: {early:?}"
    );
}

#[test]
fn congestion_module_is_replaceable() {
    // §3.1: "the congestion estimation module can be replaced with no
    // impact on the rest of the Corelite mechanisms" — the RED-style and
    // DECbit-style detectors must still produce a weighted-fair,
    // low-loss allocation.
    use corelite::DetectorKind;
    for (name, detector) in [
        (
            "red",
            DetectorKind::Red {
                wq: 0.25,
                min_thresh: 5.0,
                max_thresh: 15.0,
                max_p: 0.2,
            },
        ),
        (
            "decbit",
            DetectorKind::Decbit {
                threshold: 2.0,
                gain: 1.0,
            },
        ),
    ] {
        let cfg = CoreliteConfig {
            detector,
            ..CoreliteConfig::default()
        };
        let result = six_flows(6).run(&Corelite::new(cfg));
        assert_weighted_fair(&result, name);
        assert!(
            result.total_drops() < 100,
            "{name}: drops {}",
            result.total_drops()
        );
    }
}
