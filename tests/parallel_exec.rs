//! Determinism regression: the parallel experiment executor must produce
//! results byte-identical to serial execution. Every run owns its own
//! seeded RNG streams, so thread scheduling may reorder wall-clock work
//! but never the results — checked here by comparing the full `Debug`
//! rendering of every `ExperimentResult` (reports, time series, drop
//! counters, everything) across both executors.

use scenarios::discipline::by_name;
use scenarios::exec::{run_parallel, run_serial};
use scenarios::runner::Scenario;
use scenarios::{fig5_6, Discipline};
use sim_core::time::SimTime;

fn compressed(seed: u64) -> Scenario {
    let mut s = fig5_6(seed);
    s.horizon = SimTime::from_secs(25);
    s
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let seeds: Vec<u64> = (1..=10).collect();
    let discipline = by_name("corelite").expect("registered");
    let work = |seed: u64| format!("{:?}", compressed(seed).run(discipline.as_ref()));
    let serial = run_serial(seeds.clone(), work);
    let parallel = run_parallel(seeds, work);
    assert_eq!(serial, parallel);
    // Different seeds genuinely differ, so the comparison is not vacuous.
    assert!(serial.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn parallel_sweep_matches_serial_across_disciplines_and_topologies() {
    // One job per registered discipline on a non-chain topology: the
    // executor must be deterministic regardless of which logic runs.
    let disciplines: Vec<Box<dyn Discipline>> = scenarios::discipline::default_registry();
    let jobs: Vec<usize> = (0..disciplines.len()).collect();
    let work = |i: usize| {
        let result = Scenario::fat_tree_mix(SimTime::from_secs(15), 7).run(disciplines[i].as_ref());
        format!("{result:?}")
    };
    let serial = run_serial(jobs.clone(), work);
    let parallel = run_parallel(jobs, work);
    assert_eq!(serial, parallel);
}
