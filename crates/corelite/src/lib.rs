//! **Corelite**: per-flow weighted rate fairness in a core-stateless
//! network.
//!
//! This crate implements the QoS architecture of *"Achieving Per-Flow
//! Weighted Rate Fairness in a Core Stateless Network"* (Sivakumar, Kim,
//! Venkitaraman, Li, Bharghavan — ICDCS 2000) on top of the [`netsim`]
//! substrate. Three mechanisms cooperate:
//!
//! 1. **Shaping and marking at the edge** ([`edge::CoreliteEdge`]): every
//!    flow is shaped to its allowed rate `b_g(f)`, and a marker carrying
//!    the flow's *normalized rate* `r_n = b_g/w` is piggybacked on every
//!    `N_w = K1·w`-th data packet, so a flow's marker rate reflects its
//!    normalized rate.
//! 2. **Incipient congestion detection and weighted fair marker feedback
//!    at the core** ([`router::CoreliteCore`]): each congestion epoch the
//!    core compares the average queue `q_avg` against `q_thresh` and, on
//!    congestion, returns [`congestion::marker_feedback_count`] markers to
//!    the edges that generated them — selected either from a bounded
//!    [`cache::MarkerCache`] (§2) or by the truly-stateless selective
//!    scheme of [`stateless::StatelessSelector`] (§3.2).
//! 3. **Rate adaptation at the edge** (also [`edge::CoreliteEdge`]): a
//!    weighted linear-increase/multiplicative-decrease rule —
//!    `b_g += α` on silence, `b_g = max(0, b_g − β·m)` on `m` markers,
//!    reacting to the **maximum** per-core marker count — plus the paper's
//!    slow-start (double every second until the first notification or
//!    `ss_thresh`).
//!
//! No core router keeps per-flow state: the marker cache holds opaque
//! recently-seen markers, and the stateless selector keeps exactly two
//! scalars per link (`r_av`, `w_av`) plus a deficit counter.
//!
//! # Example
//!
//! Two flows with weights 1 and 2 across one 500 pkt/s bottleneck
//! converge to rates in a 1:2 ratio:
//!
//! ```
//! use corelite::{CoreliteConfig, CoreliteCore, CoreliteEdge};
//! use netsim::flow::FlowSpec;
//! use netsim::link::LinkSpec;
//! use netsim::logic::ForwardLogic;
//! use netsim::topology::TopologyBuilder;
//! use sim_core::time::{SimDuration, SimTime};
//!
//! let cfg = CoreliteConfig::default();
//! let mut b = TopologyBuilder::new(7);
//! let edge = b.node("edge", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
//! let core = b.node("core", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
//! let sink = b.node("sink", |_| Box::new(ForwardLogic));
//! b.link(edge, core, LinkSpec::new(40_000_000, SimDuration::from_millis(1), 400));
//! b.link(core, sink, LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40));
//! b.flow(FlowSpec::new(vec![edge, core, sink], 1).active(SimTime::ZERO, None));
//! b.flow(FlowSpec::new(vec![edge, core, sink], 2).active(SimTime::ZERO, None));
//! let mut net = b.build();
//! let end = SimTime::from_secs(260);
//! net.run_until(end);
//! let report = net.into_report(end);
//! let r1 = report.allotted_rate(netsim::FlowId::from_index(0)).unwrap()
//!     .mean_in(SimTime::from_secs(200), end).unwrap();
//! let r2 = report.allotted_rate(netsim::FlowId::from_index(1)).unwrap()
//!     .mean_in(SimTime::from_secs(200), end).unwrap();
//! assert!((r2 / r1 - 2.0).abs() < 0.4, "ratio {}", r2 / r1);
//! ```

pub mod aggregate;
pub mod cache;
pub mod cc;
pub mod config;
pub mod congestion;
pub mod controller;
pub mod detector;
pub mod edge;
pub mod fluid;
pub mod gateway;
pub mod router;
pub mod stateless;

pub use aggregate::AggregatingEdge;
pub use cache::MarkerCache;
pub use cc::{gbn_edge, CoreliteCc};
pub use config::{CoreliteConfig, DecreasePolicy, MuUnit, SelectorKind};
pub use congestion::marker_feedback_count;
pub use detector::{CongestionDetector, DetectorKind};
pub use edge::CoreliteEdge;
pub use fluid::FluidModel;
pub use gateway::CoreliteGateway;
pub use router::CoreliteCore;
pub use stateless::StatelessSelector;
