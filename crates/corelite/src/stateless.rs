//! The truly flow-stateless selective marker feedback scheme (§3.2).
//!
//! Instead of caching markers, the core router keeps exactly two running
//! scalars per link — `r_av`, the running average of the normalized rates
//! labelled on passing markers, and `w_av`, the running average of markers
//! observed per epoch — plus a per-epoch deficit counter.
//!
//! When congestion is detected, the router must return `F_n` markers. Each
//! arriving marker is *selected* with probability `p_w = F_n / w_av`:
//!
//! * selected and `r_n ≥ r_av` → sent back to its edge;
//! * selected but `r_n < r_av` → **not** sent; the deficit is incremented;
//! * not selected, but the deficit is positive and `r_n ≥ r_av` → sent
//!   back and the deficit decremented.
//!
//! The deficit swap ensures that a below-average flow's unlucky selection
//! is replaced by a later above-average marker, so only flows at or above
//! the average normalized rate — precisely the ones over-using the link —
//! ever receive feedback. `r_av` over-estimates the true average (faster
//! flows contribute more markers), which is what isolates the over-users;
//! this is the crate's improvement over CSFQ's explicit fair-share
//! estimate.

use sim_core::rng::DetRng;

use netsim::packet::Marker;

/// Per-link state of the stateless selective feedback scheme.
///
/// # Example
///
/// ```
/// use corelite::stateless::StatelessSelector;
/// use netsim::packet::Marker;
/// use netsim::{FlowId, NodeId};
/// use sim_core::rng::DetRng;
///
/// let mut sel = StatelessSelector::new(0.1);
/// let mut rng = DetRng::new(3);
/// let m = Marker { flow: FlowId::from_index(0), edge: NodeId::from_index(0), normalized_rate: 10.0 };
/// // No congestion signalled yet: nothing is ever selected.
/// assert!(!sel.on_marker(&m, &mut rng));
/// ```
#[derive(Debug, Clone)]
pub struct StatelessSelector {
    gain: f64,
    r_av: Option<f64>,
    w_av: Option<f64>,
    epoch_markers: u64,
    p_w: f64,
    deficit: u64,
    sent_this_epoch: u64,
}

impl StatelessSelector {
    /// Creates a selector whose running averages use exponential gain
    /// `gain` (per marker for `r_av`, per epoch for `w_av`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < gain ≤ 1`.
    pub fn new(gain: f64) -> Self {
        assert!(
            gain > 0.0 && gain <= 1.0,
            "running average gain must be in (0, 1], got {gain}"
        );
        StatelessSelector {
            gain,
            r_av: None,
            w_av: None,
            epoch_markers: 0,
            p_w: 0.0,
            deficit: 0,
            sent_this_epoch: 0,
        }
    }

    /// Observes a marker passing through the link and decides whether to
    /// send it back as feedback. Always updates `r_av` and the per-epoch
    /// marker count, even when the link is uncongested.
    pub fn on_marker(&mut self, marker: &Marker, rng: &mut DetRng) -> bool {
        let rn = marker.normalized_rate;
        let r_av = match self.r_av {
            None => {
                self.r_av = Some(rn);
                rn
            }
            Some(prev) => {
                let next = (1.0 - self.gain) * prev + self.gain * rn;
                self.r_av = Some(next);
                next
            }
        };
        self.epoch_markers += 1;
        if self.p_w <= 0.0 {
            return false;
        }
        let above_average = rn >= r_av;
        if rng.bernoulli(self.p_w) {
            if above_average {
                self.sent_this_epoch += 1;
                true
            } else {
                self.deficit += 1;
                false
            }
        } else if self.deficit > 0 && above_average {
            self.deficit -= 1;
            self.sent_this_epoch += 1;
            true
        } else {
            false
        }
    }

    /// Closes a congestion epoch: folds the epoch's marker count into
    /// `w_av`, then arms the next epoch to return `fn_count` markers
    /// (`0` when the link is uncongested).
    ///
    /// # Panics
    ///
    /// Panics if `fn_count` is negative or not finite.
    pub fn on_epoch(&mut self, fn_count: f64) {
        assert!(
            fn_count.is_finite() && fn_count >= 0.0,
            "marker feedback count must be finite and non-negative, got {fn_count}"
        );
        let count = self.epoch_markers as f64;
        // Idle epochs (no markers at all) carry no information about the
        // per-epoch marker rate of *active* traffic — folding their zeros
        // in would drive `w_av → 0` during a lull and cap `p_w` at 1.0,
        // producing a spurious feedback burst on the first markers after
        // the idle period. Keep the last informed average instead. The
        // idle test is on the integer marker count, so it is exact.
        let w_av = match self.w_av {
            _ if self.epoch_markers == 0 => self.w_av.unwrap_or(0.0),
            None => {
                self.w_av = Some(count);
                count
            }
            Some(prev) => {
                let next = (1.0 - self.gain) * prev + self.gain * count;
                self.w_av = Some(next);
                next
            }
        };
        self.p_w = if fn_count > 0.0 && w_av > 0.0 {
            (fn_count / w_av).min(1.0)
        } else {
            0.0
        };
        self.epoch_markers = 0;
        self.deficit = 0;
        self.sent_this_epoch = 0;
    }

    /// The running average `r_av` of labelled normalized rates.
    pub fn r_av(&self) -> Option<f64> {
        self.r_av
    }

    /// The running average `w_av` of markers per epoch.
    pub fn w_av(&self) -> Option<f64> {
        self.w_av
    }

    /// The current selection probability `p_w`.
    pub fn p_w(&self) -> f64 {
        self.p_w
    }

    /// Markers sent back so far in the current epoch.
    pub fn sent_this_epoch(&self) -> u64 {
        self.sent_this_epoch
    }

    /// The carried-over selection deficit (selections owed from past
    /// epochs whose probabilistic picks came up short).
    pub fn deficit(&self) -> u64 {
        self.deficit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FlowId, NodeId};

    fn m(flow: usize, rn: f64) -> Marker {
        Marker {
            flow: FlowId::from_index(flow),
            edge: NodeId::from_index(0),
            normalized_rate: rn,
        }
    }

    #[test]
    fn nothing_selected_without_congestion() {
        let mut s = StatelessSelector::new(0.1);
        let mut rng = DetRng::new(1);
        for _ in 0..1000 {
            assert!(!s.on_marker(&m(0, 50.0), &mut rng));
        }
        assert_eq!(s.sent_this_epoch(), 0);
    }

    #[test]
    fn r_av_tracks_marker_rates() {
        let mut s = StatelessSelector::new(0.5);
        let mut rng = DetRng::new(1);
        for _ in 0..64 {
            s.on_marker(&m(0, 10.0), &mut rng);
        }
        assert!((s.r_av().unwrap() - 10.0).abs() < 1e-6);
        // r_av over-estimates when a fast flow sends more markers.
        let mut s2 = StatelessSelector::new(0.1);
        for i in 0..900 {
            // 2 fast markers (rate 30) for every slow one (rate 3).
            let rn = if i % 3 == 2 { 3.0 } else { 30.0 };
            s2.on_marker(&m(0, rn), &mut rng);
        }
        let true_mean_of_flows = (30.0 + 3.0) / 2.0;
        assert!(s2.r_av().unwrap() > true_mean_of_flows);
    }

    #[test]
    fn only_above_average_flows_receive_feedback() {
        let mut s = StatelessSelector::new(0.05);
        let mut rng = DetRng::new(7);
        // Warm up the averages: fast flow rn=40 (3 of 4 markers), slow rn=5.
        for i in 0..400 {
            let flow = if i % 4 == 3 { 1 } else { 0 };
            let rn = if flow == 1 { 5.0 } else { 40.0 };
            s.on_marker(&m(flow, rn), &mut rng);
        }
        s.on_epoch(10.0); // congested: want 10 markers back
        let mut fast = 0u64;
        let mut slow = 0u64;
        for i in 0..400 {
            let flow = if i % 4 == 3 { 1 } else { 0 };
            let rn = if flow == 1 { 5.0 } else { 40.0 };
            if s.on_marker(&m(flow, rn), &mut rng) {
                if flow == 1 {
                    slow += 1;
                } else {
                    fast += 1;
                }
            }
        }
        assert_eq!(slow, 0, "below-average flow must never get feedback");
        assert!(fast > 0, "above-average flow must get feedback");
    }

    #[test]
    fn deficit_swaps_unlucky_selections() {
        let mut s = StatelessSelector::new(0.5);
        let mut rng = DetRng::new(1);
        // Alternating markers keep r_av strictly between 1 and 100, so
        // rn = 1 stays below average and rn = 100 at or above it.
        s.on_marker(&m(0, 100.0), &mut rng);
        s.on_marker(&m(1, 1.0), &mut rng);
        s.on_epoch(1.0); // w_av = 2 ⇒ p_w = 0.5
        let mut below_sent = 0u64;
        let mut above_sent = 0u64;
        let mut deficit_seen = false;
        for _ in 0..200 {
            if s.on_marker(&m(1, 1.0), &mut rng) {
                below_sent += 1;
            }
            if s.deficit > 0 {
                deficit_seen = true;
            }
            if s.on_marker(&m(0, 100.0), &mut rng) {
                above_sent += 1;
            }
        }
        assert_eq!(below_sent, 0, "below-average markers are never sent back");
        assert!(
            deficit_seen,
            "selecting a below-average marker accrues deficit"
        );
        // With p_w = 0.5 alone, ~100 of 200 fast markers would be sent;
        // deficit swaps push the count well above that.
        assert!(above_sent > 110, "above_sent {above_sent}");
    }

    #[test]
    fn expected_feedback_close_to_fn_when_all_above_average() {
        let mut s = StatelessSelector::new(0.2);
        let mut rng = DetRng::new(11);
        // Single flow: its rn equals r_av, so every marker is "above".
        for _ in 0..100 {
            s.on_marker(&m(0, 20.0), &mut rng);
        }
        s.on_epoch(0.0); // establish w_av = 100 markers/epoch
        let mut total = 0u64;
        let epochs = 200;
        for _ in 0..epochs {
            s.on_epoch(10.0);
            for _ in 0..100 {
                if s.on_marker(&m(0, 20.0), &mut rng) {
                    total += 1;
                }
            }
        }
        let mean = total as f64 / epochs as f64;
        assert!((mean - 10.0).abs() < 1.0, "mean feedback/epoch {mean}");
    }

    #[test]
    fn idle_epochs_do_not_collapse_w_av() {
        let mut s = StatelessSelector::new(0.1);
        let mut rng = DetRng::new(9);
        // Warm up the per-epoch marker average at 100 markers/epoch.
        for _ in 0..40 {
            for _ in 0..100 {
                s.on_marker(&m(0, 10.0), &mut rng);
            }
            s.on_epoch(0.0);
        }
        let warm = s.w_av().unwrap();
        assert!((warm - 100.0).abs() < 5.0, "warm w_av {warm}");
        // A long lull: epochs close with zero markers observed.
        for _ in 0..200 {
            s.on_epoch(0.0);
        }
        assert_eq!(
            s.w_av(),
            Some(warm),
            "idle epochs must not erode the informed average"
        );
        // Congestion right as traffic resumes: the selection probability
        // must reflect the informed average, not a collapsed one (which
        // would cap p_w at 1.0 and burst feedback to every flow).
        s.on_epoch(10.0);
        assert!(
            (s.p_w() - 10.0 / warm).abs() < 1e-9,
            "p_w {} after idle, expected {}",
            s.p_w(),
            10.0 / warm
        );
        assert!(s.p_w() < 0.2, "no spurious feedback burst after idle");
    }

    #[test]
    fn p_w_caps_at_one_and_resets() {
        let mut s = StatelessSelector::new(0.5);
        let mut rng = DetRng::new(1);
        s.on_marker(&m(0, 1.0), &mut rng);
        s.on_epoch(100.0); // F_n ≫ w_av ⇒ p_w capped
        assert_eq!(s.p_w(), 1.0);
        s.on_epoch(0.0);
        assert_eq!(s.p_w(), 0.0);
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn invalid_gain_rejected() {
        StatelessSelector::new(0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_fn_rejected() {
        StatelessSelector::new(0.5).on_epoch(-1.0);
    }
}
