//! The marker cache (§2): a bounded circular queue of recently forwarded
//! markers.
//!
//! The cache holds the recent history of marker transmissions. Since edges
//! inject markers at a flow's normalized rate, the number of markers a
//! flow holds in the cache is proportional to its normalized rate — so
//! selecting markers uniformly at random produces *weighted fair*
//! feedback without the core router inspecting flows at all.

use sim_core::rng::DetRng;

use netsim::packet::Marker;

/// A bounded circular queue of markers with uniform random selection.
///
/// # Example
///
/// ```
/// use corelite::cache::MarkerCache;
/// use netsim::packet::Marker;
/// use netsim::{FlowId, NodeId};
/// use sim_core::rng::DetRng;
///
/// let mut cache = MarkerCache::new(4);
/// for i in 0..6 {
///     cache.push(Marker {
///         flow: FlowId::from_index(i),
///         edge: NodeId::from_index(0),
///         normalized_rate: i as f64,
///     });
/// }
/// // Oldest two were overwritten.
/// assert_eq!(cache.len(), 4);
/// let mut rng = DetRng::new(1);
/// let picks = cache.select(2, &mut rng);
/// assert_eq!(picks.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MarkerCache {
    ring: Vec<Marker>,
    capacity: usize,
    head: usize,
    len: usize,
}

impl MarkerCache {
    /// Creates a cache holding at most `capacity` markers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "marker cache capacity must be positive");
        MarkerCache {
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            len: 0,
        }
    }

    /// Records a marker, overwriting the oldest entry when full.
    pub fn push(&mut self, marker: Marker) {
        if self.ring.len() < self.capacity {
            self.ring.push(marker);
            self.len = self.ring.len();
        } else {
            self.ring[self.head] = marker;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of markers currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no markers are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cache's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Selects up to `n` distinct cached markers uniformly at random.
    ///
    /// If fewer than `n` markers are cached, all of them are returned.
    /// Selected markers stay in the cache (the paper keeps the history;
    /// stale entries age out by overwriting).
    pub fn select(&self, n: usize, rng: &mut DetRng) -> Vec<Marker> {
        if n >= self.len {
            return self.ring.clone();
        }
        // Partial Fisher–Yates over an index table: O(n) swaps.
        let mut idx: Vec<usize> = (0..self.len).collect();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let j = i + rng.index(self.len - i);
            idx.swap(i, j);
            out.push(self.ring[idx[i]]);
        }
        out
    }

    /// Number of cached markers belonging to `flow` (test/diagnostic aid;
    /// a real core router never inspects the cache contents per flow).
    pub fn count_for_flow(&self, flow: netsim::FlowId) -> usize {
        self.ring.iter().filter(|m| m.flow == flow).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FlowId, NodeId};

    fn marker(flow: usize, rn: f64) -> Marker {
        Marker {
            flow: FlowId::from_index(flow),
            edge: NodeId::from_index(0),
            normalized_rate: rn,
        }
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut c = MarkerCache::new(3);
        for i in 0..3 {
            c.push(marker(i, 0.0));
        }
        assert_eq!(c.len(), 3);
        c.push(marker(99, 0.0));
        assert_eq!(c.len(), 3);
        assert_eq!(c.count_for_flow(FlowId::from_index(0)), 0);
        assert_eq!(c.count_for_flow(FlowId::from_index(99)), 1);
    }

    #[test]
    fn select_returns_distinct_markers() {
        let mut c = MarkerCache::new(10);
        for i in 0..10 {
            c.push(marker(i, 0.0));
        }
        let mut rng = DetRng::new(5);
        let picks = c.select(5, &mut rng);
        assert_eq!(picks.len(), 5);
        let mut flows: Vec<_> = picks.iter().map(|m| m.flow).collect();
        flows.sort();
        flows.dedup();
        assert_eq!(flows.len(), 5, "selections must be distinct slots");
    }

    #[test]
    fn select_more_than_len_returns_all() {
        let mut c = MarkerCache::new(10);
        c.push(marker(0, 0.0));
        c.push(marker(1, 0.0));
        let mut rng = DetRng::new(5);
        assert_eq!(c.select(100, &mut rng).len(), 2);
        assert_eq!(c.select(0, &mut rng).len(), 0);
    }

    #[test]
    fn selection_is_proportional_to_cache_share() {
        // Flow A holds 2/3 of the cache, flow B 1/3: over many draws the
        // feedback ratio must approach 2:1 — the weighted-fairness core of
        // the mechanism.
        let mut c = MarkerCache::new(300);
        for i in 0..300 {
            c.push(marker(if i % 3 == 0 { 1 } else { 0 }, 0.0));
        }
        let mut rng = DetRng::new(42);
        let mut a = 0usize;
        let mut b = 0usize;
        for _ in 0..2000 {
            for m in c.select(3, &mut rng) {
                if m.flow == FlowId::from_index(0) {
                    a += 1;
                } else {
                    b += 1;
                }
            }
        }
        let ratio = a as f64 / b as f64;
        assert!((ratio - 2.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        MarkerCache::new(0);
    }
}
