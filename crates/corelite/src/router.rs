//! The Corelite core router: simple forwarding, incipient congestion
//! detection, and weighted fair marker feedback (§2 step 2, §3).
//!
//! The core router keeps **no per-flow state**. Per outgoing link it holds
//! either a bounded [`MarkerCache`] (§2) or a [`StatelessSelector`]
//! (§3.2). Once per congestion epoch it reads the link's time-weighted
//! average queue length `q_avg`; if `q_avg > q_thresh` it computes
//! [`marker_feedback_count`](crate::congestion::marker_feedback_count)
//! markers (by default) and returns that many — selected
//! uniformly from the cache, or probabilistically from the next epoch's
//! arriving markers — to the edge routers that generated them. It never
//! drops a queued packet to signal congestion.

use sim_core::rng::DetRng;
use sim_core::time::SimTime;

use netsim::ids::LinkId;
use netsim::logic::{Ctx, LogicReport, RouterLogic, TimerKind};
use netsim::packet::Packet;
use netsim::slab::DenseMap;
use netsim::telemetry::Sample;

use crate::cache::MarkerCache;
use crate::config::{CoreliteConfig, SelectorKind};
use crate::detector::CongestionDetector;
use crate::stateless::StatelessSelector;

const TIMER_EPOCH: u32 = 1;

#[derive(Debug)]
enum Selector {
    Cache(MarkerCache),
    Stateless(StatelessSelector),
}

#[derive(Debug)]
struct LinkState {
    selector: Selector,
    detector: Box<dyn CongestionDetector>,
}

/// Router logic for a Corelite core router.
///
/// Install one per core node; it manages congestion detection and marker
/// feedback independently for each of the node's outgoing links. See the
/// [crate docs](crate) for a complete example.
#[derive(Debug)]
pub struct CoreliteCore {
    cfg: CoreliteConfig,
    rng: DetRng,
    /// Per-outgoing-link state, slab-indexed by `LinkId::index()`
    /// (absent for links that do not leave this node). Link ids are
    /// small dense integers, so direct indexing beats a map lookup on
    /// the per-packet marker path.
    links: DenseMap<LinkId, LinkState>,
    markers_seen: u64,
    feedback_sent: u64,
    congested_epochs: u64,
}

impl CoreliteCore {
    /// Creates core-router logic with the given component `seed` and
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CoreliteConfig::validate`].
    pub fn new(seed: u64, cfg: CoreliteConfig) -> Self {
        cfg.validate();
        CoreliteCore {
            cfg,
            rng: DetRng::new(seed),
            links: DenseMap::new(),
            markers_seen: 0,
            feedback_sent: 0,
            congested_epochs: 0,
        }
    }

    fn new_link_state(&self) -> LinkState {
        let selector = match self.cfg.selector {
            SelectorKind::Cache { capacity } => Selector::Cache(MarkerCache::new(capacity)),
            SelectorKind::Stateless => {
                Selector::Stateless(StatelessSelector::new(self.cfg.running_avg_gain))
            }
        };
        LinkState {
            selector,
            detector: self.cfg.detector.build(&self.cfg),
        }
    }

    fn run_epoch(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.links.key_bound() {
            let link = LinkId::from_index(i);
            if !self.links.contains_key(&link) {
                continue;
            }
            let q_avg = ctx.take_link_queue_average(link);
            let mu_pps = ctx
                .link_spec(link)
                .service_rate_pps(self.cfg.reference_packet_size);
            let epoch_secs = self.cfg.core_epoch.as_secs_f64();
            let state = self.links.get_mut(&link).expect("link state exists");
            let fn_count = state.detector.feedback_count(q_avg, mu_pps, epoch_secs);
            assert!(
                fn_count.is_finite() && fn_count >= 0.0,
                "detector returned invalid feedback count {fn_count}"
            );
            if fn_count > 0.0 {
                self.congested_epochs += 1;
            }
            ctx.publish(Sample::for_link("q_avg", link, q_avg));
            ctx.publish(Sample::for_link("f_n", link, fn_count));
            // Round the fractional count probabilistically, preserving
            // the expectation (e.g. 2.3 → 2 with p 0.7, 3 with p 0.3).
            let floor = fn_count.floor();
            let rounded = floor as usize + usize::from(self.rng.bernoulli(fn_count - floor));
            let state = self.links.get_mut(&link).expect("link state exists");
            match &mut state.selector {
                Selector::Cache(cache) => {
                    if rounded > 0 {
                        let picks = cache.select(rounded, &mut self.rng);
                        self.feedback_sent += picks.len() as u64;
                        for marker in picks {
                            ctx.send_marker_feedback(marker);
                        }
                    }
                    ctx.publish(Sample::for_link("cache_len", link, cache.len() as f64));
                }
                Selector::Stateless(selector) => {
                    // The closing epoch's tallies, before `on_epoch`
                    // resets them for the next epoch.
                    ctx.publish(Sample::for_link(
                        "sent_this_epoch",
                        link,
                        selector.sent_this_epoch() as f64,
                    ));
                    // Arm the next epoch: its arriving markers are the
                    // selection candidates (§3.2's epoch-scoped scheme).
                    selector.on_epoch(fn_count);
                    if let Some(r_av) = selector.r_av() {
                        ctx.publish(Sample::for_link("r_av", link, r_av));
                    }
                    if let Some(w_av) = selector.w_av() {
                        ctx.publish(Sample::for_link("w_av", link, w_av));
                    }
                    ctx.publish(Sample::for_link("p_w", link, selector.p_w()));
                    ctx.publish(Sample::for_link("deficit", link, selector.deficit() as f64));
                }
            }
        }
    }
}

impl RouterLogic for CoreliteCore {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for link in ctx.outgoing_links() {
            let state = self.new_link_state();
            self.links.insert(link, state);
        }
        ctx.set_timer(self.cfg.core_epoch, TimerKind::tagged(TIMER_EPOCH));
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        let Some(link) = ctx.next_hop(packet.flow) else {
            return; // not on this packet's path: absorb (cannot happen in practice)
        };
        if let Some(marker) = packet.marker {
            self.markers_seen += 1;
            match &mut self
                .links
                .get_mut(&link)
                .expect("link state initialised in on_start")
                .selector
            {
                Selector::Cache(cache) => cache.push(marker),
                Selector::Stateless(selector) => {
                    if selector.on_marker(&marker, &mut self.rng) {
                        self.feedback_sent += 1;
                        ctx.send_marker_feedback(marker);
                    }
                }
            }
        }
        ctx.forward(link, packet);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
        if timer.tag == TIMER_EPOCH {
            self.run_epoch(ctx);
            ctx.set_timer(self.cfg.core_epoch, TimerKind::tagged(TIMER_EPOCH));
        }
    }

    fn report(&self, _now: SimTime) -> LogicReport {
        let mut report = LogicReport::default();
        report
            .counters
            .insert("markers_seen".to_owned(), self.markers_seen as f64);
        report
            .counters
            .insert("feedback_sent".to_owned(), self.feedback_sent as f64);
        report
            .counters
            .insert("congested_epochs".to_owned(), self.congested_epochs as f64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::CoreliteEdge;
    use netsim::flow::FlowSpec;
    use netsim::link::LinkSpec;
    use netsim::logic::ForwardLogic;
    use netsim::topology::TopologyBuilder;
    use netsim::{FlowId, SimReport};
    use sim_core::time::SimDuration;

    /// Two flows (weights `w1`, `w2`) share one 500 pkt/s bottleneck.
    fn bottleneck_scenario(cfg: CoreliteConfig, w1: u32, w2: u32, end: SimTime) -> SimReport {
        let mut b = TopologyBuilder::new(21);
        let e1 = b.node("edge1", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
        let e2 = b.node("edge2", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
        let core = b.node("core", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
        let sink = b.node("sink", |_| Box::new(ForwardLogic));
        let access = LinkSpec::new(40_000_000, SimDuration::from_millis(1), 400);
        b.link(e1, core, access);
        b.link(e2, core, access);
        b.link(
            core,
            sink,
            LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40),
        );
        b.flow(FlowSpec::new(vec![e1, core, sink], w1).active(SimTime::ZERO, None));
        b.flow(FlowSpec::new(vec![e2, core, sink], w2).active(SimTime::ZERO, None));
        let mut net = b.build();
        net.run_until(end);
        net.into_report(end)
    }

    fn steady_rate(report: &SimReport, flow: usize, from: SimTime, to: SimTime) -> f64 {
        report
            .allotted_rate(FlowId::from_index(flow))
            .unwrap()
            .mean_in(from, to)
            .unwrap()
    }

    #[test]
    fn stateless_selector_converges_to_weighted_shares() {
        // Shares are 167/333 pkt/s, far above the slow-start exit points,
        // so the flat +1/epoch linear increase needs ~150 s to arrive.
        let end = SimTime::from_secs(260);
        let report = bottleneck_scenario(CoreliteConfig::default(), 1, 2, end);
        let from = SimTime::from_secs(200);
        let r1 = steady_rate(&report, 0, from, end);
        let r2 = steady_rate(&report, 1, from, end);
        // Weighted shares of 500 pkt/s at weights 1:2 → ~167 and ~333.
        assert!((r1 - 167.0).abs() < 40.0, "r1 {r1}");
        assert!((r2 - 333.0).abs() < 60.0, "r2 {r2}");
    }

    #[test]
    fn cache_selector_converges_to_weighted_shares() {
        let cfg = CoreliteConfig::default().with_selector(SelectorKind::Cache { capacity: 512 });
        let end = SimTime::from_secs(260);
        let report = bottleneck_scenario(cfg, 1, 2, end);
        let from = SimTime::from_secs(200);
        let r1 = steady_rate(&report, 0, from, end);
        let r2 = steady_rate(&report, 1, from, end);
        assert!((r1 - 167.0).abs() < 40.0, "r1 {r1}");
        assert!((r2 - 333.0).abs() < 60.0, "r2 {r2}");
    }

    #[test]
    fn corelite_is_loss_free_in_steady_state() {
        // §2 design tenet: rate adaptation without any packet loss.
        let end = SimTime::from_secs(280);
        let report = bottleneck_scenario(CoreliteConfig::default(), 1, 1, end);
        assert_eq!(report.total_drops(), 0, "Corelite should not drop packets");
        // And the bottleneck stays well utilized.
        let bottleneck = &report.links[2];
        assert!(
            bottleneck.utilization > 0.75,
            "utilization {}",
            bottleneck.utilization
        );
    }

    #[test]
    fn feedback_is_sent_only_under_congestion() {
        // A single flow on a huge link never congests: no feedback at all.
        let cfg = CoreliteConfig::default();
        let mut b = TopologyBuilder::new(3);
        let edge = b.node("edge", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
        let core = b.node("core", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
        let sink = b.node("sink", |_| Box::new(ForwardLogic));
        let big = LinkSpec::new(100_000_000, SimDuration::from_millis(1), 1000);
        b.link(edge, core, big);
        b.link(core, sink, big);
        b.flow(FlowSpec::new(vec![edge, core, sink], 1).active(SimTime::ZERO, None));
        let end = SimTime::from_secs(20);
        let mut net = b.build();
        net.run_until(end);
        let report = net.into_report(end);
        assert_eq!(report.counter_total("feedback_sent"), 0.0);
        assert!(report.counter_total("markers_seen") > 0.0);
    }
}
