//! Micro-flow aggregation at the ingress edge (§2: an edge-to-edge flow
//! "can potentially comprise of several end to end micro flows"; §6 lists
//! "aggregation of flows at the edge router" as ongoing work).
//!
//! [`AggregatingEdge`] treats all micro-flows sharing an egress edge as
//! **one** edge-to-edge aggregate: a single rate class (weight), a single
//! allowed rate `b_g`, a single marker stream — so the core-stateless
//! fairness machinery sees exactly one flow per edge pair, however many
//! end-to-end conversations ride inside it. The aggregate's allowance is
//! divided round-robin among the currently active members.
//!
//! This is the scaling story of the Diffserv-style edge: per-flow state
//! lives only at the edge, and even there it is per *aggregate*, not per
//! TCP connection.

use sim_core::time::{SimDuration, SimTime};

use netsim::ids::{FlowId, NodeId};
use netsim::logic::{ControlMsg, Ctx, LogicReport, RouterLogic, TimerKind};
use netsim::packet::Marker;
use netsim::slab::{ActiveSet, DenseMap};

use crate::config::CoreliteConfig;
use crate::controller::RateController;

const TIMER_EPOCH: u32 = 1;
const TIMER_EMIT: u32 = 2;

#[derive(Debug)]
struct Group {
    controller: RateController,
    /// Currently active member micro-flows, emission round-robin order.
    members: Vec<FlowId>,
    next_member: usize,
    emission_pending: bool,
}

/// Router logic for an ingress edge that aggregates all micro-flows
/// toward the same egress into one rate-managed edge-to-edge flow of the
/// configured `group_weight`.
#[derive(Debug)]
pub struct AggregatingEdge {
    cfg: CoreliteConfig,
    group_weight: u32,
    /// One group per egress edge router.
    groups: DenseMap<NodeId, Group>,
    /// Groups that currently have members; the epoch scan walks this
    /// instead of every group slot ever created, so churn across many
    /// egresses keeps the tick O(populated groups).
    populated: ActiveSet<NodeId>,
    flow_group: DenseMap<FlowId, NodeId>,
    markers_injected: u64,
    #[allow(dead_code)]
    seed: u64,
}

impl AggregatingEdge {
    /// Creates aggregating-edge logic: every group formed at this edge
    /// gets rate weight `group_weight` (its rate class), regardless of
    /// how many micro-flows it contains.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CoreliteConfig::validate`] or
    /// `group_weight` is zero.
    pub fn new(seed: u64, cfg: CoreliteConfig, group_weight: u32) -> Self {
        cfg.validate();
        assert!(group_weight > 0, "aggregate weight must be positive");
        AggregatingEdge {
            cfg,
            group_weight,
            groups: DenseMap::new(),
            populated: ActiveSet::new(),
            flow_group: DenseMap::new(),
            markers_injected: 0,
            seed,
        }
    }

    fn ensure_emission(&mut self, ctx: &mut Ctx<'_>, egress: NodeId) {
        let g = self.groups.get_mut(&egress).expect("group exists");
        if !g.emission_pending && !g.members.is_empty() && g.controller.rate() > 0.0 {
            g.emission_pending = true;
            ctx.set_timer(
                SimDuration::from_secs_f64(1.0 / g.controller.rate()),
                TimerKind::with_param(TIMER_EMIT, egress.index() as u64),
            );
        }
    }

    fn handle_emit(&mut self, ctx: &mut Ctx<'_>, egress: NodeId) {
        let node = ctx.node();
        let Some(g) = self.groups.get_mut(&egress) else {
            return;
        };
        g.emission_pending = false;
        if g.members.is_empty() || g.controller.rate() <= 0.0 {
            return;
        }
        // Round-robin the aggregate's allowance across its members.
        g.next_member %= g.members.len();
        let flow = g.members[g.next_member];
        g.next_member = (g.next_member + 1) % g.members.len();
        let mut packet = ctx.new_packet(flow);
        if g.controller.take_marker(&self.cfg) {
            packet = packet.with_marker(Marker {
                flow,
                edge: node,
                normalized_rate: g.controller.normalized_excess(),
            });
            self.markers_injected += 1;
        }
        ctx.emit(packet);
        let g = self.groups.get_mut(&egress).expect("group exists");
        g.emission_pending = true;
        ctx.set_timer(
            SimDuration::from_secs_f64(1.0 / g.controller.rate()),
            TimerKind::with_param(TIMER_EMIT, egress.index() as u64),
        );
    }
}

impl RouterLogic for AggregatingEdge {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.cfg.edge_epoch, TimerKind::tagged(TIMER_EPOCH));
    }

    fn on_flow_start(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let now = ctx.now();
        let egress = ctx.flow(flow).egress();
        let rtt = 2.0 * ctx.one_way_delay(flow).as_secs_f64();
        let weight = self.group_weight;
        let cfg = &self.cfg;
        let g = self.groups.entry_or_insert_with(egress, || Group {
            controller: RateController::new(weight, 0.0, rtt),
            members: Vec::new(),
            next_member: 0,
            emission_pending: false,
        });
        if g.members.is_empty() {
            // First member (re)activates the aggregate: fresh slow-start.
            g.controller.start(cfg, now, rtt);
        }
        if !g.members.contains(&flow) {
            g.members.push(flow);
        }
        self.populated.insert(egress);
        self.flow_group.insert(flow, egress);
        self.ensure_emission(ctx, egress);
    }

    fn on_flow_stop(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let Some(&egress) = self.flow_group.get(&flow) else {
            return;
        };
        if ctx.flow(flow).is_transient() {
            // A departed churn flow never restarts; forget its group
            // mapping so a recycled slot's next occupant cannot inherit
            // it (its own start will re-map the slot).
            self.flow_group.remove(&flow);
        }
        let g = self.groups.get_mut(&egress).expect("group exists");
        g.members.retain(|&f| f != flow);
        if g.members.is_empty() {
            // Last member gone: the aggregate itself stops. It stays in
            // `populated` deliberately: the controller records its stop
            // sample on the next epoch tick exactly as the full scan
            // did, and the set is bounded by the number of egresses.
            g.controller.stop(ctx.now());
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
        match timer.tag {
            TIMER_EPOCH => {
                let now = ctx.now();
                // Populated-group scan in ascending slot order (the
                // same visit order as the full scan this replaces);
                // member-less groups' controllers are inactive, so
                // `epoch_update` was a no-op for them anyway.
                for pos in 0..self.populated.len() {
                    let egress = self.populated.get(pos);
                    let Some(g) = self.groups.get_mut(&egress) else {
                        continue;
                    };
                    g.controller.epoch_update(&self.cfg, now);
                    self.ensure_emission(ctx, egress);
                }
                ctx.set_timer(self.cfg.edge_epoch, TimerKind::tagged(TIMER_EPOCH));
            }
            TIMER_EMIT => self.handle_emit(ctx, NodeId::from_index(timer.param as usize)),
            _ => {}
        }
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, msg: ControlMsg) {
        if let ControlMsg::MarkerFeedback { marker, from } = msg {
            let cfg = &self.cfg;
            if let Some(egress) = self.flow_group.get(&marker.flow) {
                if let Some(g) = self.groups.get_mut(egress) {
                    g.controller.on_feedback(cfg, from, ctx.now());
                }
            }
        }
    }

    fn report(&self, _now: SimTime) -> LogicReport {
        let mut report = LogicReport::default();
        // The aggregate's allotted-rate series is attributed to every
        // member (each member's share is rate / members).
        for (flow, egress) in self.flow_group.iter() {
            if let Some(g) = self.groups.get(egress) {
                report
                    .flow_rates
                    .insert(flow, g.controller.series().clone());
            }
        }
        report.counters.insert(
            "aggregate_markers_injected".to_owned(),
            self.markers_injected as f64,
        );
        report
            .counters
            .insert("aggregate_groups".to_owned(), self.groups.len() as f64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::CoreliteEdge;
    use crate::router::CoreliteCore;
    use netsim::flow::FlowSpec;
    use netsim::link::LinkSpec;
    use netsim::logic::ForwardLogic;
    use netsim::topology::TopologyBuilder;
    use netsim::{FlowId, SimReport};

    /// Edge A aggregates `micro` micro-flows (group weight 1); edge B
    /// runs one plain flow of weight 1. Both share a 500 pkt/s link.
    fn aggregate_vs_single(micro: usize) -> SimReport {
        let cfg = CoreliteConfig::default();
        let mut b = TopologyBuilder::new(47);
        let agg = b.node("agg-edge", |s| {
            Box::new(AggregatingEdge::new(s, cfg.clone(), 1))
        });
        let plain = b.node("plain-edge", |s| {
            Box::new(CoreliteEdge::new(s, cfg.clone()))
        });
        let core = b.node("core", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
        let sink = b.node("sink", |_| Box::new(ForwardLogic));
        let access = LinkSpec::new(40_000_000, SimDuration::from_millis(1), 400);
        b.link(agg, core, access);
        b.link(plain, core, access);
        b.link(
            core,
            sink,
            LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40),
        );
        for _ in 0..micro {
            b.flow(FlowSpec::new(vec![agg, core, sink], 1).active(SimTime::ZERO, None));
        }
        b.flow(FlowSpec::new(vec![plain, core, sink], 1).active(SimTime::ZERO, None));
        let end = SimTime::from_secs(260);
        let mut net = b.build();
        net.run_until(end);
        net.into_report(end)
    }

    #[test]
    fn aggregate_competes_as_one_flow_regardless_of_member_count() {
        // Three micro-flows in a weight-1 aggregate vs one weight-1 flow:
        // the AGGREGATE gets the weight-1 share (≈250), so each micro-flow
        // gets ≈83 — not 3/4 of the link.
        let report = aggregate_vs_single(3);
        let from = SimTime::from_secs(200);
        let to = SimTime::from_secs(260);
        let micro_goodputs: Vec<f64> = (0..3)
            .map(|i| {
                report
                    .flow(FlowId::from_index(i))
                    .mean_goodput_in(from, to)
                    .unwrap_or(0.0)
            })
            .collect();
        let aggregate_total: f64 = micro_goodputs.iter().sum();
        let single = report
            .flow(FlowId::from_index(3))
            .mean_goodput_in(from, to)
            .unwrap_or(0.0);
        assert!(
            (aggregate_total - 250.0).abs() / 250.0 < 0.3,
            "aggregate total {aggregate_total}, expected ≈250 ({micro_goodputs:?})"
        );
        assert!(
            (single - 250.0).abs() / 250.0 < 0.3,
            "single flow {single}, expected ≈250"
        );
        // Round-robin shares the aggregate evenly among members.
        for g in &micro_goodputs {
            assert!(
                (g - aggregate_total / 3.0).abs() / (aggregate_total / 3.0) < 0.15,
                "uneven member split: {micro_goodputs:?}"
            );
        }
    }

    #[test]
    fn aggregate_survives_member_churn() {
        // A member leaving must not stall the aggregate's emission.
        let cfg = CoreliteConfig::default();
        let mut b = TopologyBuilder::new(48);
        let agg = b.node("agg-edge", |s| {
            Box::new(AggregatingEdge::new(s, cfg.clone(), 1))
        });
        let sink = b.node("sink", |_| Box::new(ForwardLogic));
        b.link(
            agg,
            sink,
            LinkSpec::new(10_000_000, SimDuration::from_millis(10), 100),
        );
        b.flow(
            FlowSpec::new(vec![agg, sink], 1).active(SimTime::ZERO, Some(SimTime::from_secs(20))),
        );
        let f2 = b.flow(FlowSpec::new(vec![agg, sink], 1).active(SimTime::ZERO, None));
        let end = SimTime::from_secs(40);
        let mut net = b.build();
        net.run_until(end);
        let report = net.into_report(end);
        let late = report
            .flow(f2)
            .mean_goodput_in(SimTime::from_secs(25), end)
            .unwrap();
        assert!(
            late > 20.0,
            "surviving member should inherit the full aggregate rate: {late}"
        );
        assert_eq!(report.counter_total("aggregate_groups"), 1.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn zero_group_weight_rejected() {
        AggregatingEdge::new(0, CoreliteConfig::default(), 0);
    }
}
