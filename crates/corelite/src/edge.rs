//! The Corelite edge router: shaping, marker injection, and rate
//! adaptation (§2, steps 1 and 3).
//!
//! For every flow entering the network at this node, the edge
//!
//! * **shapes** the flow to its allowed rate `b_g(f)` (the traffic sources
//!   in the paper's evaluation are always backlogged, so the edge emits
//!   packets at exactly `b_g`),
//! * **marks**: piggybacks a marker carrying the normalized
//!   *out-of-profile* rate `r_n = (b_g − min)/w` once per `N_w = K1·w`
//!   out-of-profile packets, so the flow's marker rate equals its
//!   normalized excess rate (for best-effort flows, `min = 0` and this is
//!   exactly the paper's "marker every `N_w` data packets" with
//!   `r_n = b_g/w`). Contracted (in-profile) traffic is never marked and
//!   therefore never throttled,
//! * **adapts** once per epoch via the shared
//!   [`crate::controller::RateController`]: `+α` on
//!   silence, throttle on the **maximum** per-core marker count, §4's
//!   slow-start at startup.
//!
//! Packet losses (CSFQ's feedback signal) are counted but deliberately
//! ignored: *"edges react only to congestion indications"* (§4.3).

use sim_core::time::{SimDuration, SimTime};

use netsim::ids::FlowId;
use netsim::logic::{ControlMsg, Ctx, LogicReport, RouterLogic, TimerKind};
use netsim::packet::Marker;
use netsim::slab::{ActiveSet, DenseMap};
use netsim::telemetry::Sample;

use crate::config::CoreliteConfig;
use crate::controller::RateController;

const TIMER_EPOCH: u32 = 1;
const TIMER_EMIT: u32 = 2;

#[derive(Debug)]
struct FlowState {
    controller: RateController,
    /// True while an emission timer is outstanding.
    emission_pending: bool,
    /// One-entry memo of `1 / rate` as a duration: the controller's
    /// rate only changes on epoch boundaries and feedback, while the
    /// conversion runs once per emitted packet. Bit-identical on hits.
    gap_cache: (f64, SimDuration),
}

impl FlowState {
    fn new(controller: RateController) -> Self {
        FlowState {
            controller,
            emission_pending: false,
            gap_cache: (0.0, SimDuration::ZERO),
        }
    }

    /// Inter-packet gap at the controller's current rate.
    fn gap(&mut self) -> SimDuration {
        let rate = self.controller.rate();
        if self.gap_cache.0 != rate {
            self.gap_cache = (rate, SimDuration::from_secs_f64(1.0 / rate));
        }
        self.gap_cache.1
    }
}

/// Router logic for a Corelite (ingress) edge router.
///
/// Install one per edge node via
/// [`TopologyBuilder::node`](netsim::topology::TopologyBuilder::node); it
/// manages every flow whose path begins at that node. See the
/// [crate docs](crate) for a complete example.
#[derive(Debug)]
pub struct CoreliteEdge {
    cfg: CoreliteConfig,
    /// Per-flow state, slab-indexed by `FlowId::index()` (absent for
    /// flows not managed by this edge). Flow ids are small dense
    /// integers, so direct indexing beats a map lookup on the
    /// per-packet path.
    flows: DenseMap<FlowId, FlowState>,
    /// Flows currently started at this edge. Epoch scans walk this
    /// instead of every slot ever occupied, so an epoch costs O(active)
    /// rather than O(all flows ever) under churn.
    active: ActiveSet<FlowId>,
    /// Per-slot emission-chain epoch. Each `on_flow_start`/`on_flow_stop`
    /// bumps the slot's epoch, and emission timers carry the epoch they
    /// were armed under — so a timer from a previous activation (or a
    /// recycled slot's previous occupant) is recognized as stale and
    /// dropped instead of feeding a chain it no longer owns.
    emission_epochs: Vec<u32>,
    markers_injected: u64,
    feedback_received: u64,
    losses_ignored: u64,
    #[allow(dead_code)]
    seed: u64,
}

impl CoreliteEdge {
    /// Creates edge logic with the given component `seed` (from the
    /// topology builder) and configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CoreliteConfig::validate`].
    pub fn new(seed: u64, cfg: CoreliteConfig) -> Self {
        cfg.validate();
        CoreliteEdge {
            cfg,
            flows: DenseMap::new(),
            active: ActiveSet::new(),
            emission_epochs: Vec::new(),
            markers_injected: 0,
            feedback_received: 0,
            losses_ignored: 0,
            seed,
        }
    }

    /// The allowed rate `b_g(f)` the edge currently enforces for `flow`,
    /// or `None` if the flow has never started here.
    pub fn allowed_rate(&self, flow: FlowId) -> Option<f64> {
        self.state(flow).map(|s| s.controller.rate())
    }

    fn state(&self, flow: FlowId) -> Option<&FlowState> {
        self.flows.get(&flow)
    }

    fn state_mut(&mut self, flow: FlowId) -> Option<&mut FlowState> {
        self.flows.get_mut(&flow)
    }

    /// Invalidates any outstanding emission chain for `flow`'s slot and
    /// returns the new epoch for arming a fresh one.
    fn bump_epoch(&mut self, flow: FlowId) -> u32 {
        let idx = flow.index();
        if idx >= self.emission_epochs.len() {
            self.emission_epochs.resize(idx + 1, 0);
        }
        self.emission_epochs[idx] = self.emission_epochs[idx].wrapping_add(1);
        self.emission_epochs[idx]
    }

    /// The timer parameter for `flow`'s current emission chain: epoch in
    /// the high 32 bits, slot index in the low 32.
    fn emit_param(&self, flow: FlowId) -> u64 {
        let epoch = self.emission_epochs[flow.index()];
        ((epoch as u64) << 32) | flow.index() as u64
    }

    fn ensure_emission(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let param = self.emit_param(flow);
        let s = self.state_mut(flow).expect("flow state exists");
        if s.controller.is_active() && s.controller.rate() > 0.0 && !s.emission_pending {
            s.emission_pending = true;
            let gap = s.gap();
            ctx.set_timer(gap, TimerKind::with_param(TIMER_EMIT, param));
        }
    }

    fn handle_emit(&mut self, ctx: &mut Ctx<'_>, param: u64) {
        let idx = param as u32 as usize;
        let epoch = (param >> 32) as u32;
        // A chain armed under an older epoch belongs to a finished
        // activation (or a recycled slot's previous occupant): it must
        // not emit or re-arm on behalf of the current one.
        if self.emission_epochs.get(idx) != Some(&epoch) {
            return;
        }
        // The epoch matched, so the slot's current occupant armed this
        // chain; resolve the occupant's full id (generation included)
        // so emitted packets are attributed to it.
        let flow = ctx.flow(FlowId::from_index(idx)).id;
        let node = ctx.node();
        // Split borrow: `s` holds `self.flows` while the counter and
        // config fields stay independently accessible.
        let Some(s) = self.flows.get_mut(&flow) else {
            return;
        };
        s.emission_pending = false;
        if !s.controller.is_active() || s.controller.rate() <= 0.0 {
            return;
        }
        let mut packet = ctx.new_packet(flow);
        if s.controller.take_marker(&self.cfg) {
            packet = packet.with_marker(Marker {
                flow,
                edge: node,
                normalized_rate: s.controller.normalized_excess(),
            });
            self.markers_injected += 1;
        }
        ctx.emit(packet);
        s.emission_pending = true;
        let gap = s.gap();
        ctx.set_timer(gap, TimerKind::with_param(TIMER_EMIT, param));
    }
}

impl RouterLogic for CoreliteEdge {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.cfg.edge_epoch, TimerKind::tagged(TIMER_EPOCH));
    }

    fn on_flow_start(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let now = ctx.now();
        let info = ctx.flow(flow);
        let (weight, min_rate, transient) = (info.weight, info.min_rate, info.is_transient());
        let rtt = 2.0 * ctx.one_way_delay(flow).as_secs_f64();
        // Any chain left over from a previous activation (or a recycled
        // slot's previous occupant) is dead as of this start.
        self.bump_epoch(flow);
        self.active.insert(flow);
        if transient {
            // A recycled slot may still hold the previous occupant's
            // state if its stop was swallowed (e.g. by a pause): churn
            // flows always begin from scratch.
            self.flows.insert(
                flow,
                FlowState::new(RateController::new(weight, min_rate, rtt)),
            );
        }
        let s = self.flows.entry_or_insert_with(flow, || {
            FlowState::new(RateController::new(weight, min_rate, rtt))
        });
        // A restarting flow begins a fresh slow-start, like a new arrival.
        s.controller.start(&self.cfg, now, rtt);
        s.emission_pending = false;
        self.ensure_emission(ctx, flow);
    }

    fn on_flow_stop(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let now = ctx.now();
        // Kill the outstanding emission chain: a pending `TIMER_EMIT`
        // must not survive the stop and leak into a later activation.
        self.bump_epoch(flow);
        self.active.remove(flow);
        if ctx.flow(flow).is_transient() {
            // Departed churn flows never restart; drop their state so
            // edge memory tracks the active set, not total arrivals.
            self.flows.remove(&flow);
        } else if let Some(s) = self.state_mut(flow) {
            s.controller.stop(now);
            s.emission_pending = false;
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
        match timer.tag {
            TIMER_EPOCH => {
                let now = ctx.now();
                // Walk only the started flows (position-indexed so the
                // body can borrow `self` mutably). Ascending slot order
                // matches the full scan this replaces, and skipped
                // flows are observably identical: `epoch_update` is a
                // no-op for inactive controllers and their samples were
                // never published.
                for pos in 0..self.active.len() {
                    // The occupant's full id (membership is per slot).
                    let flow = ctx.flow(self.active.get(pos)).id;
                    let Some(s) = self.flows.get_mut(&flow) else {
                        continue;
                    };
                    if s.controller.is_active() {
                        // m(f) must be read before the epoch update
                        // consumes the per-core counts.
                        ctx.publish(Sample::for_flow(
                            "m_f",
                            flow,
                            s.controller.feedback_max() as f64,
                        ));
                    }
                    s.controller.epoch_update(&self.cfg, now);
                    if s.controller.is_active() {
                        ctx.publish(Sample::for_flow("b_g", flow, s.controller.rate()));
                        ctx.publish(Sample::for_flow(
                            "slow_start",
                            flow,
                            f64::from(s.controller.in_slow_start()),
                        ));
                    }
                    self.ensure_emission(ctx, flow);
                }
                ctx.set_timer(self.cfg.edge_epoch, TimerKind::tagged(TIMER_EPOCH));
            }
            TIMER_EMIT => self.handle_emit(ctx, timer.param),
            _ => {}
        }
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, msg: ControlMsg) {
        match msg {
            ControlMsg::MarkerFeedback { marker, from } => {
                self.feedback_received += 1;
                let now = ctx.now();
                // Disjoint field borrows: the config rides alongside the
                // mutable flow-state access.
                let cfg = &self.cfg;
                if let Some(s) = self.flows.get_mut(&marker.flow) {
                    s.controller.on_feedback(cfg, from, now);
                }
            }
            ControlMsg::Loss { .. } => {
                // Corelite performs loss-free rate adaptation; edges react
                // only to marker feedback (§4.3).
                self.losses_ignored += 1;
            }
            // Acks belong to the go-back-N transport
            // (`netsim::transport::GbnSender`); the open-loop LIMD edge
            // never receives them.
            ControlMsg::Ack { .. } => {}
        }
    }

    fn report(&self, _now: SimTime) -> LogicReport {
        let mut report = LogicReport::default();
        for (flow, s) in self.flows.iter() {
            report
                .flow_rates
                .insert(flow, s.controller.series().clone());
        }
        report
            .counters
            .insert("markers_injected".to_owned(), self.markers_injected as f64);
        report.counters.insert(
            "feedback_received".to_owned(),
            self.feedback_received as f64,
        );
        report
            .counters
            .insert("losses_ignored".to_owned(), self.losses_ignored as f64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::flow::FlowSpec;
    use netsim::link::LinkSpec;
    use netsim::logic::ForwardLogic;
    use netsim::topology::TopologyBuilder;
    use netsim::trace::{TraceEvent, Tracer};
    use netsim::SimReport;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// One edge, one sink, an uncongested 10 Mbps link, one flow.
    fn uncongested(weight: u32, horizon: SimTime) -> SimReport {
        let cfg = CoreliteConfig::default();
        let mut b = TopologyBuilder::new(5);
        let edge = b.node("edge", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
        let sink = b.node("sink", |_| Box::new(ForwardLogic));
        b.link(
            edge,
            sink,
            LinkSpec::new(10_000_000, SimDuration::from_millis(10), 100),
        );
        b.flow(FlowSpec::new(vec![edge, sink], weight).active(SimTime::ZERO, None));
        let mut net = b.build();
        net.run_until(horizon);
        net.into_report(horizon)
    }

    #[test]
    fn uncongested_flow_ramps_without_feedback() {
        let end = SimTime::from_secs(30);
        let report = uncongested(1, end);
        let rate = report
            .allotted_rate(FlowId::from_index(0))
            .unwrap()
            .last_value()
            .unwrap();
        // Slow-start 1→2→4→...→32 exits at ~5 s (halve to 16), then
        // linear +1 per 500 ms epoch = +2/s: after 30 s ≈ 16 + 50 = 66.
        assert!(rate > 50.0, "rate {rate} should keep climbing unimpeded");
        assert_eq!(report.total_drops(), 0);
        assert_eq!(report.counter_total("feedback_received"), 0.0);
    }

    #[test]
    fn marker_rate_reflects_normalized_rate() {
        // Weight 2 ⇒ one marker per 2 data packets (K1 = 1).
        let end = SimTime::from_secs(20);
        let report = uncongested(2, end);
        let markers = report.counter_total("markers_injected");
        let sent = report.flow(FlowId::from_index(0)).delivered_packets as f64;
        let ratio = markers / sent;
        assert!(
            (ratio - 0.5).abs() < 0.05,
            "marker/packet ratio {ratio}, want ≈ 1/2"
        );
    }

    #[test]
    fn slow_start_caps_at_ss_thresh() {
        let end = SimTime::from_secs(6);
        let report = uncongested(1, end);
        let series = report.allotted_rate(FlowId::from_index(0)).unwrap();
        let peak = series.iter().map(|(_, v)| v).fold(0.0f64, f64::max);
        // Doubling runs 1→2→4→8→16→32; the next doubling to 64 trips the
        // halving back to 32.
        assert!(peak <= 64.0, "peak {peak}");
        let last = series.last_value().unwrap();
        assert!(last >= 16.0, "rate after slow-start {last}");
    }

    #[test]
    fn flow_stop_silences_emission() {
        let cfg = CoreliteConfig::default();
        let mut b = TopologyBuilder::new(9);
        let edge = b.node("edge", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
        let sink = b.node("sink", |_| Box::new(ForwardLogic));
        b.link(
            edge,
            sink,
            LinkSpec::new(10_000_000, SimDuration::from_millis(10), 100),
        );
        let f = b.flow(
            FlowSpec::new(vec![edge, sink], 1).active(SimTime::ZERO, Some(SimTime::from_secs(5))),
        );
        let end = SimTime::from_secs(10);
        let mut net = b.build();
        net.run_until(end);
        let report = net.into_report(end);
        let late = report
            .flow(f)
            .mean_goodput_in(SimTime::from_secs(6), end)
            .unwrap();
        assert!(late < 1.0, "goodput after stop {late}");
        // Series records a zero after the stop.
        let series = report.allotted_rate(f).unwrap();
        assert_eq!(series.value_at(SimTime::from_secs(6)), Some(0.0));
    }

    /// Regression (flow-lifecycle bugfix): a pending `TIMER_EMIT` used
    /// to survive `on_flow_stop` — `emission_pending` stayed set, so a
    /// restart before the stale timer fired rode the old chain instead
    /// of arming its own, and its first packet left at the *old*
    /// chain's instant rather than one fresh slow-start gap after the
    /// restart. Stops now invalidate the chain via the slot's emission
    /// epoch.
    #[test]
    fn stale_emission_chain_dies_on_stop() {
        struct Deliveries {
            log: Rc<RefCell<Vec<SimTime>>>,
        }
        impl Tracer for Deliveries {
            fn record(&mut self, now: SimTime, event: &TraceEvent) {
                if matches!(event, TraceEvent::Deliver { .. }) {
                    self.log.borrow_mut().push(now);
                }
            }
        }
        // Default config: initial rate 1 pps, so the chain armed at the
        // t=0 start is due at t=1 s — after the stop at 0.45 s and the
        // restart at 0.55 s.
        let cfg = CoreliteConfig::default();
        let mut b = TopologyBuilder::new(3);
        let edge = b.node("edge", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
        let sink = b.node("sink", |_| Box::new(ForwardLogic));
        b.link(
            edge,
            sink,
            LinkSpec::new(10_000_000, SimDuration::from_millis(10), 100),
        );
        b.flow(
            FlowSpec::new(vec![edge, sink], 1)
                .active(SimTime::ZERO, Some(SimTime::from_millis(450)))
                .active(SimTime::from_millis(550), Some(SimTime::from_secs(3))),
        );
        let log = Rc::new(RefCell::new(Vec::new()));
        b.tracer(Rc::new(RefCell::new(Deliveries { log: log.clone() })));
        let mut net = b.build();
        net.run_until(SimTime::from_secs(3));
        drop(net);
        let log = log.borrow();
        let first = log.first().copied().expect("the restarted flow emits");
        // Fresh chain: first emission at 0.55 + 1.0 = 1.55 s (plus the
        // pipe). The stale chain would have emitted at t=1.0 s.
        assert!(
            first >= SimTime::from_millis(1550),
            "first delivery at {first:?} rode the stale pre-stop emission chain"
        );
    }
}
