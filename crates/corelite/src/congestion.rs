//! Incipient congestion detection: how many markers to send back (§3.1).

/// Computes `F_n`, the number of marker notifications a core router must
/// send back when incipient congestion is detected:
///
/// ```text
/// F_n = μ · [ q_avg/(1+q_avg) − q_thresh/(1+q_thresh) ] + k·(q_avg − q_thresh)³
/// ```
///
/// where `μ` (`mu_pkts_per_epoch`) is the outgoing link's service rate in
/// packets *per congestion epoch*.
///
/// The first term is the excess arrival-rate estimate under an M/M/1
/// assumption (`ρ = q/(1+q)`): the difference between the arrival rate
/// that would sustain `q_avg` and the rate that would sustain `q_thresh`.
/// The second, self-correcting term (§3.1) guards against the M/M/1
/// assumption under-throttling: for large queues the cubic dominates and
/// forces enough feedback to keep queues from overflowing, while for small
/// excursions it is negligible.
///
/// Returns 0 when `q_avg ≤ q_thresh` (no incipient congestion).
///
/// # Panics
///
/// Panics if `mu_pkts_per_epoch` is negative, `q_avg`/`q_thresh` are
/// negative, or `k` is negative.
///
/// # Example
///
/// ```
/// use corelite::congestion::marker_feedback_count;
///
/// // No congestion: q_avg at or below the threshold.
/// assert_eq!(marker_feedback_count(8.0, 8.0, 50.0, 0.01), 0.0);
/// // Mild congestion: roughly μ(ρ(10) − ρ(8)) ≈ 1 marker.
/// let f = marker_feedback_count(10.0, 8.0, 50.0, 0.0);
/// assert!(f > 0.9 && f < 1.2, "{f}");
/// ```
pub fn marker_feedback_count(q_avg: f64, q_thresh: f64, mu_pkts_per_epoch: f64, k: f64) -> f64 {
    assert!(q_avg >= 0.0, "q_avg must be non-negative, got {q_avg}");
    assert!(
        q_thresh >= 0.0,
        "q_thresh must be non-negative, got {q_thresh}"
    );
    assert!(
        mu_pkts_per_epoch >= 0.0,
        "service rate must be non-negative, got {mu_pkts_per_epoch}"
    );
    assert!(k >= 0.0, "correction k must be non-negative, got {k}");
    if q_avg <= q_thresh {
        return 0.0;
    }
    let rho_excess = q_avg / (1.0 + q_avg) - q_thresh / (1.0 + q_thresh);
    let over = q_avg - q_thresh;
    mu_pkts_per_epoch * rho_excess + k * over * over * over
}

#[cfg(test)]
mod tests {
    use super::*;

    const MU: f64 = 50.0; // 500 pkt/s × 100 ms epoch

    #[test]
    fn zero_below_and_at_threshold() {
        assert_eq!(marker_feedback_count(0.0, 8.0, MU, 0.01), 0.0);
        assert_eq!(marker_feedback_count(7.9, 8.0, MU, 0.01), 0.0);
        assert_eq!(marker_feedback_count(8.0, 8.0, MU, 0.01), 0.0);
    }

    #[test]
    fn mm1_term_matches_closed_form() {
        // With k = 0 only the M/M/1 term remains.
        let f = marker_feedback_count(10.0, 8.0, MU, 0.0);
        let expect = MU * (10.0 / 11.0 - 8.0 / 9.0);
        assert!((f - expect).abs() < 1e-12);
    }

    #[test]
    fn mm1_term_saturates_for_large_queues() {
        // ρ(q) → 1, so the M/M/1 term is bounded by μ(1 − ρ(q_thresh)).
        let bound = MU * (1.0 - 8.0 / 9.0);
        let f = marker_feedback_count(1000.0, 8.0, MU, 0.0);
        assert!(f < bound);
        assert!(f > 0.95 * bound);
    }

    #[test]
    fn cubic_term_dominates_eventually() {
        // The self-correcting term must overtake the saturated M/M/1 term
        // as the queue grows (the paper's rationale for k > 0).
        let small = marker_feedback_count(12.0, 8.0, MU, 0.01);
        let large = marker_feedback_count(32.0, 8.0, MU, 0.01);
        let large_no_k = marker_feedback_count(32.0, 8.0, MU, 0.0);
        assert!(
            large > 2.0 * large_no_k,
            "cubic should dominate: {large} vs {large_no_k}"
        );
        assert!(small < 3.0, "small excursions stay conservative: {small}");
    }

    #[test]
    fn monotone_in_q_avg() {
        let mut prev = 0.0;
        for i in 0..100 {
            let q = 8.0 + i as f64 * 0.5;
            let f = marker_feedback_count(q, 8.0, MU, 0.01);
            assert!(f >= prev, "F_n must not decrease with q_avg");
            prev = f;
        }
    }

    #[test]
    fn scales_with_service_rate() {
        let f1 = marker_feedback_count(12.0, 8.0, 50.0, 0.0);
        let f2 = marker_feedback_count(12.0, 8.0, 100.0, 0.0);
        assert!((f2 / f1 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_q_avg_panics() {
        marker_feedback_count(-1.0, 8.0, MU, 0.0);
    }
}
