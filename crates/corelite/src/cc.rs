//! Corelite window dynamics behind the generic transport interface.
//!
//! [`CoreliteCc`] adapts the paper's [`RateController`] — forced onto
//! the [`AdaptationScheme::WindowAimd`] window scheme — to `netsim`'s
//! [`CongestionControl`] trait, so the same LIMD adaptation that drives
//! the open-loop [`CoreliteEdge`](crate::CoreliteEdge) can clock a
//! go-back-N sender instead. The closed loop upgrades two things the
//! open-loop edge has to approximate:
//!
//! * the **round trip**: each ack's SRTT sample is fed through
//!   [`RateController::update_rtt`], so the window/rate conversion
//!   tracks live queueing delay instead of the static propagation-only
//!   estimate, and
//! * the **congestion signal**: marker feedback arrives at the sender
//!   already rate-limited to one per round trip (the go-back-N sender's
//!   recovery guard), matching the per-epoch throttling the controller
//!   expects.
//!
//! [`gbn_edge`] packages the adapter as a ready-made ingress logic: a
//! [`GbnSender`] whose marker cadence and epoch follow the
//! [`CoreliteConfig`], dispatching per-flow on the declared
//! [`Transport`] (Reno flows get stock Reno, everything else gets
//! Corelite's window LIMD).

use netsim::{CongestionControl, GbnConfig, GbnSender, NodeId, Reno, Transport};
use sim_core::time::SimTime;

use crate::config::{AdaptationScheme, CoreliteConfig};
use crate::controller::RateController;

/// The paper's [`RateController`] (window flavour) speaking
/// [`CongestionControl`]. See the module docs for the mapping.
#[derive(Debug)]
pub struct CoreliteCc {
    cfg: CoreliteConfig,
    ctl: RateController,
    weight: u32,
    min_rate: f64,
}

/// The controller keys feedback counts by sending core to take the
/// per-core maximum; the go-back-N sender folds all cores into one
/// congestion signal stream, so every signal lands in this single
/// synthetic bucket (max ≡ total).
const SIGNAL_SOURCE: usize = 0;

impl CoreliteCc {
    /// A controller for a flow of the given `weight` and contract
    /// `min_rate`. The adaptation scheme is forced to
    /// [`AdaptationScheme::WindowAimd`]: a window is the only control
    /// variable an ack-clocked sender can act on.
    pub fn new(cfg: &CoreliteConfig, weight: u32, min_rate: f64) -> Self {
        let mut cfg = cfg.clone();
        cfg.adaptation = AdaptationScheme::WindowAimd;
        let ctl = RateController::new(weight, min_rate, 1e-3);
        CoreliteCc {
            cfg,
            ctl,
            weight,
            min_rate,
        }
    }

    /// The wrapped controller (for tests and reporting).
    pub fn controller(&self) -> &RateController {
        &self.ctl
    }
}

impl CongestionControl for CoreliteCc {
    fn on_start(&mut self, now: SimTime, base_rtt: f64) {
        self.ctl = RateController::new(self.weight, self.min_rate, base_rtt);
        self.ctl.start(&self.cfg, now, base_rtt);
    }

    fn on_ack(&mut self, _now: SimTime, _newly_acked: u64, srtt: f64) {
        // The live SRTT replaces the static base estimate; WindowAimd
        // re-derives the rate immediately (tentpole: measured RTT in
        // place of the configured constant).
        self.ctl.update_rtt(&self.cfg, srtt);
    }

    fn on_signal(&mut self, now: SimTime) {
        self.ctl
            .on_feedback(&self.cfg, NodeId::from_index(SIGNAL_SOURCE), now);
    }

    fn on_rto(&mut self, now: SimTime) {
        // The controller has no timeout notion; a lost window is the
        // strongest congestion evidence there is, so treat it as
        // feedback (a halving, under the configured decrease policy).
        self.ctl
            .on_feedback(&self.cfg, NodeId::from_index(SIGNAL_SOURCE), now);
    }

    fn on_epoch(&mut self, now: SimTime) {
        self.ctl.epoch_update(&self.cfg, now);
    }

    fn window(&self) -> f64 {
        self.ctl.cwnd()
    }

    fn rate(&self) -> f64 {
        self.ctl.rate()
    }
}

/// A go-back-N ingress edge wired for Corelite: markers every
/// `K1·weight` first transmissions carrying the flow's normalized rate,
/// adaptation ticks on the configured edge epoch, and a congestion
/// controller per the flow's declared [`Transport`] —
/// [`CoreliteCc`] for [`Transport::Gbn`] (and the [`Transport::Limd`]
/// default, should a closed-loop edge host one), stock [`Reno`] for
/// [`Transport::Reno`]. Reno flows still inject markers, so cores see
/// their normalized rates and throttle them like any other flow — that
/// is what holds a mixed LIMD/Reno population to the weighted-fair
/// allocation.
pub fn gbn_edge(cfg: &CoreliteConfig) -> GbnSender {
    let gbn = GbnConfig {
        epoch: cfg.edge_epoch,
        marker_spacing: Some(cfg.k1),
        ..GbnConfig::default()
    };
    let cc_cfg = cfg.clone();
    GbnSender::new(
        gbn,
        Box::new(move |info, _base_rtt| match info.transport {
            Transport::Reno => Box::new(Reno::new()) as Box<dyn CongestionControl>,
            _ => Box::new(CoreliteCc::new(&cc_cfg, info.weight, info.min_rate)),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_seeds_window_from_base_rtt() {
        let cfg = CoreliteConfig::default();
        let mut cc = CoreliteCc::new(&cfg, 1, 0.0);
        cc.on_start(SimTime::ZERO, 0.2);
        let short = {
            let mut cc = CoreliteCc::new(&cfg, 1, 0.0);
            cc.on_start(SimTime::ZERO, 0.02);
            cc.window()
        };
        // RTT-proportional initial windows, identical initial rates.
        assert!((cc.window() / short - 10.0).abs() < 1e-9);
        assert!((cc.rate() - cfg.initial_rate).abs() < 1e-9);
    }

    #[test]
    fn srtt_samples_rederive_the_rate() {
        let cfg = CoreliteConfig::default();
        let mut cc = CoreliteCc::new(&cfg, 1, 0.0);
        cc.on_start(SimTime::ZERO, 0.1);
        let before = cc.rate();
        // Queueing doubles the measured round trip: same window, half
        // the rate.
        cc.on_ack(SimTime::from_secs(1), 1, 0.2);
        assert!((cc.rate() - before / 2.0).abs() < 1e-9);
    }

    #[test]
    fn signals_halve_via_the_controller() {
        let cfg = CoreliteConfig::default();
        let mut cc = CoreliteCc::new(&cfg, 1, 0.0);
        cc.on_start(SimTime::ZERO, 0.1);
        // The first signal ends slow start immediately; silent epochs
        // then grow the window linearly.
        cc.on_signal(SimTime::from_secs(1));
        cc.on_epoch(SimTime::from_secs(2));
        cc.on_epoch(SimTime::from_secs(3));
        let grown = cc.window();
        assert!(grown > 1.0, "window never grew: {grown}");
        // A signal in the linear phase is accumulated feedback: the
        // throttle lands at the next epoch update.
        cc.on_signal(SimTime::from_secs(4));
        cc.on_epoch(SimTime::from_secs(5));
        assert!(cc.window() < grown, "{} not below {grown}", cc.window());
    }
}
