//! A deterministic fluid model of the Corelite control loop.
//!
//! The paper argues convergence "through both simulations and analysis"
//! (§2.2): the edge update is an enhanced LIMD whose feedback is
//! proportional to each flow's normalized rate, so by the Chiu–Jain
//! argument the normalized rates equalize. This module provides that
//! analysis as executable mathematics: a discrete-time recursion over
//! flow rates on a single bottleneck, with the §3.1 feedback-count
//! formula and the §3.2 above-average selection gate in expectation (no
//! packets, no randomness).
//!
//! The fluid model runs thousands of times faster than the packet
//! simulator and is used by the property tests to check convergence from
//! arbitrary initial conditions, and by users to predict equilibria when
//! designing weight/contract assignments.

use crate::config::CoreliteConfig;
use crate::config::MuUnit;
use crate::congestion::marker_feedback_count;

/// One flow in the fluid model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidFlow {
    /// Rate weight `w`.
    pub weight: f64,
    /// Minimum rate contract (floor), units of rate.
    pub min_rate: f64,
    /// Current rate `b_g`.
    pub rate: f64,
}

/// A single-bottleneck fluid recursion of the Corelite dynamics.
///
/// # Example
///
/// ```
/// use corelite::fluid::FluidModel;
/// use corelite::CoreliteConfig;
///
/// let mut m = FluidModel::new(CoreliteConfig::default(), 500.0);
/// m.add_flow(1.0, 0.0, 10.0);
/// m.add_flow(2.0, 0.0, 400.0); // way above its share
/// m.run(4_000);
/// let rates = m.rates();
/// // Converges to ≈ 167 / 333 (weighted shares of 500).
/// assert!((rates[0] - 167.0).abs() < 25.0, "{rates:?}");
/// assert!((rates[1] - 333.0).abs() < 40.0, "{rates:?}");
/// ```
#[derive(Debug, Clone)]
pub struct FluidModel {
    cfg: CoreliteConfig,
    capacity: f64,
    flows: Vec<FluidFlow>,
    queue: f64,
}

impl FluidModel {
    /// Creates a model of one bottleneck link with `capacity` (rate
    /// units; the experiments use packets per second).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not finite and positive or `cfg` is
    /// invalid.
    pub fn new(cfg: CoreliteConfig, capacity: f64) -> Self {
        cfg.validate();
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be finite and positive"
        );
        FluidModel {
            cfg,
            capacity,
            flows: Vec::new(),
            queue: 0.0,
        }
    }

    /// Adds a flow with `weight`, contract `min_rate` and initial rate
    /// `rate`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive weight or negative rates.
    pub fn add_flow(&mut self, weight: f64, min_rate: f64, rate: f64) -> usize {
        assert!(weight > 0.0, "weight must be positive");
        assert!(min_rate >= 0.0 && rate >= 0.0, "rates must be non-negative");
        self.flows.push(FluidFlow {
            weight,
            min_rate,
            rate: rate.max(min_rate),
        });
        self.flows.len() - 1
    }

    /// Current rates, in insertion order.
    pub fn rates(&self) -> Vec<f64> {
        self.flows.iter().map(|f| f.rate).collect()
    }

    /// Current fluid queue length (packets).
    pub fn queue(&self) -> f64 {
        self.queue
    }

    /// Advances the model by one core congestion epoch, applying the edge
    /// update in the same step (the fluid limit of the paper's two-epoch
    /// pipeline). Returns the feedback count `F_n` of the epoch.
    pub fn step(&mut self) -> f64 {
        let dt = self.cfg.core_epoch.as_secs_f64();
        let aggregate: f64 = self.flows.iter().map(|f| f.rate).sum();
        // Fluid queue: integrate excess arrivals over the epoch.
        self.queue = (self.queue + (aggregate - self.capacity) * dt).max(0.0);
        let mu = match self.cfg.mu_unit {
            MuUnit::PerEpoch => self.capacity * dt,
            MuUnit::PerSecond => self.capacity,
        };
        let fn_count =
            marker_feedback_count(self.queue, self.cfg.q_thresh, mu, self.cfg.correction_k);

        // §3.2 in expectation: markers go only to flows whose normalized
        // excess is at or above the marker-weighted average, in proportion
        // to their normalized excess.
        let excess: Vec<f64> = self
            .flows
            .iter()
            .map(|f| (f.rate - f.min_rate).max(0.0) / f.weight)
            .collect();
        let total_excess: f64 = excess.iter().sum();
        let r_av = if total_excess > 0.0 {
            // Marker-weighted mean of the labels (markers arrive ∝ excess).
            excess.iter().map(|x| x * x).sum::<f64>() / total_excess
        } else {
            0.0
        };
        let eligible: f64 = excess.iter().filter(|&&x| x >= r_av).sum();

        let alpha = self.cfg.alpha;
        let beta = self.cfg.beta;
        for (f, &x) in self.flows.iter_mut().zip(&excess) {
            if fn_count > 0.0 && eligible > 0.0 && x >= r_av {
                let m = fn_count * x / eligible;
                f.rate = (f.rate - beta * m).max(f.min_rate);
            } else {
                let inc = if self.cfg.alpha_per_weight {
                    alpha * f.weight
                } else {
                    alpha
                };
                // The edge epoch is a multiple of the core epoch; scale the
                // probe step to per-core-epoch units.
                f.rate += inc * dt / self.cfg.edge_epoch.as_secs_f64();
            }
        }
        fn_count
    }

    /// Runs `epochs` steps.
    pub fn run(&mut self, epochs: usize) {
        for _ in 0..epochs {
            self.step();
        }
    }

    /// The analytic equilibrium the recursion should approach:
    /// floor + weighted share of the residual capacity.
    pub fn expected_rates(&self) -> Vec<f64> {
        let floors: f64 = self.flows.iter().map(|f| f.min_rate).sum();
        let residual = (self.capacity - floors).max(0.0);
        let total_weight: f64 = self.flows.iter().map(|f| f.weight).sum();
        self.flows
            .iter()
            .map(|f| f.min_rate + residual * f.weight / total_weight)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_from_below_and_above() {
        let mut m = FluidModel::new(CoreliteConfig::default(), 500.0);
        m.add_flow(1.0, 0.0, 1.0); // far below
        m.add_flow(1.0, 0.0, 480.0); // hogging
        m.add_flow(3.0, 0.0, 100.0);
        m.run(6_000);
        let rates = m.rates();
        let expect = m.expected_rates();
        for (r, e) in rates.iter().zip(&expect) {
            assert!(
                (r - e).abs() / e < 0.25,
                "rates {rates:?} vs expected {expect:?}"
            );
        }
    }

    #[test]
    fn queue_stays_bounded_at_equilibrium() {
        let mut m = FluidModel::new(CoreliteConfig::default(), 500.0);
        for _ in 0..10 {
            m.add_flow(1.0, 0.0, 100.0); // 2x overload initially
        }
        m.run(10_000);
        assert!(
            m.queue() < 40.0,
            "fluid queue {} must stay below the buffer",
            m.queue()
        );
        let total: f64 = m.rates().iter().sum();
        assert!((total - 500.0).abs() < 75.0, "aggregate {total}");
    }

    #[test]
    fn contracts_hold_in_the_fluid_limit() {
        let mut m = FluidModel::new(CoreliteConfig::default(), 500.0);
        m.add_flow(1.0, 300.0, 300.0);
        m.add_flow(1.0, 0.0, 10.0);
        m.add_flow(1.0, 0.0, 10.0);
        m.run(6_000);
        let rates = m.rates();
        assert!(rates[0] >= 300.0, "contract pierced: {rates:?}");
        let expect = m.expected_rates(); // 366.7 / 66.7 / 66.7
        for (r, e) in rates.iter().zip(&expect) {
            assert!((r - e).abs() / e < 0.35, "{rates:?} vs {expect:?}");
        }
    }

    #[test]
    fn fluid_and_packet_equilibria_agree() {
        // The fluid prediction for the §4.2 weight ladder matches the
        // packet simulator's measured steady state within the packet
        // model's oscillation band (compare EXPERIMENTS.md, Fig 5).
        let mut m = FluidModel::new(CoreliteConfig::default(), 500.0);
        for w in [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0, 5.0, 5.0] {
            m.add_flow(w, 0.0, 1.0);
        }
        m.run(8_000);
        let rates = m.rates();
        let expect = m.expected_rates();
        for (r, e) in rates.iter().zip(&expect) {
            assert!((r - e).abs() / e < 0.3, "{rates:?} vs {expect:?}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn bad_capacity_rejected() {
        FluidModel::new(CoreliteConfig::default(), 0.0);
    }
}
