//! Inter-cloud gateway: the edge-router-to-edge-router interaction the
//! paper defers (§2: "edge router-edge router interaction across
//! neighboring network clouds ... we will only focus on the first
//! component").
//!
//! The Internet in the paper's model is an agglomeration of network
//! clouds, each running Corelite independently. A flow crossing two
//! clouds traverses a **gateway** edge router that is simultaneously the
//! egress edge of the upstream cloud and the ingress edge of the
//! downstream one. [`CoreliteGateway`] implements that node:
//!
//! * packets arriving from the upstream cloud enter a per-flow
//!   store-and-forward buffer (bounded; overflow drops are policy drops),
//! * the gateway re-shapes the flow into the downstream cloud at its own
//!   allowed rate `b_g`, adapting via the shared
//!   [`crate::controller::RateController`] to the
//!   *downstream* cloud's marker feedback,
//! * markers arriving from upstream are **not** forwarded — each cloud's
//!   marker domain ends at its edge; the gateway injects fresh markers
//!   for the downstream cloud (addressed to itself).
//!
//! End to end, the flow's rate converges to the minimum of its per-cloud
//! weighted fair shares, with the gateway buffer absorbing transient
//! mismatch.

use std::collections::VecDeque;

use sim_core::time::{SimDuration, SimTime};

use netsim::ids::FlowId;
use netsim::logic::{ControlMsg, Ctx, LogicReport, RouterLogic, TimerKind};
use netsim::packet::{Marker, Packet};
use netsim::slab::{ActiveSet, DenseMap};
use netsim::telemetry::Sample;

use crate::config::CoreliteConfig;
use crate::controller::RateController;

const TIMER_EPOCH: u32 = 1;
const TIMER_EMIT: u32 = 2;

#[derive(Debug)]
struct GatewayFlow {
    /// The flow this state belongs to, generation included. A packet
    /// whose id shares the slot but not the generation announces that
    /// the slot was recycled: the state must be rebuilt from scratch
    /// rather than inherited by the new occupant.
    occupant: FlowId,
    controller: RateController,
    buffer: VecDeque<Packet>,
    emission_pending: bool,
    buffered_peak: usize,
    /// Last data-packet arrival; a gap ≥ `idle_restart` means the flow
    /// restarted (mid-path gateways see no flow activation events).
    last_arrival: SimTime,
    /// Last paced emission, if any; the emission due time is re-derived
    /// from it at the *current* rate when the pacing timer fires.
    last_emit: Option<SimTime>,
}

/// Router logic for a Corelite inter-cloud gateway edge.
///
/// Place it at the node where a flow leaves one Corelite cloud and enters
/// the next; see the `two_clouds` integration test for a full topology.
#[derive(Debug)]
pub struct CoreliteGateway {
    cfg: CoreliteConfig,
    /// Per-flow reassembly/shaping buffer capacity, packets.
    buffer_capacity: usize,
    flows: DenseMap<FlowId, GatewayFlow>,
    /// Slots holding gateway state; the adaptation epoch walks this
    /// instead of `0..key_bound()`, so under churn its cost tracks the
    /// peak slot count rather than total arrivals.
    occupied: ActiveSet<FlowId>,
    /// Per-slot emission-chain epoch (see `CoreliteEdge`): bumped when
    /// a slot changes occupant or its flow stops, so a pending pacing
    /// timer from the previous occupant dies instead of draining the
    /// new occupant's buffer.
    emission_epochs: Vec<u32>,
    markers_injected: u64,
    feedback_received: u64,
    buffer_drops: u64,
    #[allow(dead_code)]
    seed: u64,
}

impl CoreliteGateway {
    /// Creates gateway logic with a per-flow buffer of
    /// `buffer_capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CoreliteConfig::validate`] or
    /// `buffer_capacity` is zero.
    pub fn new(seed: u64, cfg: CoreliteConfig, buffer_capacity: usize) -> Self {
        cfg.validate();
        assert!(buffer_capacity > 0, "gateway buffer must hold packets");
        CoreliteGateway {
            cfg,
            buffer_capacity,
            flows: DenseMap::new(),
            occupied: ActiveSet::new(),
            emission_epochs: Vec::new(),
            markers_injected: 0,
            feedback_received: 0,
            buffer_drops: 0,
            seed,
        }
    }

    /// The emission-chain epoch of `idx` (0 until first bumped).
    fn epoch_of(&self, idx: usize) -> u32 {
        self.emission_epochs.get(idx).copied().unwrap_or(0)
    }

    /// Invalidates any outstanding emission chain for `flow`'s slot.
    fn bump_epoch(&mut self, flow: FlowId) {
        let idx = flow.index();
        if idx >= self.emission_epochs.len() {
            self.emission_epochs.resize(idx + 1, 0);
        }
        self.emission_epochs[idx] = self.emission_epochs[idx].wrapping_add(1);
    }

    /// Timer parameter for `flow`'s current emission chain: epoch high,
    /// slot index low.
    fn emit_param(&self, flow: FlowId) -> u64 {
        ((self.epoch_of(flow.index()) as u64) << 32) | flow.index() as u64
    }

    fn ensure_emission(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let param = self.emit_param(flow);
        let s = self.flows.get_mut(&flow).expect("gateway flow exists");
        if s.emission_pending
            || s.buffer.is_empty()
            || !s.controller.is_active()
            || s.controller.rate() <= 0.0
        {
            return;
        }
        let interval = SimDuration::from_secs_f64(1.0 / s.controller.rate());
        let delay = match s.last_emit {
            Some(last) => {
                let due = last.checked_add(interval).unwrap_or(SimTime::MAX);
                due.saturating_since(ctx.now())
            }
            None => SimDuration::ZERO,
        };
        s.emission_pending = true;
        ctx.set_timer(delay, TimerKind::with_param(TIMER_EMIT, param));
    }

    fn handle_emit(&mut self, ctx: &mut Ctx<'_>, param: u64) {
        let idx = param as u32 as usize;
        let epoch = (param >> 32) as u32;
        // A chain armed for a previous occupant (or a stopped
        // activation) of this slot is stale.
        if self.epoch_of(idx) != epoch {
            return;
        }
        let node = ctx.node();
        let now = ctx.now();
        let slot = FlowId::from_index(idx);
        let Some(s) = self.flows.get_mut(&slot) else {
            return;
        };
        let flow = s.occupant;
        s.emission_pending = false;
        // The timer was armed at the rate current when it was set; an
        // epoch may have changed the rate (or stopped the flow) since.
        // Re-derive the pacing decision at fire time.
        if !s.controller.is_active() || s.controller.rate() <= 0.0 {
            return;
        }
        if let Some(last) = s.last_emit {
            let interval = SimDuration::from_secs_f64(1.0 / s.controller.rate());
            let due = last.checked_add(interval).unwrap_or(SimTime::MAX);
            if now < due {
                // The rate dropped while the timer was in flight: wait
                // out the remainder of the new interval.
                s.emission_pending = true;
                ctx.set_timer(
                    due.saturating_since(now),
                    TimerKind::with_param(TIMER_EMIT, param),
                );
                return;
            }
        }
        let Some(mut packet) = s.buffer.pop_front() else {
            return;
        };
        if s.controller.take_marker(&self.cfg) {
            packet.marker = Some(Marker {
                flow,
                edge: node,
                normalized_rate: s.controller.normalized_excess(),
            });
            self.markers_injected += 1;
        }
        s.last_emit = Some(now);
        ctx.emit(packet);
        self.ensure_emission(ctx, flow);
    }
}

impl RouterLogic for CoreliteGateway {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.cfg.edge_epoch, TimerKind::tagged(TIMER_EPOCH));
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, mut packet: Packet) {
        let flow = packet.flow;
        // The upstream cloud's marker domain ends here.
        packet.marker = None;
        let now = ctx.now();
        let (weight, min_rate) = {
            let info = ctx.flow(flow);
            (info.weight, info.min_rate)
        };
        // Remaining path RTT, gateway → egress and back.
        let rtt = 2.0
            * (ctx.one_way_delay(flow).as_secs_f64()
                - ctx.reverse_delay_to_ingress(flow).as_secs_f64())
            .max(1e-3);
        // A recycled slot's new occupant must not inherit the previous
        // occupant's controller or buffered packets.
        if self.flows.get(&flow).is_some_and(|s| s.occupant != flow) {
            self.flows.remove(&flow);
            self.bump_epoch(flow);
        }
        self.occupied.insert(flow);
        let cfg = &self.cfg;
        let s = self.flows.entry_or_insert_with(flow, || {
            let mut controller = RateController::new(weight, min_rate, rtt);
            controller.start(cfg, now, rtt);
            GatewayFlow {
                occupant: flow,
                controller,
                buffer: VecDeque::new(),
                emission_pending: false,
                buffered_peak: 0,
                last_arrival: now,
                last_emit: None,
            }
        });
        // A flow reappearing after a stop or a prolonged idle gap has
        // restarted: its stale rate no longer reflects the path, so it
        // begins a fresh slow-start like any new flow.
        let idle = now.saturating_since(s.last_arrival) >= cfg.idle_restart;
        if !s.controller.is_active() || idle {
            s.controller.start(cfg, now, rtt);
            s.last_emit = None;
        }
        s.last_arrival = now;
        if s.buffer.len() >= self.buffer_capacity {
            self.buffer_drops += 1;
            ctx.drop_packet(packet);
            return;
        }
        s.buffer.push_back(packet);
        s.buffered_peak = s.buffered_peak.max(s.buffer.len());
        self.ensure_emission(ctx, flow);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
        match timer.tag {
            TIMER_EPOCH => {
                let now = ctx.now();
                // Occupied-slot scan in ascending slot order — the same
                // visit order as the full `0..key_bound()` scan, but
                // O(occupied slots) under churn. Samples are labelled
                // with the stored occupant id, which is who the state
                // belongs to (the network-side slot may already hold a
                // newer occupant whose packets have not reached us yet).
                for pos in 0..self.occupied.len() {
                    let slot = self.occupied.get(pos);
                    let Some(s) = self.flows.get_mut(&slot) else {
                        continue;
                    };
                    let flow = s.occupant;
                    if s.controller.is_active() {
                        // m(f) must be read before the epoch update
                        // consumes the per-core counts.
                        ctx.publish(Sample::for_flow(
                            "m_f",
                            flow,
                            s.controller.feedback_max() as f64,
                        ));
                    }
                    s.controller.epoch_update(&self.cfg, now);
                    if s.controller.is_active() {
                        ctx.publish(Sample::for_flow("b_g", flow, s.controller.rate()));
                        ctx.publish(Sample::for_flow(
                            "slow_start",
                            flow,
                            f64::from(s.controller.in_slow_start()),
                        ));
                    }
                    self.ensure_emission(ctx, flow);
                }
                ctx.set_timer(self.cfg.edge_epoch, TimerKind::tagged(TIMER_EPOCH));
            }
            TIMER_EMIT => self.handle_emit(ctx, timer.param),
            _ => {}
        }
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, msg: ControlMsg) {
        if let ControlMsg::MarkerFeedback { marker, from } = msg {
            self.feedback_received += 1;
            let cfg = &self.cfg;
            if let Some(s) = self.flows.get_mut(&marker.flow) {
                s.controller.on_feedback(cfg, from, ctx.now());
            }
        }
        // Losses: ignored, as at any Corelite edge.
    }

    fn on_flow_stop(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        // Delivered when the gateway itself is the flow's ingress; for
        // mid-path gateways the idle-gap check in `on_packet` infers the
        // stop instead. Buffered packets are kept: they drain once the
        // flow reactivates. The epoch bump kills the pending pacing
        // chain either way.
        self.bump_epoch(flow);
        if ctx.flow(flow).is_transient() {
            self.flows.remove(&flow);
            self.occupied.remove(flow);
            return;
        }
        if let Some(s) = self.flows.get_mut(&flow) {
            s.controller.stop(ctx.now());
            s.emission_pending = false;
        }
    }

    fn report(&self, _now: SimTime) -> LogicReport {
        let mut report = LogicReport::default();
        for (_, s) in self.flows.iter() {
            report
                .flow_rates
                .insert(s.occupant, s.controller.series().clone());
        }
        report.counters.insert(
            "gateway_markers_injected".to_owned(),
            self.markers_injected as f64,
        );
        report.counters.insert(
            "gateway_feedback_received".to_owned(),
            self.feedback_received as f64,
        );
        report
            .counters
            .insert("gateway_buffer_drops".to_owned(), self.buffer_drops as f64);
        let peak: usize = self
            .flows
            .values()
            .map(|s| s.buffered_peak)
            .max()
            .unwrap_or(0);
        report
            .counters
            .insert("gateway_buffer_peak".to_owned(), peak as f64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::CoreliteEdge;
    use crate::router::CoreliteCore;
    use netsim::flow::FlowSpec;
    use netsim::link::LinkSpec;
    use netsim::logic::ForwardLogic;
    use netsim::topology::TopologyBuilder;
    use netsim::{FlowId, SimReport};

    /// Two clouds in series:
    /// E → A1 → A2 → G → B1 → B2 → X
    /// Cloud A's bottleneck (A1→A2) is `cap_a` pps; cloud B's (B1→B2) is
    /// `cap_b`. A competing local flow loads cloud B.
    fn two_clouds(cap_a_bps: u64, cap_b_bps: u64) -> SimReport {
        let cfg = CoreliteConfig::default();
        let mut b = TopologyBuilder::new(31);
        let e = b.node("E", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
        let a1 = b.node("A1", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
        let a2 = b.node("A2", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
        let g = b.node("G", |s| Box::new(CoreliteGateway::new(s, cfg.clone(), 200)));
        let b1 = b.node("B1", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
        let b2 = b.node("B2", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
        let x = b.node("X", |_| Box::new(ForwardLogic));
        let eb = b.node("EB", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
        let xb = b.node("XB", |_| Box::new(ForwardLogic));

        let fast = LinkSpec::new(40_000_000, SimDuration::from_millis(5), 400);
        b.link(e, a1, fast);
        b.link(
            a1,
            a2,
            LinkSpec::new(cap_a_bps, SimDuration::from_millis(10), 40),
        );
        b.link(a2, g, fast);
        b.link(g, b1, fast);
        b.link(
            b1,
            b2,
            LinkSpec::new(cap_b_bps, SimDuration::from_millis(10), 40),
        );
        b.link(b2, x, fast);
        b.link(eb, b1, fast);
        b.link(b2, xb, fast);

        // Flow 0: crosses both clouds through the gateway.
        b.flow(FlowSpec::new(vec![e, a1, a2, g, b1, b2, x], 1).active(SimTime::ZERO, None));
        // Flow 1: local to cloud B, same weight.
        b.flow(FlowSpec::new(vec![eb, b1, b2, xb], 1).active(SimTime::ZERO, None));
        let end = SimTime::from_secs(200);
        let mut net = b.build();
        net.run_until(end);
        net.into_report(end)
    }

    #[test]
    fn cross_cloud_flow_is_bottlenecked_by_the_tighter_cloud() {
        // Cloud A: 4 Mbps (500 pps) uncontested; cloud B: 4 Mbps shared
        // 1:1 with the local flow ⇒ the cross-cloud flow should settle
        // near 250 pps, the local flow near 250 pps.
        let report = two_clouds(4_000_000, 4_000_000);
        let cross = report
            .flow(FlowId::from_index(0))
            .mean_goodput_in(SimTime::from_secs(150), SimTime::from_secs(200))
            .unwrap();
        let local = report
            .flow(FlowId::from_index(1))
            .mean_goodput_in(SimTime::from_secs(150), SimTime::from_secs(200))
            .unwrap();
        assert!(
            (cross - 250.0).abs() / 250.0 < 0.3,
            "cross-cloud flow {cross}, expected ≈250"
        );
        assert!(
            (local - 250.0).abs() / 250.0 < 0.3,
            "local flow {local}, expected ≈250"
        );
    }

    #[test]
    fn gateway_strips_upstream_markers_and_injects_its_own() {
        let report = two_clouds(4_000_000, 4_000_000);
        assert!(
            report.counter_total("gateway_markers_injected") > 0.0,
            "gateway must mark for the downstream cloud"
        );
        assert!(
            report.counter_total("gateway_feedback_received") > 0.0,
            "downstream cores must feed back to the gateway"
        );
    }

    #[test]
    fn gateway_buffer_absorbs_cloud_mismatch() {
        // Cloud A allows ~500 pps but cloud B only ~250: the gateway
        // buffer bounds the mismatch, and upstream feedback eventually
        // reins flow 0 in at its cloud-A edge too... it does not, in this
        // paper's model — the upstream cloud sees no congestion, so the
        // gateway sheds the excess at its buffer. Verify the shed is
        // bounded by the buffer (no unbounded growth) and the downstream
        // share is honoured.
        let report = two_clouds(8_000_000, 4_000_000);
        let cross = report
            .flow(FlowId::from_index(0))
            .mean_goodput_in(SimTime::from_secs(150), SimTime::from_secs(200))
            .unwrap();
        assert!(
            (cross - 250.0).abs() / 250.0 < 0.3,
            "cross-cloud flow {cross}, expected ≈250 (cloud B's share)"
        );
        let peak = report.counter_total("gateway_buffer_peak");
        assert!(peak <= 200.0, "gateway buffer bounded: peak {peak}");
    }

    #[test]
    #[should_panic(expected = "buffer")]
    fn zero_buffer_rejected() {
        CoreliteGateway::new(0, CoreliteConfig::default(), 0);
    }

    #[test]
    fn gateway_restarts_controller_after_idle_gap() {
        // Same shape as `two_clouds`, but the cross-cloud flow stops at
        // t = 60 s and restarts at t = 100 s — a 40 s gap, far beyond
        // `idle_restart`. The gateway must re-enter slow-start on the
        // flow's return instead of resuming (and further inflating) the
        // stale pre-stop rate.
        use netsim::ids::NodeId;

        let cfg = CoreliteConfig::default();
        let mut b = TopologyBuilder::new(31);
        let e = b.node("E", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
        let a1 = b.node("A1", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
        let a2 = b.node("A2", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
        let g = b.node("G", |s| Box::new(CoreliteGateway::new(s, cfg.clone(), 200)));
        let b1 = b.node("B1", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
        let b2 = b.node("B2", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
        let x = b.node("X", |_| Box::new(ForwardLogic));
        let eb = b.node("EB", |s| Box::new(CoreliteEdge::new(s, cfg.clone())));
        let xb = b.node("XB", |_| Box::new(ForwardLogic));

        let fast = LinkSpec::new(40_000_000, SimDuration::from_millis(5), 400);
        let shared = LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40);
        b.link(e, a1, fast);
        b.link(a1, a2, shared);
        b.link(a2, g, fast);
        b.link(g, b1, fast);
        b.link(b1, b2, shared);
        b.link(b2, x, fast);
        b.link(eb, b1, fast);
        b.link(b2, xb, fast);
        b.flow(
            FlowSpec::new(vec![e, a1, a2, g, b1, b2, x], 1)
                .active(SimTime::ZERO, Some(SimTime::from_secs(60)))
                .active(SimTime::from_secs(100), None),
        );
        b.flow(FlowSpec::new(vec![eb, b1, b2, xb], 1).active(SimTime::ZERO, None));
        let end = SimTime::from_secs(200);
        let mut net = b.build();
        net.run_until(end);
        let report = net.into_report(end);

        // The gateway's own rate series for the cross-cloud flow (node G
        // is index 3; `allotted_rate` would return the upstream edge's).
        let g_series = &report.logic[&NodeId::from_index(3)].flow_rates[&FlowId::from_index(0)];
        let at_restart = g_series
            .iter()
            .filter(|(t, _)| *t >= SimTime::from_secs(100) && *t < SimTime::from_secs(110))
            .map(|(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        assert!(
            at_restart < 16.0,
            "gateway rate {at_restart} just after restart, expected a fresh slow-start"
        );
        // And the flow climbs back toward its ~250 pkt/s cloud-B share
        // afterwards (the tail window still includes part of the ramp).
        let cross = report
            .flow(FlowId::from_index(0))
            .mean_goodput_in(SimTime::from_secs(160), SimTime::from_secs(200))
            .unwrap();
        assert!(
            cross > 150.0,
            "cross-cloud flow {cross} after restart, expected recovery toward 250"
        );
    }
}
