//! The per-flow rate-control state machine shared by Corelite ingress
//! edges and inter-cloud gateways.
//!
//! A [`RateController`] owns everything §2 step 3 and §4 prescribe for
//! one flow at one edge: the allowed rate `b_g`, the slow-start /
//! linear-increase phase machine, the per-core feedback bookkeeping (the
//! edge reacts to the **max** per-core marker count), the minimum-rate
//! contract floor, the out-of-profile marker credit, and the recorded
//! allotted-rate series. The hosting logic decides *what* to emit (a
//! shaped synthetic source at an ingress edge, a store-and-forward buffer
//! at a gateway); the controller decides *how fast*.

use sim_core::stats::TimeSeries;
use sim_core::time::SimTime;

use netsim::ids::NodeId;
use netsim::slab::DenseMap;

use crate::config::{AdaptationScheme, CoreliteConfig, DecreasePolicy};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    SlowStart,
    Linear,
}

/// Rate-control state for one flow at one (ingress or gateway) edge.
#[derive(Debug)]
pub struct RateController {
    weight: u32,
    min_rate: f64,
    active: bool,
    rate: f64,
    cwnd: f64,
    rtt: f64,
    phase: Phase,
    last_double: SimTime,
    marker_credit: f64,
    feedback: DenseMap<NodeId, u32>,
    series: TimeSeries,
}

impl RateController {
    /// Creates an inactive controller for a flow of the given `weight`
    /// and contract `min_rate`. `base_rtt` is the flow's base round-trip
    /// estimate — the sum of its path links' propagation latencies,
    /// forward plus reverse — which seeds the window/rate conversion
    /// until live measurements arrive via
    /// [`update_rtt`](RateController::update_rtt). There is deliberately
    /// no default: a hard-coded RTT made every `WindowAimd` flow start
    /// from the same window regardless of its actual path.
    pub fn new(weight: u32, min_rate: f64, base_rtt: f64) -> Self {
        RateController {
            weight,
            min_rate,
            active: false,
            rate: 0.0,
            cwnd: 1.0,
            rtt: base_rtt.max(1e-3),
            phase: Phase::Linear,
            last_double: SimTime::ZERO,
            marker_credit: 0.0,
            feedback: DenseMap::new(),
            series: TimeSeries::new(),
        }
    }

    /// (Re)starts the flow at `now`: fresh slow-start for best-effort
    /// flows, linear probing from the contract for contracted flows.
    /// `rtt` is the flow's base round-trip estimate (propagation only).
    /// The initial window is `initial_rate · rtt` — RTT-proportional, so
    /// flows on long paths start with proportionally larger windows and
    /// identical initial *rates* (the old `max(…, 1.0)` floor collapsed
    /// every sub-second-RTT flow to the same one-packet window).
    pub fn start(&mut self, cfg: &CoreliteConfig, now: SimTime, rtt: f64) {
        self.active = true;
        self.rtt = rtt.max(1e-3);
        self.cwnd = cfg.initial_rate * self.rtt;
        if self.min_rate > 0.0 {
            self.rate = self.min_rate.max(cfg.initial_rate);
            self.phase = Phase::Linear;
        } else {
            self.rate = match cfg.adaptation {
                AdaptationScheme::RateLimd => cfg.initial_rate,
                AdaptationScheme::WindowAimd => self.cwnd / self.rtt,
            };
            self.phase = Phase::SlowStart;
        }
        self.last_double = now;
        self.marker_credit = 0.0;
        self.feedback.clear();
        self.record(now);
    }

    /// Stops the flow at `now`.
    pub fn stop(&mut self, now: SimTime) {
        self.active = false;
        self.feedback.clear();
        self.record(now);
    }

    /// Whether the flow is currently active.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The current allowed rate `b_g`, packets per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The current congestion window, packets (meaningful under
    /// [`AdaptationScheme::WindowAimd`]).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// The round-trip estimate the window/rate conversion currently uses.
    pub fn rtt(&self) -> f64 {
        self.rtt
    }

    /// Feeds a live round-trip measurement (e.g. an SRTT from an
    /// ack-clocked transport) into the window/rate conversion, replacing
    /// the static base estimate. Under `WindowAimd` the rate is re-derived
    /// immediately: the window is the control variable and the rate is a
    /// pure function of `(cwnd, rtt)`. Under `RateLimd` the rate is the
    /// control variable, so only the stored estimate changes.
    pub fn update_rtt(&mut self, cfg: &CoreliteConfig, rtt: f64) {
        self.rtt = rtt.max(1e-3);
        if self.active && cfg.adaptation == AdaptationScheme::WindowAimd {
            self.rate = (self.cwnd / self.rtt).max(self.min_rate);
        }
    }

    /// The flow's rate weight.
    pub fn weight(&self) -> u32 {
        self.weight
    }

    /// The recorded allotted-rate series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// The flow's normalized out-of-profile rate `(b_g − min)/w` — the
    /// value carried in markers.
    pub fn normalized_excess(&self) -> f64 {
        (self.rate - self.min_rate).max(0.0) / self.weight as f64
    }

    /// Accounts one emitted packet toward marker injection. Returns
    /// `true` when this packet should carry a marker (every
    /// `N_w = K1·w` *out-of-profile* packets; contracted in-profile
    /// traffic never marks).
    pub fn take_marker(&mut self, cfg: &CoreliteConfig) -> bool {
        let spacing = cfg.marker_spacing(self.weight) as f64;
        let excess = (self.rate - self.min_rate).max(0.0);
        if excess > 0.0 && self.rate > 0.0 {
            self.marker_credit += excess / self.rate;
        }
        if self.marker_credit >= spacing {
            self.marker_credit -= spacing;
            true
        } else {
            false
        }
    }

    /// Records marker feedback from core router `from` at `now`. The
    /// first notification during slow-start halves the rate immediately
    /// (§4) and is consumed by the halving; later notifications
    /// accumulate for the epoch update. Returns `true` if this feedback
    /// ended slow-start.
    ///
    /// The halving follows `cfg.adaptation`: under `RateLimd` the rate is
    /// the control variable and `cwnd` must be left alone (halving it
    /// would plant stale window state that corrupts the derived rate if
    /// the scenario later switches to `WindowAimd`); under `WindowAimd`
    /// the window halves and the rate is re-derived from it.
    pub fn on_feedback(&mut self, cfg: &CoreliteConfig, from: NodeId, now: SimTime) -> bool {
        if !self.active {
            return false;
        }
        if self.phase == Phase::SlowStart {
            self.phase = Phase::Linear;
            match cfg.adaptation {
                AdaptationScheme::RateLimd => {
                    self.rate = (self.rate / 2.0).max(self.min_rate);
                }
                AdaptationScheme::WindowAimd => {
                    self.cwnd = (self.cwnd / 2.0).max(1.0);
                    self.rate = (self.cwnd / self.rtt).max(self.min_rate);
                }
            }
            self.record(now);
            true
        } else {
            *self.feedback.entry_or_insert_with(from, || 0) += 1;
            false
        }
    }

    /// The highest per-core marker count accumulated since the last epoch
    /// update — the paper's `m(f)`. Read it *before*
    /// [`epoch_update`](RateController::epoch_update), which consumes the
    /// counts.
    pub fn feedback_max(&self) -> u32 {
        self.feedback.values().copied().max().unwrap_or(0)
    }

    /// Whether the controller is still in slow-start.
    pub fn in_slow_start(&self) -> bool {
        self.phase == Phase::SlowStart
    }

    /// Applies one adaptation epoch at `now` (§2 step 3): `+α` on
    /// silence, throttle on feedback (max per-core count), slow-start
    /// doubling on its own clock. Records the new rate.
    pub fn epoch_update(&mut self, cfg: &CoreliteConfig, now: SimTime) {
        if !self.active {
            self.feedback.clear();
            return;
        }
        let m = self.feedback.values().copied().max().unwrap_or(0);
        match cfg.adaptation {
            AdaptationScheme::RateLimd => {
                if m > 0 {
                    self.rate = match cfg.decrease {
                        DecreasePolicy::Absolute => (self.rate - cfg.beta * m as f64).max(0.0),
                        DecreasePolicy::Multiplicative => {
                            self.rate * (1.0 - cfg.beta * m as f64 / self.weight as f64).max(0.0)
                        }
                    }
                    .max(self.min_rate);
                    // Feedback always ends slow-start, even when the
                    // immediate halving path was skipped (e.g. the ending
                    // notification was lost and only epoch-accumulated
                    // counts remain): the phase must never stick.
                    self.phase = Phase::Linear;
                } else {
                    match self.phase {
                        Phase::SlowStart => self.try_double(cfg, now),
                        Phase::Linear => {
                            self.rate += if cfg.alpha_per_weight {
                                cfg.alpha * self.weight as f64
                            } else {
                                cfg.alpha
                            };
                        }
                    }
                }
            }
            AdaptationScheme::WindowAimd => {
                if m > 0 {
                    self.cwnd = (self.cwnd / 2.0).max(1.0);
                    self.phase = Phase::Linear;
                } else {
                    match self.phase {
                        Phase::SlowStart => self.try_double_window(cfg, now),
                        Phase::Linear => self.cwnd += 1.0,
                    }
                }
                self.rate = (self.cwnd / self.rtt).max(self.min_rate);
            }
        }
        self.feedback.clear();
        self.record(now);
    }

    fn ss_thresh(&self, cfg: &CoreliteConfig) -> f64 {
        if cfg.ss_thresh_per_weight {
            cfg.ss_thresh * self.weight as f64
        } else {
            cfg.ss_thresh
        }
    }

    fn try_double(&mut self, cfg: &CoreliteConfig, now: SimTime) {
        if now.saturating_since(self.last_double) >= cfg.slow_start_interval {
            self.rate *= 2.0;
            self.last_double = now;
            if self.rate > self.ss_thresh(cfg) {
                self.rate /= 2.0;
                self.phase = Phase::Linear;
            }
        }
    }

    fn try_double_window(&mut self, cfg: &CoreliteConfig, now: SimTime) {
        if now.saturating_since(self.last_double) >= cfg.slow_start_interval {
            self.cwnd *= 2.0;
            self.last_double = now;
            if self.cwnd / self.rtt > self.ss_thresh(cfg) {
                self.cwnd /= 2.0;
                self.phase = Phase::Linear;
            }
        }
    }

    fn record(&mut self, now: SimTime) {
        let value = if self.active { self.rate } else { 0.0 };
        self.series.push(now, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    fn cfg() -> CoreliteConfig {
        CoreliteConfig::default()
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn slow_start_doubles_then_caps() {
        let c = cfg();
        let mut rc = RateController::new(1, 0.0, 0.24);
        rc.start(&c, t(0.0), 0.24);
        assert_eq!(rc.rate(), 1.0);
        let mut now = t(0.0);
        for _ in 0..12 {
            now += SimDuration::from_millis(500);
            rc.epoch_update(&c, now);
        }
        // 1→2→4→8→16→32, then 64 > 32 triggers the halving to 32.
        assert!(rc.rate() >= 16.0 && rc.rate() <= 40.0, "rate {}", rc.rate());
    }

    #[test]
    fn feedback_in_slow_start_halves_once() {
        let c = cfg();
        let mut rc = RateController::new(1, 0.0, 0.24);
        rc.start(&c, t(0.0), 0.24);
        rc.rate = 20.0;
        let exited = rc.on_feedback(&c, NodeId::from_index(1), t(1.0));
        assert!(exited);
        assert_eq!(rc.rate(), 10.0);
        // A second notification accumulates for the epoch instead.
        assert!(!rc.on_feedback(&c, NodeId::from_index(1), t(1.1)));
        rc.epoch_update(&c, t(1.5));
        assert_eq!(rc.rate(), 9.0); // −β·1
    }

    #[test]
    fn reacts_to_max_per_core_not_sum() {
        let c = cfg();
        let mut rc = RateController::new(1, 0.0, 0.24);
        rc.start(&c, t(0.0), 0.24);
        rc.rate = 50.0;
        rc.phase = Phase::Linear;
        for _ in 0..3 {
            rc.on_feedback(&c, NodeId::from_index(1), t(1.0));
        }
        rc.on_feedback(&c, NodeId::from_index(2), t(1.0));
        rc.epoch_update(&c, t(1.5));
        // max(3, 1) = 3 ⇒ −3, not −4.
        assert_eq!(rc.rate(), 47.0);
    }

    #[test]
    fn contract_floor_is_never_pierced() {
        let c = cfg();
        let mut rc = RateController::new(2, 100.0, 0.24);
        rc.start(&c, t(0.0), 0.24);
        assert!(rc.rate() >= 100.0);
        rc.phase = Phase::Linear;
        rc.rate = 103.0;
        for _ in 0..10 {
            rc.on_feedback(&c, NodeId::from_index(1), t(1.0));
        }
        rc.epoch_update(&c, t(1.5));
        assert_eq!(rc.rate(), 100.0);
    }

    #[test]
    fn marker_credit_tracks_excess_fraction() {
        let c = cfg();
        let mut rc = RateController::new(1, 0.0, 0.24); // spacing 1, no contract
        rc.start(&c, t(0.0), 0.24);
        rc.rate = 10.0;
        // Best-effort: every packet is out-of-profile ⇒ every packet marks.
        assert!(rc.take_marker(&c));
        assert!(rc.take_marker(&c));
        // Contracted at half the rate: every second packet marks.
        let mut rc2 = RateController::new(1, 5.0, 0.24);
        rc2.start(&c, t(0.0), 0.24);
        rc2.rate = 10.0;
        let marks = (0..100).filter(|_| rc2.take_marker(&c)).count();
        assert!((48..=52).contains(&marks), "marks {marks}");
        assert!((rc2.normalized_excess() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn slow_start_exit_halving_is_scheme_aware() {
        // RateLimd (the default): the rate halves, the window is NOT
        // touched — halving it would leave stale window state behind if
        // the scheme were later switched per-scenario.
        let c = cfg();
        assert_eq!(c.adaptation, AdaptationScheme::RateLimd);
        let mut rc = RateController::new(1, 0.0, 0.24);
        rc.start(&c, t(0.0), 0.24);
        let cwnd_before = rc.cwnd;
        rc.rate = 20.0;
        assert!(rc.on_feedback(&c, NodeId::from_index(1), t(1.0)));
        assert_eq!(rc.rate(), 10.0);
        assert_eq!(rc.cwnd, cwnd_before, "RateLimd must not halve cwnd");
        assert!(!rc.in_slow_start());

        // WindowAimd: the window halves and the rate is re-derived.
        let mut cw = cfg();
        cw.adaptation = AdaptationScheme::WindowAimd;
        let mut rc = RateController::new(1, 0.0, 0.24);
        rc.start(&cw, t(0.0), 0.24);
        rc.cwnd = 16.0;
        rc.rate = rc.cwnd / rc.rtt;
        assert!(rc.on_feedback(&cw, NodeId::from_index(1), t(1.0)));
        assert_eq!(rc.cwnd, 8.0);
        assert!((rc.rate() - 8.0 / 0.24).abs() < 1e-9);
    }

    #[test]
    fn initial_window_scales_with_path_rtt() {
        // Regression (ISSUE 10): with the hard-coded 0.1 s default and
        // the `max(…, 1.0)` floor, a 24 ms-path flow and a 240 ms-path
        // flow both started from cwnd = 1.0. The initial window must be
        // RTT-proportional: 10× the path latency ⇒ 10× the window, and
        // identical initial *rates* (`initial_rate`, not `1/rtt`).
        let mut cw = cfg();
        cw.adaptation = AdaptationScheme::WindowAimd;
        let mut short = RateController::new(1, 0.0, 0.024);
        let mut long = RateController::new(1, 0.0, 0.24);
        short.start(&cw, t(0.0), 0.024);
        long.start(&cw, t(0.0), 0.24);
        assert!(
            (long.cwnd() / short.cwnd() - 10.0).abs() < 1e-9,
            "cwnd must scale with base RTT: short {} long {}",
            short.cwnd(),
            long.cwnd()
        );
        assert!(
            (short.rate() - cw.initial_rate).abs() < 1e-9,
            "{}",
            short.rate()
        );
        assert!(
            (long.rate() - cw.initial_rate).abs() < 1e-9,
            "{}",
            long.rate()
        );
    }

    #[test]
    fn update_rtt_rederives_rate_under_window_aimd() {
        let mut cw = cfg();
        cw.adaptation = AdaptationScheme::WindowAimd;
        let mut rc = RateController::new(1, 0.0, 0.2);
        rc.start(&cw, t(0.0), 0.2);
        rc.cwnd = 10.0;
        rc.update_rtt(&cw, 0.5);
        assert!((rc.rate() - 20.0).abs() < 1e-9, "{}", rc.rate());
        assert_eq!(rc.rtt(), 0.5);
        // RateLimd: the stored estimate moves, the rate does not.
        let c = cfg();
        let mut rc = RateController::new(1, 0.0, 0.2);
        rc.start(&c, t(0.0), 0.2);
        rc.rate = 40.0;
        rc.update_rtt(&c, 0.5);
        assert_eq!(rc.rate(), 40.0);
    }

    #[test]
    fn feedback_max_reads_pending_epoch_counts() {
        let c = cfg();
        let mut rc = RateController::new(1, 0.0, 0.24);
        rc.start(&c, t(0.0), 0.24);
        rc.phase = Phase::Linear;
        assert_eq!(rc.feedback_max(), 0);
        rc.on_feedback(&c, NodeId::from_index(1), t(1.0));
        rc.on_feedback(&c, NodeId::from_index(1), t(1.1));
        rc.on_feedback(&c, NodeId::from_index(2), t(1.2));
        assert_eq!(rc.feedback_max(), 2, "max per core, not the sum");
        rc.epoch_update(&c, t(1.5));
        assert_eq!(rc.feedback_max(), 0, "epoch update consumes the counts");
    }

    #[test]
    fn stop_records_zero_and_blocks_feedback() {
        let c = cfg();
        let mut rc = RateController::new(1, 0.0, 0.24);
        rc.start(&c, t(0.0), 0.24);
        rc.stop(t(5.0));
        assert!(!rc.is_active());
        assert_eq!(rc.series().last_value(), Some(0.0));
        assert!(!rc.on_feedback(&c, NodeId::from_index(1), t(6.0)));
    }
}
