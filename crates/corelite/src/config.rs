//! Corelite parameters.
//!
//! Defaults reproduce the paper's simulation setup (§4): `K1 = 1`,
//! `β = 1`, 40-packet queues, congestion threshold 8 packets, 100 ms
//! epochs, slow-start threshold 32 packets per second.

use sim_core::time::SimDuration;

/// How an edge router throttles a flow that received `m` feedback markers
/// in an epoch.
///
/// The paper presents both forms: the piecewise rule
/// `b_g ← max(0, b_g − β·m)` (§2.2, step 3) and — because `m ∝ b_g/w` —
/// its *weighted LIMD* reading `b_g ← b_g·(1 − β·m/w)` (§2.2, closing
/// discussion), which is the multiplicative decrease that the Chiu–Jain
/// argument needs. With the paper's `β = 1` only the absolute rule is
/// stable (it matches the §4 source agents: "decrease the sending rate
/// proportional to the number of congestion indication messages
/// received"), so it is the default; the multiplicative rule needs a
/// fractional `β` (e.g. 0.05) and is provided for the LIMD ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecreasePolicy {
    /// `b_g ← max(0, b_g − β·m)`.
    #[default]
    Absolute,
    /// `b_g ← b_g · max(0, 1 − β·m/w)`.
    Multiplicative,
}

/// The unit in which the link service rate `μ` enters the feedback-count
/// formula (§3.1).
///
/// The paper states `μ` is "the service rate of the outgoing link in
/// packets per congestion epoch", which makes the M/M/1 term a low-gain
/// proportional controller (gain = one epoch) and leaves the cubic term
/// to handle large excursions. Interpreting `μ` in packets per *second*
/// makes the term estimate the full arrival-rate excess per `β` = 1 pkt/s
/// marker — a high-gain controller. Both are provided; the ablation
/// benches compare them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MuUnit {
    /// `μ` in packets per congestion epoch (the paper's phrasing).
    #[default]
    PerEpoch,
    /// `μ` in packets per second (dimensional reading for `β` in pkt/s).
    PerSecond,
}

/// The rate-control algorithm the edge runs per flow (§4.4 lists
/// "different adaptation schemes at the edge router" as ongoing work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdaptationScheme {
    /// The paper's rate-based scheme: `+α` on silence, `−β·m` on
    /// feedback (with the configured [`DecreasePolicy`]).
    #[default]
    RateLimd,
    /// A TCP-like window scheme: the edge maintains a congestion window
    /// `cwnd` and shapes the flow to `cwnd/RTT` (RTT estimated from the
    /// path's propagation delay). `cwnd` doubles during slow-start, grows
    /// by one packet per epoch in congestion avoidance, and halves once
    /// per epoch that saw any marker feedback — so throttling frequency,
    /// not amplitude, tracks the normalized rate. Exploratory: this gives
    /// weight-*influenced* rather than exactly weight-proportional
    /// sharing (see the `window_agent` integration test).
    WindowAimd,
}

/// Which weighted fair marker-selection mechanism core routers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorKind {
    /// §2: keep recently forwarded markers in a bounded circular cache and
    /// select feedback markers uniformly at random from it.
    Cache {
        /// Cache capacity in markers.
        capacity: usize,
    },
    /// §3.2: no cache — select arriving markers with probability
    /// `p_w = F_n / w_av`, send back only those whose labelled normalized
    /// rate is at or above the running average `r_av`, and keep a deficit
    /// counter to swap below-average selections for later above-average
    /// markers.
    Stateless,
}

/// Tunable parameters of the Corelite mechanisms.
///
/// Construct with [`CoreliteConfig::default`] for the paper's values and
/// adjust fields builder-style:
///
/// ```
/// use corelite::config::{CoreliteConfig, SelectorKind};
///
/// let cfg = CoreliteConfig::default().with_selector(SelectorKind::Cache { capacity: 256 });
/// assert_eq!(cfg.selector, SelectorKind::Cache { capacity: 256 });
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoreliteConfig {
    /// Marker spacing constant `K1`: a marker is piggybacked on every
    /// `N_w = K1·w` data packets (paper: 1).
    pub k1: u32,
    /// Linear increase step `α` in packets per second, applied each edge
    /// epoch with no feedback (paper: 1).
    pub alpha: f64,
    /// Whether the additive increase scales with the flow's rate weight
    /// (`α·w`). Marker feedback trims every flow in proportion to its
    /// normalized rate, so scaling the probe step symmetrically keeps the
    /// relative oscillation equal across weight classes, at the price of
    /// a more aggressive aggregate probe. Disabled by default (the paper
    /// increases "by a constant"); the ablation benches cover both.
    pub alpha_per_weight: bool,
    /// Decrease constant `β` (paper: 1). Its meaning depends on
    /// [`CoreliteConfig::decrease`]: packets per second per marker for
    /// [`DecreasePolicy::Absolute`], the per-marker fraction `β/w` for
    /// [`DecreasePolicy::Multiplicative`].
    pub beta: f64,
    /// The edge throttling rule applied on feedback.
    pub decrease: DecreasePolicy,
    /// The per-flow rate-control algorithm at the edge.
    pub adaptation: AdaptationScheme,
    /// Edge adaptation epoch. The paper specifies "an epoch size of
    /// 100 ms **at the core router**" but leaves the edge epoch open;
    /// 500 ms (between the core epoch and the slow-start second) gives
    /// the loss-free operation §4.2 reports, while 100 ms makes the
    /// control loop only marginally stable (see the `edge_epoch`
    /// ablation bench).
    pub edge_epoch: SimDuration,
    /// Core congestion-detection epoch (paper: 100 ms).
    pub core_epoch: SimDuration,
    /// Congestion threshold `q_thresh` on the average queue length, in
    /// packets (paper: 8).
    pub q_thresh: f64,
    /// The self-correcting cubic coefficient `k` in the feedback-count
    /// formula; 0 disables the correction term (§3.1).
    pub correction_k: f64,
    /// Unit of the service rate `μ` in the feedback-count formula.
    pub mu_unit: MuUnit,
    /// Congestion estimation module at core routers (§3.1 notes the
    /// module is replaceable; see [`crate::detector`]).
    pub detector: crate::detector::DetectorKind,
    /// Slow-start threshold in packets per second *per unit weight*:
    /// a flow whose rate exceeds `ss_thresh·w` ends slow-start with a
    /// halving (paper: 32). Scaling by the weight lets high-weight flows
    /// ride slow-start until they are near their (larger) fair share, as
    /// §4.2 describes; set [`CoreliteConfig::ss_thresh_per_weight`] to
    /// `false` for a flat threshold.
    pub ss_thresh: f64,
    /// Whether `ss_thresh` scales with the flow's rate weight.
    pub ss_thresh_per_weight: bool,
    /// Initial allowed rate of a newly started flow, packets per second.
    pub initial_rate: f64,
    /// Slow-start doubling interval (paper: every second).
    pub slow_start_interval: SimDuration,
    /// Idle gap after which a gateway treats a flow as restarted: when no
    /// packet of the flow has arrived for this long, the next arrival
    /// re-enters slow-start with fresh controller state instead of
    /// resuming a stale rate. Mid-path gateways receive no flow
    /// activation events, so restart must be inferred from the arrival
    /// process (default 2 s — several edge epochs, well above in-cloud
    /// queueing delays).
    pub idle_restart: SimDuration,
    /// Marker selection mechanism at core routers.
    pub selector: SelectorKind,
    /// Exponential-average gain for the stateless selector's running
    /// averages `r_av` and `w_av` (per observation / per epoch).
    pub running_avg_gain: f64,
    /// Reference packet size in bytes used to express a link's service
    /// rate `μ` in packets per epoch (paper: fixed 1 KB packets).
    pub reference_packet_size: u32,
}

impl Default for CoreliteConfig {
    fn default() -> Self {
        CoreliteConfig {
            k1: 1,
            alpha: 1.0,
            alpha_per_weight: false,
            beta: 1.0,
            decrease: DecreasePolicy::Absolute,
            adaptation: AdaptationScheme::RateLimd,
            edge_epoch: SimDuration::from_millis(500),
            core_epoch: SimDuration::from_millis(100),
            q_thresh: 8.0,
            correction_k: 0.005,
            mu_unit: MuUnit::PerEpoch,
            detector: crate::detector::DetectorKind::Paper,
            ss_thresh: 32.0,
            ss_thresh_per_weight: true,
            initial_rate: 1.0,
            slow_start_interval: SimDuration::from_secs(1),
            idle_restart: SimDuration::from_secs(2),
            selector: SelectorKind::Stateless,
            running_avg_gain: 0.1,
            reference_packet_size: 1000,
        }
    }
}

impl CoreliteConfig {
    /// Returns the marker spacing `N_w = K1·w` for a flow of weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn marker_spacing(&self, weight: u32) -> u32 {
        assert!(weight > 0, "flow weight must be positive");
        self.k1 * weight
    }

    /// Sets the marker selection mechanism (builder-style).
    pub fn with_selector(mut self, selector: SelectorKind) -> Self {
        self.selector = selector;
        self
    }

    /// Sets both epochs (builder-style) — the paper varies these together
    /// in its sensitivity discussion.
    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        self.edge_epoch = epoch;
        self.core_epoch = epoch;
        self
    }

    /// Sets the cubic correction coefficient `k` (builder-style).
    pub fn with_correction_k(mut self, k: f64) -> Self {
        self.correction_k = k;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on non-positive epochs, negative thresholds, or a zero `K1`.
    pub fn validate(&self) {
        assert!(self.k1 > 0, "K1 must be positive");
        assert!(self.alpha > 0.0, "alpha must be positive");
        assert!(self.beta > 0.0, "beta must be positive");
        assert!(!self.edge_epoch.is_zero(), "edge epoch must be positive");
        assert!(!self.core_epoch.is_zero(), "core epoch must be positive");
        assert!(self.q_thresh >= 0.0, "q_thresh must be non-negative");
        assert!(
            self.correction_k >= 0.0,
            "correction k must be non-negative"
        );
        assert!(self.initial_rate > 0.0, "initial rate must be positive");
        assert!(
            !self.idle_restart.is_zero(),
            "idle restart gap must be positive"
        );
        assert!(
            self.running_avg_gain > 0.0 && self.running_avg_gain <= 1.0,
            "running average gain must be in (0, 1]"
        );
        assert!(
            self.reference_packet_size > 0,
            "reference packet size must be positive"
        );
        if let SelectorKind::Cache { capacity } = self.selector {
            assert!(capacity > 0, "marker cache capacity must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CoreliteConfig::default();
        assert_eq!(c.k1, 1);
        assert_eq!(c.alpha, 1.0);
        assert_eq!(c.beta, 1.0);
        assert_eq!(c.edge_epoch, SimDuration::from_millis(500));
        assert_eq!(c.core_epoch, SimDuration::from_millis(100));
        assert_eq!(c.q_thresh, 8.0);
        assert_eq!(c.ss_thresh, 32.0);
        c.validate();
    }

    #[test]
    fn marker_spacing_scales_with_weight() {
        let c = CoreliteConfig::default();
        assert_eq!(c.marker_spacing(1), 1);
        assert_eq!(c.marker_spacing(3), 3);
        let c2 = CoreliteConfig {
            k1: 2,
            ..CoreliteConfig::default()
        };
        assert_eq!(c2.marker_spacing(3), 6);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn zero_weight_spacing_panics() {
        CoreliteConfig::default().marker_spacing(0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_cache_capacity_rejected() {
        CoreliteConfig::default()
            .with_selector(SelectorKind::Cache { capacity: 0 })
            .validate();
    }

    #[test]
    fn builder_methods_apply() {
        let c = CoreliteConfig::default()
            .with_epoch(SimDuration::from_millis(50))
            .with_correction_k(0.0);
        assert_eq!(c.core_epoch, SimDuration::from_millis(50));
        assert_eq!(c.edge_epoch, SimDuration::from_millis(50));
        assert_eq!(c.correction_k, 0.0);
        c.validate();
    }
}
