//! Pluggable incipient congestion detection.
//!
//! The paper notes that *"the congestion estimation module can be
//! replaced with no impact on the rest of the Corelite mechanisms"*
//! (§3.1). This module makes that claim concrete: a
//! [`CongestionDetector`] turns per-epoch queue observations into a
//! marker feedback count `F_n`, and the core router is generic over it.
//!
//! Three detectors are provided:
//!
//! * [`PaperDetector`] — the §3.1 formula (M/M/1 excess + cubic
//!   self-correction), the default.
//! * [`RedDetector`] — an RED-inspired module (Floyd & Jacobson, cited as
//!   \[9\]): exponentially weighted queue average with min/max thresholds
//!   and a linear marking ramp.
//! * [`DecbitDetector`] — a DECbit-inspired module (Jain & Ramakrishnan,
//!   cited as \[7\]): congestion whenever the average queue reaches one
//!   packet, feedback proportional to the queue.

use crate::config::{CoreliteConfig, MuUnit};
use crate::congestion::marker_feedback_count;

/// Turns one congestion epoch's queue observations into the number of
/// feedback markers `F_n` the core router should send for a link.
///
/// Implementations keep per-link state (they are constructed once per
/// outgoing link) and must be deterministic.
pub trait CongestionDetector: std::fmt::Debug {
    /// Called once at the end of every congestion epoch.
    ///
    /// * `q_avg` — time-weighted average queue length over the epoch,
    ///   packets;
    /// * `mu_pps` — the link's service rate in packets per second;
    /// * `epoch_secs` — the congestion epoch length in seconds.
    ///
    /// Returns `F_n ≥ 0` (fractional counts are rounded
    /// expectation-preservingly by the router).
    fn feedback_count(&mut self, q_avg: f64, mu_pps: f64, epoch_secs: f64) -> f64;
}

/// Which congestion estimation module core routers run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorKind {
    /// The paper's §3.1 formula with the thresholds from
    /// [`CoreliteConfig`].
    Paper,
    /// RED-style: EWMA queue average `avg ← (1−w_q)·avg + w_q·q_avg`,
    /// marking ramp between `min_thresh` and `max_thresh`.
    Red {
        /// EWMA gain `w_q` (RED's classic 0.002 is per *packet*; per
        /// *epoch* something like 0.25 is comparable).
        wq: f64,
        /// No feedback below this average queue length (packets).
        min_thresh: f64,
        /// Full-strength feedback at or above this average (packets).
        max_thresh: f64,
        /// Fraction of the per-epoch service that is fed back at the top
        /// of the ramp (RED's `max_p` analogue).
        max_p: f64,
    },
    /// DECbit-style: congestion whenever the average queue is at least
    /// `threshold` (classically 1 packet); feedback grows linearly with
    /// the average queue.
    Decbit {
        /// Average queue length at which congestion is declared.
        threshold: f64,
        /// Markers per packet of average queue above the threshold.
        gain: f64,
    },
}

impl DetectorKind {
    /// Instantiates the detector for one link.
    pub(crate) fn build(&self, cfg: &CoreliteConfig) -> Box<dyn CongestionDetector> {
        match *self {
            DetectorKind::Paper => Box::new(PaperDetector {
                q_thresh: cfg.q_thresh,
                correction_k: cfg.correction_k,
                mu_unit: cfg.mu_unit,
            }),
            DetectorKind::Red {
                wq,
                min_thresh,
                max_thresh,
                max_p,
            } => {
                assert!(wq > 0.0 && wq <= 1.0, "RED w_q must be in (0, 1]");
                assert!(
                    min_thresh >= 0.0 && max_thresh > min_thresh,
                    "RED thresholds must satisfy 0 <= min < max"
                );
                assert!(max_p > 0.0, "RED max_p must be positive");
                Box::new(RedDetector {
                    wq,
                    min_thresh,
                    max_thresh,
                    max_p,
                    avg: 0.0,
                })
            }
            DetectorKind::Decbit { threshold, gain } => {
                assert!(threshold >= 0.0, "DECbit threshold must be non-negative");
                assert!(gain > 0.0, "DECbit gain must be positive");
                Box::new(DecbitDetector { threshold, gain })
            }
        }
    }
}

/// The paper's §3.1 congestion estimator.
#[derive(Debug, Clone)]
pub struct PaperDetector {
    q_thresh: f64,
    correction_k: f64,
    mu_unit: MuUnit,
}

impl CongestionDetector for PaperDetector {
    fn feedback_count(&mut self, q_avg: f64, mu_pps: f64, epoch_secs: f64) -> f64 {
        let mu = match self.mu_unit {
            MuUnit::PerEpoch => mu_pps * epoch_secs,
            MuUnit::PerSecond => mu_pps,
        };
        marker_feedback_count(q_avg, self.q_thresh, mu, self.correction_k)
    }
}

/// RED-inspired congestion estimator (see [`DetectorKind::Red`]).
#[derive(Debug, Clone)]
pub struct RedDetector {
    wq: f64,
    min_thresh: f64,
    max_thresh: f64,
    max_p: f64,
    avg: f64,
}

impl CongestionDetector for RedDetector {
    fn feedback_count(&mut self, q_avg: f64, mu_pps: f64, epoch_secs: f64) -> f64 {
        self.avg = (1.0 - self.wq) * self.avg + self.wq * q_avg;
        if self.avg <= self.min_thresh {
            return 0.0;
        }
        let ramp = ((self.avg - self.min_thresh) / (self.max_thresh - self.min_thresh)).min(1.0);
        ramp * self.max_p * mu_pps * epoch_secs
    }
}

/// DECbit-inspired congestion estimator (see [`DetectorKind::Decbit`]).
#[derive(Debug, Clone)]
pub struct DecbitDetector {
    threshold: f64,
    gain: f64,
}

impl CongestionDetector for DecbitDetector {
    fn feedback_count(&mut self, q_avg: f64, _mu_pps: f64, _epoch_secs: f64) -> f64 {
        if q_avg < self.threshold {
            0.0
        } else {
            self.gain * (q_avg - self.threshold + 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CoreliteConfig {
        CoreliteConfig::default()
    }

    #[test]
    fn paper_detector_matches_formula() {
        let mut d = DetectorKind::Paper.build(&cfg());
        let direct = marker_feedback_count(12.0, 8.0, 50.0, cfg().correction_k);
        assert_eq!(d.feedback_count(12.0, 500.0, 0.1), direct);
        assert_eq!(d.feedback_count(0.0, 500.0, 0.1), 0.0);
    }

    #[test]
    fn red_detector_ramps_between_thresholds() {
        let kind = DetectorKind::Red {
            wq: 1.0, // no smoothing: avg = q_avg
            min_thresh: 5.0,
            max_thresh: 15.0,
            max_p: 0.1,
        };
        let mut d = kind.build(&cfg());
        assert_eq!(d.feedback_count(4.0, 500.0, 0.1), 0.0);
        let mid = d.feedback_count(10.0, 500.0, 0.1);
        let full = d.feedback_count(15.0, 500.0, 0.1);
        let beyond = d.feedback_count(40.0, 500.0, 0.1);
        assert!((mid - 0.5 * 0.1 * 50.0).abs() < 1e-9, "mid {mid}");
        assert!((full - 0.1 * 50.0).abs() < 1e-9, "full {full}");
        assert_eq!(full, beyond, "ramp saturates at max_p");
    }

    #[test]
    fn red_detector_smooths_across_epochs() {
        let kind = DetectorKind::Red {
            wq: 0.5,
            min_thresh: 5.0,
            max_thresh: 15.0,
            max_p: 0.1,
        };
        let mut d = kind.build(&cfg());
        // A single spiky epoch is damped by the EWMA.
        let first = d.feedback_count(20.0, 500.0, 0.1); // avg = 10
        let second = d.feedback_count(20.0, 500.0, 0.1); // avg = 15
        assert!(
            first < second,
            "EWMA should build up: {first} then {second}"
        );
    }

    #[test]
    fn decbit_detector_fires_at_one_packet() {
        let kind = DetectorKind::Decbit {
            threshold: 1.0,
            gain: 2.0,
        };
        let mut d = kind.build(&cfg());
        assert_eq!(d.feedback_count(0.5, 500.0, 0.1), 0.0);
        assert_eq!(d.feedback_count(1.0, 500.0, 0.1), 2.0);
        assert_eq!(d.feedback_count(3.0, 500.0, 0.1), 6.0);
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn red_rejects_inverted_thresholds() {
        DetectorKind::Red {
            wq: 0.5,
            min_thresh: 10.0,
            max_thresh: 5.0,
            max_p: 0.1,
        }
        .build(&cfg());
    }
}
