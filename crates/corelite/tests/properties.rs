//! Randomized property tests for the Corelite mechanisms: the
//! feedback-count formula, the marker cache, and the stateless selective
//! selector.

use corelite::congestion::marker_feedback_count;
use corelite::{MarkerCache, StatelessSelector};
use netsim::packet::Marker;
use netsim::{FlowId, NodeId};
use sim_core::check;
use sim_core::rng::DetRng;

fn marker(flow: usize, rn: f64) -> Marker {
    Marker {
        flow: FlowId::from_index(flow),
        edge: NodeId::from_index(0),
        normalized_rate: rn,
    }
}

/// F_n is zero at or below the threshold, non-negative, and monotone
/// non-decreasing in q_avg.
#[test]
fn feedback_count_properties() {
    check::cases(256, 0xC0_01, |g| {
        let q_thresh = g.f64_in(0.0, 40.0);
        let mu = g.f64_in(0.0, 10_000.0);
        let k = g.f64_in(0.0, 1.0);
        let q1 = g.f64_in(0.0, 200.0);
        let q2 = g.f64_in(0.0, 200.0);
        assert_eq!(marker_feedback_count(q_thresh, q_thresh, mu, k), 0.0);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let f_lo = marker_feedback_count(lo, q_thresh, mu, k);
        let f_hi = marker_feedback_count(hi, q_thresh, mu, k);
        assert!(f_lo >= 0.0 && f_hi >= 0.0);
        assert!(
            f_hi >= f_lo - 1e-12,
            "not monotone: F({lo})={f_lo}, F({hi})={f_hi}"
        );
    });
}

/// The cache never exceeds its capacity and `select(n)` returns
/// min(n, len) markers, all of which are present in the cache.
#[test]
fn cache_bounds() {
    check::cases(128, 0xC0_02, |g| {
        let capacity = g.usize_in(1, 64);
        let pushes = g.vec_with(0, 200, |g| (g.usize_in(0, 10), g.f64_in(0.0, 100.0)));
        let n = g.usize_in(0, 80);
        let seed = g.u64_in(0, 1000);
        let mut cache = MarkerCache::new(capacity);
        for &(flow, rn) in &pushes {
            cache.push(marker(flow, rn));
            assert!(cache.len() <= capacity);
        }
        let mut rng = DetRng::new(seed);
        let picks = cache.select(n, &mut rng);
        assert_eq!(picks.len(), n.min(cache.len()));
        for m in &picks {
            assert!(
                cache.count_for_flow(m.flow) > 0,
                "selected marker not in cache"
            );
        }
    });
}

/// The cache holds exactly the most recent `capacity` markers.
#[test]
fn cache_keeps_most_recent() {
    check::cases(128, 0xC0_03, |g| {
        let capacity = g.usize_in(1, 32);
        let total = g.usize_in(1, 200);
        let mut cache = MarkerCache::new(capacity);
        for i in 0..total {
            cache.push(marker(i, 0.0));
        }
        let kept = total.min(capacity);
        // The last `kept` flows are present; everything older is gone.
        for i in 0..total {
            let expected = usize::from(i >= total - kept);
            assert_eq!(
                cache.count_for_flow(FlowId::from_index(i)),
                expected,
                "flow {i} retention wrong"
            );
        }
    });
}

/// The stateless selector never sends feedback while the link is
/// uncongested (p_w = 0), regardless of the marker stream.
#[test]
fn stateless_silent_without_congestion() {
    check::cases(64, 0xC0_04, |g| {
        let markers = g.vec_with(1, 300, |g| (g.usize_in(0, 5), g.f64_in(0.1, 100.0)));
        let seed = g.u64_in(0, 1000);
        let mut sel = StatelessSelector::new(0.1);
        let mut rng = DetRng::new(seed);
        for &(flow, rn) in &markers {
            assert!(!sel.on_marker(&marker(flow, rn), &mut rng));
        }
        sel.on_epoch(0.0);
        for &(flow, rn) in &markers {
            assert!(!sel.on_marker(&marker(flow, rn), &mut rng));
        }
    });
}

/// A marker strictly below the running average is never sent back,
/// whatever the congestion level (the §3.2 selective-throttling
/// guarantee).
#[test]
fn stateless_never_throttles_below_average() {
    check::cases(64, 0xC0_05, |g| {
        let fn_count = g.f64_in(0.0, 100.0);
        let rounds = g.usize_in(1, 200);
        let seed = g.u64_in(0, 1000);
        let mut sel = StatelessSelector::new(0.5);
        let mut rng = DetRng::new(seed);
        // Alternate high (100) and low (1) markers so the running average
        // always sits strictly between them.
        sel.on_marker(&marker(0, 100.0), &mut rng);
        sel.on_marker(&marker(1, 1.0), &mut rng);
        sel.on_epoch(fn_count);
        for _ in 0..rounds {
            let sent_low = sel.on_marker(&marker(1, 1.0), &mut rng);
            assert!(!sent_low, "below-average marker was sent back");
            let _ = sel.on_marker(&marker(0, 100.0), &mut rng);
        }
    });
}

/// r_av stays within the range of observed normalized rates.
#[test]
fn stateless_r_av_bounded() {
    check::cases(64, 0xC0_06, |g| {
        let rates = g.vec_with(1, 200, |g| g.f64_in(0.1, 500.0));
        let gain = g.u64_in(1, 1000) as f64 / 1000.0;
        let mut sel = StatelessSelector::new(gain);
        let mut rng = DetRng::new(1);
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for &rn in &rates {
            sel.on_marker(&marker(0, rn), &mut rng);
            lo = lo.min(rn);
            hi = hi.max(rn);
            let r_av = sel.r_av().unwrap();
            assert!(
                r_av >= lo - 1e-9 && r_av <= hi + 1e-9,
                "r_av {r_av} outside [{lo}, {hi}]"
            );
        }
    });
}

/// Over many epochs with a steady over-share marker stream, the mean
/// feedback per epoch approaches F_n (selection preserves the target
/// in expectation when every marker is eligible).
#[test]
fn stateless_expectation_tracks_fn() {
    check::cases(50, 0xC0_07, |g| {
        let seed = g.u64_in(0, 50);
        let mut sel = StatelessSelector::new(0.2);
        let mut rng = DetRng::new(seed);
        for _ in 0..50 {
            sel.on_marker(&marker(0, 10.0), &mut rng);
        }
        sel.on_epoch(0.0); // learn w_av = 50
        let target = 5.0;
        let mut sent = 0u64;
        let epochs = 300;
        for _ in 0..epochs {
            sel.on_epoch(target);
            for _ in 0..50 {
                sent += u64::from(sel.on_marker(&marker(0, 10.0), &mut rng));
            }
        }
        let mean = sent as f64 / epochs as f64;
        assert!(
            (mean - target).abs() < 0.8,
            "mean feedback {mean} vs target {target}"
        );
    });
}

/// The fluid recursion converges to floor + weighted share of the
/// surplus from *any* initial condition — the executable version of
/// the paper's Chiu–Jain convergence argument (§2.2).
#[test]
fn fluid_model_converges_from_any_start() {
    use corelite::{CoreliteConfig, FluidModel};
    check::cases(48, 0xC0_08, |g| {
        let specs = g.vec_with(2, 7, |g| (g.f64_in(1.0, 5.0), g.f64_in(0.0, 600.0)));
        let mut m = FluidModel::new(CoreliteConfig::default(), 500.0);
        for &(w, r0) in &specs {
            m.add_flow(w, 0.0, r0);
        }
        m.run(8_000);
        let rates = m.rates();
        let expect = m.expected_rates();
        for (i, (r, e)) in rates.iter().zip(&expect).enumerate() {
            assert!(
                (r - e).abs() / e < 0.35,
                "flow {i}: {r:.1} vs expected {e:.1} (all: {rates:?})"
            );
        }
        assert!(m.queue() < 60.0, "fluid queue diverged: {}", m.queue());
    });
}
