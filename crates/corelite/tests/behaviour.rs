//! Behavioural tests for Corelite components beyond the per-module units:
//! selector equivalence at equilibrium, feedback addressing, and epoch
//! independence of the congestion machinery.

use corelite::{CoreliteConfig, CoreliteCore, CoreliteEdge, SelectorKind};
use netsim::flow::FlowSpec;
use netsim::link::LinkSpec;
use netsim::logic::ForwardLogic;
use netsim::topology::TopologyBuilder;
use netsim::{FlowId, SimReport};
use sim_core::time::{SimDuration, SimTime};

/// Two weight-1 flows and one weight-2 flow over one 500 pkt/s link.
fn three_flow_run(cfg: CoreliteConfig, seed: u64, horizon: u64) -> SimReport {
    let mut b = TopologyBuilder::new(seed);
    let mut edges = Vec::new();
    for i in 0..3 {
        let cfg = cfg.clone();
        edges.push(b.node(&format!("edge{i}"), move |s| {
            Box::new(CoreliteEdge::new(s, cfg))
        }));
    }
    let core = b.node("core", |s| Box::new(CoreliteCore::new(s, cfg.clone())));
    let sink = b.node("sink", |_| Box::new(ForwardLogic));
    let access = LinkSpec::new(40_000_000, SimDuration::from_millis(1), 400);
    for &e in &edges {
        b.link(e, core, access);
    }
    b.link(
        core,
        sink,
        LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40),
    );
    for (i, &e) in edges.iter().enumerate() {
        let w = if i == 2 { 2 } else { 1 };
        b.flow(FlowSpec::new(vec![e, core, sink], w).active(SimTime::ZERO, None));
    }
    let end = SimTime::from_secs(horizon);
    let mut net = b.build();
    net.run_until(end);
    net.into_report(end)
}

fn steady(report: &SimReport, i: usize, horizon: u64) -> f64 {
    report
        .allotted_rate(FlowId::from_index(i))
        .unwrap()
        .mean_in(
            SimTime::from_secs(horizon - 40),
            SimTime::from_secs(horizon),
        )
        .unwrap()
}

#[test]
fn cache_and_stateless_selectors_agree_at_equilibrium() {
    // §2's cache and §3.2's stateless scheme are different estimators of
    // the same weighted-fair feedback; their equilibria must match within
    // the oscillation band. Shares: 125 / 125 / 250.
    let horizon = 200;
    let stateless = three_flow_run(CoreliteConfig::default(), 77, horizon);
    let cache = three_flow_run(
        CoreliteConfig::default().with_selector(SelectorKind::Cache { capacity: 128 }),
        77,
        horizon,
    );
    for i in 0..3 {
        let a = steady(&stateless, i, horizon);
        let b = steady(&cache, i, horizon);
        let rel = (a - b).abs() / a.max(b);
        assert!(
            rel < 0.25,
            "flow {i}: stateless {a:.1} vs cache {b:.1} ({rel:.2})"
        );
    }
}

#[test]
fn feedback_reaches_only_the_generating_edge() {
    // Each edge hosts one flow, so each edge's feedback counter can only
    // contain feedback for its own markers; the sum seen at edges equals
    // the sum sent by cores.
    let horizon = 120;
    let report = three_flow_run(CoreliteConfig::default(), 78, horizon);
    let sent = report.counter_total("feedback_sent");
    let received = report.counter_total("feedback_received");
    assert!(sent > 0.0, "congested run must generate feedback");
    assert_eq!(sent, received, "no feedback may be lost or duplicated");
}

#[test]
fn congested_epochs_track_congestion_not_time() {
    // With ample capacity the congested-epoch counter stays at zero; with
    // a saturated link it grows.
    let horizon = 60;
    let idle_cfg = CoreliteConfig::default();
    let mut b = TopologyBuilder::new(79);
    let edge = b.node("edge", |s| Box::new(CoreliteEdge::new(s, idle_cfg.clone())));
    let core = b.node("core", |s| Box::new(CoreliteCore::new(s, idle_cfg.clone())));
    let sink = b.node("sink", |_| Box::new(ForwardLogic));
    let big = LinkSpec::new(100_000_000, SimDuration::from_millis(1), 1000);
    b.link(edge, core, big);
    b.link(core, sink, big);
    b.flow(FlowSpec::new(vec![edge, core, sink], 1).active(SimTime::ZERO, None));
    let end = SimTime::from_secs(horizon);
    let mut net = b.build();
    net.run_until(end);
    let idle = net.into_report(end);
    assert_eq!(idle.counter_total("congested_epochs"), 0.0);

    // The three agents only reach the 500 pkt/s capacity after ~100 s of
    // linear climbing, so give the busy run a longer horizon.
    let busy = three_flow_run(CoreliteConfig::default(), 79, 150);
    assert!(busy.counter_total("congested_epochs") > 10.0);
}

#[test]
fn marker_overhead_matches_k1() {
    // Doubling K1 halves the marker count for the same traffic.
    let horizon = 120;
    let base = three_flow_run(CoreliteConfig::default(), 80, horizon);
    let sparse = three_flow_run(
        CoreliteConfig {
            k1: 2,
            ..CoreliteConfig::default()
        },
        80,
        horizon,
    );
    let base_ratio = base.counter_total("markers_injected")
        / base
            .flows
            .iter()
            .map(|f| f.delivered_packets as f64)
            .sum::<f64>();
    let sparse_ratio = sparse.counter_total("markers_injected")
        / sparse
            .flows
            .iter()
            .map(|f| f.delivered_packets as f64)
            .sum::<f64>();
    assert!(
        (base_ratio / sparse_ratio - 2.0).abs() < 0.2,
        "marker density should halve: {base_ratio:.3} vs {sparse_ratio:.3}"
    );
}
