//! Fixture-based rule tests: for every rule, one deliberately-violating
//! snippet must be flagged and one idiomatic snippet must pass. The
//! fixtures live in `crates/simlint/fixtures/` and are excluded from
//! tree scans by the walker, so they are linted here one-by-one.

use std::path::{Path, PathBuf};

use simlint::walker::find_workspace_root;
use simlint::{lint_file, Allowlist};

fn root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root must exist")
}

fn fixture(name: &str) -> String {
    format!("crates/simlint/fixtures/{name}.rs")
}

fn violations_for(name: &str) -> Vec<simlint::Violation> {
    lint_file(&root(), &fixture(name), &Allowlist::default()).expect("fixture must be readable")
}

/// Each rule's bad fixture yields at least one violation of exactly
/// that rule; its ok fixture yields none at all.
#[test]
fn every_rule_has_a_flagged_and_a_clean_fixture() {
    for (rule, _) in simlint::RULES {
        let stem = rule.replace('-', "_");
        let bad = violations_for(&format!("{stem}_bad"));
        assert!(
            bad.iter().any(|v| v.rule == *rule),
            "{rule}: bad fixture produced no {rule} violation: {bad:?}"
        );
        let ok = violations_for(&format!("{stem}_ok"));
        assert!(ok.is_empty(), "{rule}: ok fixture must be clean: {ok:?}");
    }
}

/// The acceptance-criterion fixture: a FlowId-keyed map injected into a
/// core-router-classified module is caught, with both the keyed-map and
/// the growing-tuple-vec forms, and reports usable file:line positions.
#[test]
fn flowid_keyed_map_in_core_module_is_caught() {
    let v = violations_for("core_state_bad");
    let core: Vec<_> = v.iter().filter(|v| v.rule == "core-state").collect();
    assert_eq!(core.len(), 2, "map + tuple-vec: {v:?}");
    assert!(core.iter().all(|v| v.file.ends_with("core_state_bad.rs")));
    assert!(core.iter().all(|v| v.line > 0));
    let rendered = core[0].to_string();
    assert!(
        rendered.contains("core_state_bad.rs:") && rendered.contains(": core-state — "),
        "display format must be `file:line: rule — message`, got {rendered}"
    );
}

/// The config allowlist suppresses by path prefix — the mechanism that
/// exempts FRED's deliberate per-flow state in the real tree.
#[test]
fn config_allowlist_suppresses_fixture_violations() {
    let mut allow = Allowlist::default();
    allow.insert("core-state", "crates/simlint/fixtures");
    let v = lint_file(&root(), &fixture("core_state_bad"), &allow).expect("fixture readable");
    assert!(
        v.iter().all(|v| v.rule != "core-state"),
        "allowlisted path must be clean: {v:?}"
    );
}

/// Shard-worker taint roots: fixture files with the `shard_worker_`
/// prefix stand in for the sharded executor, so an allowed spawn site
/// reachable from them must still raise taint-thread-spawn unless the
/// allow names the taint companion too.
#[test]
fn shard_worker_roots_taint_allowed_spawn_sites() {
    let bad = violations_for("shard_worker_bad");
    assert!(
        bad.iter().any(|v| v.rule == "taint-thread-spawn"),
        "spawn reached from a shard-worker root must taint: {bad:?}"
    );
    assert!(
        bad.iter().all(|v| v.rule != "thread-spawn"),
        "the base spawn rule itself is inline-allowed: {bad:?}"
    );
    let ok = violations_for("shard_worker_ok");
    assert!(ok.is_empty(), "dual allow must clean the fixture: {ok:?}");
}

/// The float-eq ok fixture exercises the inline-allow path: the same
/// comparison without its `simlint: allow(float-eq)` comment is caught.
#[test]
fn inline_allow_is_load_bearing_in_float_eq_fixture() {
    let src = std::fs::read_to_string(root().join(fixture("float_eq_ok")))
        .expect("fixture must be readable");
    let stripped = src.replace("// simlint: allow(float-eq)", "");
    let rel = fixture("float_eq_ok");
    let v = simlint::scan_source(
        &rel,
        &stripped,
        simlint::classify(&rel),
        &Allowlist::default(),
    );
    assert!(
        v.iter().any(|v| v.rule == "float-eq"),
        "without the allow comment the sentinel compare must be flagged: {v:?}"
    );
}

/// The transport-sender fixture pair: the `transport_sender_` prefix
/// classifies like `crates/netsim/src/transport.rs` (hot-path +
/// per-id-state), and the `RouterLogic` impl is a taint root — so the
/// bad fixture trips dense-state, hot-alloc, and the wall-clock taint
/// companion, while the slab-backed, buffer-reusing twin is clean.
#[test]
fn transport_sender_fixtures_cover_alloc_state_and_taint() {
    let bad = violations_for("transport_sender_bad");
    for rule in ["dense-state", "hot-alloc", "taint-wall-clock"] {
        assert!(
            bad.iter().any(|v| v.rule == rule),
            "transport_sender_bad must trip {rule}: {bad:?}"
        );
    }
    let ok = violations_for("transport_sender_ok");
    assert!(ok.is_empty(), "transport_sender_ok must be clean: {ok:?}");
}
