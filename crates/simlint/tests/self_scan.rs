//! The workspace self-scan: the live tree must be clean under the
//! checked-in `simlint.toml`. This is the test-suite twin of the CI
//! step `cargo run --release -p simlint -- --workspace` — any PR that
//! introduces per-flow state in a core module or a nondeterminism
//! source in a sim crate fails here before it ever reaches CI.

use std::path::Path;

use simlint::walker::{collect_rs_files, find_workspace_root};
use simlint::{lint_workspace, load_allowlist, validate_allowlist, Allowlist};

#[test]
fn live_tree_is_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root must exist");
    let allow = load_allowlist(&root).expect("simlint.toml must parse");
    let violations = lint_workspace(&root, &allow).expect("workspace scan must succeed");
    assert!(
        violations.is_empty(),
        "the tree has simlint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The checked-in allowlist must stay minimal and intentional: FRED's
/// per-flow state and the parallel executor's threads are the only
/// path-level exemptions today. If this fails after an edit to
/// simlint.toml, make sure the new entry is justified in DESIGN.md §10.
#[test]
fn checked_in_allowlist_covers_known_exemptions() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root must exist");
    let allow = load_allowlist(&root).expect("simlint.toml must parse");
    assert!(
        allow.allows("core-state", "crates/baselines/src/fred.rs"),
        "FRED keeps per-flow state by design and must be allowlisted"
    );
    assert!(
        allow.allows("thread-spawn", "crates/scenarios/src/exec.rs"),
        "the deterministic parallel executor is the sanctioned thread user"
    );
    assert!(
        !allow.allows("core-state", "crates/corelite/src/router.rs"),
        "Corelite core modules must never be exempt from core-state"
    );
}

/// Every checked-in allow must still point at a real file: a stale
/// prefix is dead configuration that would silently cover whatever
/// lands at that path next. `lint_workspace` enforces this; here the
/// validator is exercised both ways against the real tree.
#[test]
fn checked_in_allowlist_has_no_stale_prefixes() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root must exist");
    let allow = load_allowlist(&root).expect("simlint.toml must parse");
    let rels = collect_rs_files(&root).expect("walker must succeed");
    validate_allowlist(&allow, &rels).expect("checked-in allowlist must be live");

    let mut stale = Allowlist::default();
    stale.insert("wall-clock", "crates/deleted/src/old.rs");
    let err = validate_allowlist(&stale, &rels).expect_err("stale prefix must error");
    assert!(err.contains("crates/deleted/src/old.rs"), "{err}");
}
