//! End-to-end CLI tests: exit codes and output format, as CI consumes
//! them.

use std::path::Path;
use std::process::Command;

use simlint::walker::find_workspace_root;

fn run(args: &[&str]) -> std::process::Output {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root must exist");
    Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(args)
        .current_dir(root)
        .output()
        .expect("simlint binary must run")
}

#[test]
fn workspace_scan_exits_zero_on_clean_tree() {
    let out = run(&["--workspace"]);
    assert!(
        out.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn fixture_violation_exits_nonzero_with_file_line_rule() {
    let out = run(&["crates/simlint/fixtures/core_state_bad.rs"]);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/simlint/fixtures/core_state_bad.rs:")
            && stdout.contains("core-state"),
        "output must be `file:line: rule — message`, got:\n{stdout}"
    );
}

#[test]
fn list_rules_names_every_rule() {
    let out = run(&["--list-rules"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for (rule, _) in simlint::RULES {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn unknown_flag_exits_two() {
    let out = run(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2), "usage errors must exit 2");
}

#[test]
fn json_output_is_byte_deterministic_across_runs() {
    let args = &[
        "--json",
        "crates/simlint/fixtures/rng_stream_hygiene_bad.rs",
    ][..];
    let first = run(args);
    let second = run(args);
    assert_eq!(first.status.code(), Some(1));
    assert_eq!(
        first.stdout, second.stdout,
        "two identical invocations must emit byte-identical JSON"
    );
    let stdout = String::from_utf8_lossy(&first.stdout);
    assert!(
        stdout.trim_start().starts_with('[') && stdout.contains("\"rule\":\"rng-stream-hygiene\""),
        "JSON shape: {stdout}"
    );
    // A clean input yields an empty array and exit 0 in JSON mode too.
    let clean = run(&["--json", "crates/simlint/fixtures/wall_clock_ok.rs"]);
    assert!(clean.status.success());
    assert_eq!(String::from_utf8_lossy(&clean.stdout).trim(), "[\n]");
}

#[test]
fn github_mode_emits_annotation_commands() {
    let out = run(&[
        "--github",
        "crates/simlint/fixtures/taint_wall_clock_bad.rs",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("::error file=crates/simlint/fixtures/taint_wall_clock_bad.rs,line=")
            && stdout.contains("title=simlint taint-wall-clock::"),
        "annotation format: {stdout}"
    );
}

#[test]
fn explain_prints_rationale_and_rejects_unknown_rules() {
    for (rule, _) in simlint::RULES {
        let out = run(&["--explain", rule]);
        assert!(out.status.success(), "--explain {rule} must succeed");
        assert!(
            out.stdout.len() > 100,
            "--explain {rule} must print a real rationale"
        );
    }
    let out = run(&["--explain", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn taint_fixture_reports_transitive_chain() {
    // The acceptance-criterion shape: the sink is two calls removed
    // from the replay root, and the diagnostic shows the whole chain.
    let out = run(&["crates/simlint/fixtures/taint_wall_clock_bad.rs"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("taint-wall-clock")
            && stdout.contains("on_packet")
            && stdout.contains("refresh_estimate")
            && stdout.contains("calibrate"),
        "chain must name root, middle and sink: {stdout}"
    );
}
