//! End-to-end CLI tests: exit codes and output format, as CI consumes
//! them.

use std::path::Path;
use std::process::Command;

use simlint::walker::find_workspace_root;

fn run(args: &[&str]) -> std::process::Output {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root must exist");
    Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(args)
        .current_dir(root)
        .output()
        .expect("simlint binary must run")
}

#[test]
fn workspace_scan_exits_zero_on_clean_tree() {
    let out = run(&["--workspace"]);
    assert!(
        out.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn fixture_violation_exits_nonzero_with_file_line_rule() {
    let out = run(&["crates/simlint/fixtures/core_state_bad.rs"]);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/simlint/fixtures/core_state_bad.rs:")
            && stdout.contains("core-state"),
        "output must be `file:line: rule — message`, got:\n{stdout}"
    );
}

#[test]
fn list_rules_names_every_rule() {
    let out = run(&["--list-rules"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for (rule, _) in simlint::RULES {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn unknown_flag_exits_two() {
    let out = run(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2), "usage errors must exit 2");
}
