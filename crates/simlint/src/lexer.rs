//! A lightweight Rust lexer: just enough tokenization for the lint
//! rules to pattern-match on identifiers, literals and operators without
//! being fooled by comments, strings, char literals or lifetimes.
//!
//! The lexer is deliberately lossy — it does not preserve whitespace or
//! distinguish keywords from identifiers — but it is exact about *what
//! is code*: text inside `//`/`/* */` comments and string/char literals
//! never produces `Ident`/`Op` tokens, so a doc comment mentioning
//! `HashMap` cannot trip a rule. Comments are still scanned, separately,
//! for `simlint: allow(...)` suppressions.

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `fn`, `unwrap`, ...).
    Ident(String),
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A floating-point literal (`0.0`, `1e6`, `2.5f32`).
    Float,
    /// A string, byte-string, raw-string or char literal, carrying its
    /// raw inner text (escapes unprocessed) so rules that care about
    /// literal values — `rng-stream-hygiene` collects `DetRng` stream
    /// labels — can compare them across call sites.
    Str(String),
    /// A lifetime (`'a`) or loop label.
    Lifetime,
    /// An operator or punctuation, longest-match (`==`, `::`, `{`, ...).
    Op(&'static str),
}

/// One token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// An inline suppression parsed from a `// simlint: allow(rule, ...)`
/// comment: the rule name and the line the comment sits on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineAllow {
    pub rule: String,
    pub line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<InlineAllow>,
}

/// Multi-character operators, longest first so greedy matching is
/// correct (`<<=` must win over `<<` over `<`).
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "::",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes `src`, returning the token stream and any inline suppressions.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.tokens.push(Token { tok, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                'r' | 'b' if self.raw_or_byte_string(line) => {}
                '\'' => self.char_or_lifetime(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if c == '_' || c.is_alphanumeric() => self.ident(line),
                _ => self.operator(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.scan_comment_for_allows(&text, line);
    }

    fn block_comment(&mut self) {
        // `/*` already peeked; consume it, then track nesting. Allow
        // directives are attributed to the line the directive text is on.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        let mut text_line = self.line;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some('\n'), _) => {
                    self.scan_comment_for_allows(&text, text_line);
                    text.clear();
                    self.bump();
                    text_line = self.line;
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.scan_comment_for_allows(&text, text_line);
    }

    /// Recognizes `simlint: allow(rule-a, rule-b)` inside comment text.
    fn scan_comment_for_allows(&mut self, text: &str, line: u32) {
        let Some(at) = text.find("simlint:") else {
            return;
        };
        let rest = text[at + "simlint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            return;
        };
        let Some(close) = rest.find(')') else {
            return;
        };
        for rule in rest[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                self.out.allows.push(InlineAllow {
                    rule: rule.to_owned(),
                    line,
                });
            }
        }
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push(Tok::Str(text), line);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` and `b'x'`.
    /// Returns false when the leading `r`/`b` starts a plain identifier.
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        let mut ahead = 1; // past the leading r or b
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        if self.peek(0) == Some('b') && self.peek(ahead) == Some('\'') {
            // Byte char literal b'x'.
            self.bump();
            self.char_literal(line);
            return true;
        }
        let mut hashes = 0usize;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
            hashes += 1;
        }
        if self.peek(ahead) != Some('"') {
            return false;
        }
        let raw = self.peek(if self.peek(0) == Some('b') { 1 } else { 0 }) == Some('r')
            || self.peek(0) == Some('r');
        for _ in 0..=ahead {
            self.bump(); // prefix, hashes and opening quote
        }
        let mut text = String::new();
        if raw {
            // Raw string: ends at `"` followed by `hashes` hash marks.
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for i in 0..hashes {
                        if self.peek(i) != Some('#') {
                            text.push(c);
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                text.push(c);
            }
        } else {
            // Byte string with escapes.
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        text.push(c);
                        if let Some(e) = self.bump() {
                            text.push(e);
                        }
                    }
                    '"' => break,
                    _ => text.push(c),
                }
            }
        }
        self.push(Tok::Str(text), line);
        true
    }

    /// `'` is ambiguous: `'a` (lifetime) vs `'a'` (char literal).
    fn char_or_lifetime(&mut self, line: u32) {
        let next = self.peek(1);
        let is_lifetime =
            matches!(next, Some(c) if c == '_' || c.is_alphabetic()) && next != Some('\\') && {
                // Scan the identifier run after the quote; a closing
                // quote right after makes it a char literal like 'a'.
                let mut i = 2;
                while matches!(self.peek(i), Some(c) if c == '_' || c.is_alphanumeric()) {
                    i += 1;
                }
                self.peek(i) != Some('\'')
            };
        if is_lifetime {
            self.bump();
            while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
                self.bump();
            }
            self.push(Tok::Lifetime, line);
        } else {
            self.char_literal(line);
        }
    }

    fn char_literal(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '\'' => break,
                _ => text.push(c),
            }
        }
        self.push(Tok::Str(text), line);
    }

    fn number(&mut self, line: u32) {
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            // Radix literal: always an integer.
            self.bump();
            self.bump();
            while matches!(self.peek(0), Some(c) if c.is_ascii_hexdigit() || c == '_') {
                self.bump();
            }
        } else {
            while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                self.bump();
            }
            // A fractional part: `1.5`, or trailing `1.` — but not the
            // range `1..2` and not a method call `1.max(2)`.
            if self.peek(0) == Some('.') {
                let after = self.peek(1);
                let fractional = matches!(after, Some(c) if c.is_ascii_digit())
                    || !matches!(after, Some(c) if c == '.' || c == '_' || c.is_alphabetic());
                if fractional {
                    is_float = true;
                    self.bump();
                    while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
            }
            // An exponent: `1e6`, `2.5E-3`.
            if matches!(self.peek(0), Some('e' | 'E')) {
                let (a, b) = (self.peek(1), self.peek(2));
                let exp = matches!(a, Some(c) if c.is_ascii_digit())
                    || (matches!(a, Some('+' | '-')) && matches!(b, Some(c) if c.is_ascii_digit()));
                if exp {
                    is_float = true;
                    self.bump();
                    self.bump();
                    while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
            }
        }
        // Type suffix (`u64`, `f64`, ...).
        let mut suffix = String::new();
        while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
            suffix.push(self.bump().expect("peeked char must exist"));
        }
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        self.push(if is_float { Tok::Float } else { Tok::Int }, line);
    }

    fn ident(&mut self, line: u32) {
        let mut s = String::new();
        while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
            s.push(self.bump().expect("peeked char must exist"));
        }
        self.push(Tok::Ident(s), line);
    }

    fn operator(&mut self, line: u32) {
        for op in OPS {
            if self
                .chars
                .get(self.pos..self.pos + op.len())
                .is_some_and(|w| w.iter().collect::<String>() == **op)
            {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(Tok::Op(op), line);
                return;
            }
        }
        let c = self.bump().expect("operator char must exist");
        // Single-char punctuation; leak-free static lookup.
        const SINGLES: &[(char, &str)] = &[
            ('{', "{"),
            ('}', "}"),
            ('(', "("),
            (')', ")"),
            ('[', "["),
            (']', "]"),
            ('<', "<"),
            ('>', ">"),
            (',', ","),
            (';', ";"),
            (':', ":"),
            ('.', "."),
            ('#', "#"),
            ('=', "="),
            ('!', "!"),
            ('&', "&"),
            ('|', "|"),
            ('+', "+"),
            ('-', "-"),
            ('*', "*"),
            ('/', "/"),
            ('%', "%"),
            ('^', "^"),
            ('?', "?"),
            ('@', "@"),
            ('$', "$"),
            ('~', "~"),
        ];
        if let Some(&(_, s)) = SINGLES.iter().find(|&&(ch, _)| ch == c) {
            self.push(Tok::Op(s), line);
        }
        // Unknown characters (stray unicode) are skipped: the rules only
        // match on known tokens, so dropping them is safe.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in a block /* nested HashMap */ still comment */
            let s = "HashMap in a string";
            let r = r#"raw HashMap"#;
            let c = 'H';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_owned()), "ids: {ids:?}");
        assert!(ids.contains(&"let".to_owned()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { 'x'; x }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Str(_)))
            .count();
        assert_eq!(lifetimes, 3);
        assert_eq!(chars, 1);
    }

    #[test]
    fn numbers_classify_float_vs_int() {
        let kinds: Vec<Tok> = lex("0 1.5 1e6 2.5E-3 0xFF 1_000u64 3f64 7.")
            .tokens
            .into_iter()
            .map(|t| t.tok)
            .collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Int,
                Tok::Float,
                Tok::Float,
                Tok::Float,
                Tok::Int,
                Tok::Int,
                Tok::Float,
                Tok::Float
            ]
        );
    }

    #[test]
    fn ranges_are_not_floats() {
        let kinds: Vec<Tok> = lex("1..2").tokens.into_iter().map(|t| t.tok).collect();
        assert_eq!(kinds, vec![Tok::Int, Tok::Op(".."), Tok::Int]);
    }

    #[test]
    fn operators_longest_match() {
        let kinds: Vec<Tok> = lex("a == b != c <= d :: e")
            .tokens
            .into_iter()
            .filter(|t| matches!(t.tok, Tok::Op(_)))
            .map(|t| t.tok)
            .collect();
        assert_eq!(
            kinds,
            vec![Tok::Op("=="), Tok::Op("!="), Tok::Op("<="), Tok::Op("::")]
        );
    }

    #[test]
    fn inline_allow_is_parsed_with_line() {
        let src = "let a = 1;\n// simlint: allow(float-eq, wall-clock) reason\nlet b = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rule, "float-eq");
        assert_eq!(lexed.allows[0].line, 2);
        assert_eq!(lexed.allows[1].rule, "wall-clock");
    }

    #[test]
    fn string_literals_carry_their_text() {
        let strs: Vec<String> = lex(r##"let a = "plain"; let b = r#"raw "txt""#;"##)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Str(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["plain".to_owned(), "raw \"txt\"".to_owned()]);
    }

    #[test]
    fn token_lines_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
