//! CLI for the in-repo lint pass. See the crate docs and DESIGN.md §10.
//!
//! ```text
//! simlint --workspace             # lint the whole tree (CI entry point)
//! simlint path/to/file.rs ...     # lint specific files
//! simlint --json [...]            # machine-readable, byte-deterministic
//! simlint --github [...]          # GitHub annotation lines for CI
//! simlint --list-rules            # print every rule one-liner
//! simlint --explain <rule>        # print a rule's full rationale
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simlint::walker::{find_workspace_root, rel_to_string};
use simlint::{explain, lint_paths, lint_workspace, load_allowlist, to_json, RULES};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(violations) => {
            eprintln!("simlint: {violations} violation(s)");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("simlint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<usize, String> {
    let mut workspace = false;
    let mut format = Format::Text;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => format = Format::Json,
            "--github" => format = Format::Github,
            "--list-rules" => {
                for (name, description) in RULES {
                    println!("{name:<22} {description}");
                }
                return Ok(0);
            }
            "--explain" => {
                let rule = args
                    .next()
                    .ok_or_else(|| "--explain needs a rule name (see --list-rules)".to_owned())?;
                let text = explain(&rule)
                    .ok_or_else(|| format!("unknown rule `{rule}` (see --list-rules)"))?;
                println!("{rule}\n");
                println!("{text}");
                return Ok(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: simlint [--workspace] [--json|--github] [--list-rules]\n\
                     \x20              [--explain RULE] [FILE.rs ...]\n\
                     Lints the Corelite workspace for core-statelessness and determinism\n\
                     invariants. With no arguments, behaves as --workspace. Violations\n\
                     print as `file:line: rule — message` (or JSON / GitHub annotations);\n\
                     exit code 1 on any violation, 2 on usage or config errors.\n\
                     Suppress with `// simlint: allow(<rule>)` or simlint.toml."
                );
                return Ok(0);
            }
            _ if arg.starts_with('-') => {
                return Err(format!("unknown flag `{arg}` (try --help)"));
            }
            _ => files.push(arg),
        }
    }

    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = find_workspace_root(&cwd)?;
    let allow = load_allowlist(&root)?;

    let violations = if workspace || files.is_empty() {
        lint_workspace(&root, &allow)?
    } else {
        let rels: Vec<String> = files
            .iter()
            .map(|f| to_workspace_rel(&root, f))
            .collect::<Result<_, _>>()?;
        lint_paths(&root, &rels, &allow)?
    };
    match format {
        Format::Text => {
            for v in &violations {
                println!("{v}");
            }
        }
        Format::Json => println!("{}", to_json(&violations)),
        Format::Github => {
            // GitHub Actions annotation commands: one `::error` line per
            // violation, surfaced inline on the PR diff.
            for v in &violations {
                println!(
                    "::error file={},line={},title=simlint {}::{}",
                    v.file,
                    v.line,
                    v.rule,
                    v.message.replace('\n', " ")
                );
            }
        }
    }
    Ok(violations.len())
}

/// Maps a CLI path (absolute or cwd-relative) to a workspace-relative
/// path so rule scoping and allowlists apply regardless of invocation
/// directory.
fn to_workspace_rel(root: &Path, file: &str) -> Result<String, String> {
    let path = PathBuf::from(file);
    let abs = if path.is_absolute() {
        path
    } else {
        std::env::current_dir()
            .map_err(|e| format!("cannot read cwd: {e}"))?
            .join(path)
    };
    let abs = abs
        .canonicalize()
        .map_err(|e| format!("cannot resolve {file}: {e}"))?;
    let rel = abs
        .strip_prefix(root)
        .map_err(|_| format!("{file} is outside the workspace at {}", root.display()))?;
    Ok(rel_to_string(rel))
}
