//! CLI for the in-repo lint pass. See the crate docs and DESIGN.md §10.
//!
//! ```text
//! simlint --workspace             # lint the whole tree (CI entry point)
//! simlint path/to/file.rs ...     # lint specific files
//! simlint --list-rules            # print every rule and its rationale
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simlint::walker::{find_workspace_root, rel_to_string};
use simlint::{lint_file, lint_workspace, load_allowlist, RULES};

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(violations) => {
            eprintln!("simlint: {violations} violation(s)");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("simlint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<usize, String> {
    let mut workspace = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--list-rules" => {
                for (name, description) in RULES {
                    println!("{name:<18} {description}");
                }
                return Ok(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: simlint [--workspace] [--list-rules] [FILE.rs ...]\n\
                     Lints the Corelite workspace for core-statelessness and determinism\n\
                     invariants. With no arguments, behaves as --workspace. Violations\n\
                     print as `file:line: rule — message`; exit code 1 on any violation.\n\
                     Suppress with `// simlint: allow(<rule>)` or simlint.toml."
                );
                return Ok(0);
            }
            _ if arg.starts_with('-') => {
                return Err(format!("unknown flag `{arg}` (try --help)"));
            }
            _ => files.push(arg),
        }
    }

    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = find_workspace_root(&cwd)?;
    let allow = load_allowlist(&root)?;

    let violations = if workspace || files.is_empty() {
        lint_workspace(&root, &allow)?
    } else {
        let mut all = Vec::new();
        for file in &files {
            let rel = to_workspace_rel(&root, file)?;
            all.extend(lint_file(&root, &rel, &allow)?);
        }
        all.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        all
    };
    for v in &violations {
        println!("{v}");
    }
    Ok(violations.len())
}

/// Maps a CLI path (absolute or cwd-relative) to a workspace-relative
/// path so rule scoping and allowlists apply regardless of invocation
/// directory.
fn to_workspace_rel(root: &Path, file: &str) -> Result<String, String> {
    let path = PathBuf::from(file);
    let abs = if path.is_absolute() {
        path
    } else {
        std::env::current_dir()
            .map_err(|e| format!("cannot read cwd: {e}"))?
            .join(path)
    };
    let abs = abs
        .canonicalize()
        .map_err(|e| format!("cannot resolve {file}: {e}"))?;
    let rel = abs
        .strip_prefix(root)
        .map_err(|_| format!("{file} is outside the workspace at {}", root.display()))?;
    Ok(rel_to_string(rel))
}
