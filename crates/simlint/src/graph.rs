//! Stage 3 of the lint pipeline: the workspace call graph.
//!
//! Nodes are the [`FnDef`]s parsed from every (non-fixture) file; edges
//! come from name-based resolution of the call sites inside each body.
//! Resolution is *dependency-scoped*: a call in crate `C` may only bind
//! to definitions in `C` or in crates `C` (transitively) depends on, so
//! a name collision with an analysis-side crate (`bench`, `scenarios`)
//! can never fabricate a replay-path edge into it.
//!
//! Resolution order (first non-empty tier wins; every candidate in the
//! tier gets an edge, keeping the graph an over-approximation):
//!
//! * `.name(…)` method calls → every method named `name` in scope
//!   (receiver types are unknown without type inference);
//! * `Qual::name(…)` → methods of a known type `Qual`, else free
//!   functions of the crate a `use` alias maps `Qual` to, else any
//!   in-scope fn named `name`;
//! * `name(…)` free calls → same file, then `use`-imported path, then
//!   same crate, then dependency crates.
//!
//! Soundness limits (DESIGN.md §15): trait-object dispatch is not
//! resolved through the call site — the taint pass instead treats every
//! `RouterLogic`/`Discipline` impl method as a replay root — and macro
//! bodies are invisible.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::parser::{FileSymbols, FnDef};

/// The workspace crate-dependency relation, by underscored crate name
/// (`sim_core`, not `sim-core`), closed under transitivity.
#[derive(Debug, Default, Clone)]
pub struct CrateDeps {
    direct: BTreeMap<String, BTreeSet<String>>,
}

impl CrateDeps {
    /// Records `krate` with its direct dependencies (underscored names).
    pub fn insert(&mut self, krate: &str, deps: &[&str]) {
        let entry = self.direct.entry(krate.to_owned()).or_default();
        for d in deps {
            entry.insert((*d).to_owned());
        }
    }

    /// Reads `crates/*/Cargo.toml` under `root`, collecting each
    /// member's `[dependencies]`/`[dev-dependencies]` on other workspace
    /// members. The TOML subset read here is one line per dependency
    /// (`name = { workspace = true }` or `name = { path = "…" }`),
    /// which is all this dependency-free workspace uses.
    pub fn from_workspace(root: &Path) -> Result<Self, String> {
        let mut out = CrateDeps::default();
        let crates_dir = root.join("crates");
        let entries = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read crates/ entry: {e}"))?;
            if entry.path().join("Cargo.toml").exists() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        let member: BTreeSet<String> = names.iter().map(|n| n.replace('-', "_")).collect();
        for name in &names {
            let manifest = crates_dir.join(name).join("Cargo.toml");
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            let mut in_deps = false;
            let mut deps = Vec::new();
            for line in text.lines() {
                let line = line.trim();
                if let Some(section) = line.strip_prefix('[') {
                    in_deps = matches!(
                        section.trim_end_matches(']'),
                        "dependencies" | "dev-dependencies"
                    );
                    continue;
                }
                if !in_deps {
                    continue;
                }
                if let Some((key, _)) = line.split_once('=') {
                    let dep = key.trim().replace('-', "_");
                    if member.contains(&dep) {
                        deps.push(dep);
                    }
                }
            }
            let dep_refs: Vec<&str> = deps.iter().map(String::as_str).collect();
            out.insert(&name.replace('-', "_"), &dep_refs);
        }
        Ok(out)
    }

    /// True when code in `from` may call a definition in `to`: same
    /// crate, or `to` is in `from`'s transitive dependency closure. The
    /// pseudo-crate [`ROOT_FILES_CRATE`] (root `tests/`, `examples/`)
    /// sees everything.
    pub fn in_scope(&self, from: &str, to: &str) -> bool {
        if from == to || from == ROOT_FILES_CRATE {
            return true;
        }
        // Iterative closure walk (the workspace DAG is tiny).
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(k) = stack.pop() {
            if let Some(deps) = self.direct.get(k) {
                for d in deps {
                    if d == to {
                        return true;
                    }
                    if seen.insert(d.as_str()) {
                        stack.push(d);
                    }
                }
            }
        }
        false
    }
}

/// Crate name used for files outside `crates/` (workspace-level tests
/// and examples), which depend on every member.
pub const ROOT_FILES_CRATE: &str = "__workspace__";

/// Maps a workspace-relative path to its underscored crate name.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.replace('-', "_");
        }
    }
    ROOT_FILES_CRATE.to_owned()
}

/// One function in the workspace call graph.
#[derive(Debug)]
pub struct FnNode {
    pub file: String,
    pub krate: String,
    pub def: FnDef,
}

/// The workspace call graph: nodes in deterministic (file, token) order
/// and sorted adjacency lists, so traversal order — and therefore every
/// diagnostic derived from it — is stable across runs.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over `files` (workspace-relative path → parsed
    /// symbols; must be sorted by path for deterministic node ids).
    pub fn build(files: &[(String, FileSymbols)], deps: &CrateDeps) -> CallGraph {
        let mut g = CallGraph::default();
        // Node table.
        let mut uses_by_file: BTreeMap<&str, &[(String, Vec<String>)]> = BTreeMap::new();
        for (rel, syms) in files {
            uses_by_file.insert(rel, &syms.uses);
            for def in &syms.fns {
                g.nodes.push(FnNode {
                    file: rel.clone(),
                    krate: crate_of(rel),
                    def: def.clone(),
                });
            }
        }
        // Indices.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_and_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_by_file: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_by_crate: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, node) in g.nodes.iter().enumerate() {
            let name = node.def.name.as_str();
            by_name.entry(name).or_default().push(id);
            match &node.def.impl_type {
                Some(ty) => {
                    methods_by_name.entry(name).or_default().push(id);
                    by_type_and_name
                        .entry((ty.as_str(), name))
                        .or_default()
                        .push(id);
                }
                None => {
                    free_by_file
                        .entry((node.file.as_str(), name))
                        .or_default()
                        .push(id);
                    free_by_crate
                        .entry((node.krate.as_str(), name))
                        .or_default()
                        .push(id);
                }
            }
        }
        let scoped = |caller: &FnNode, ids: &[usize], nodes: &[FnNode]| -> Vec<usize> {
            ids.iter()
                .copied()
                .filter(|&id| deps.in_scope(&caller.krate, &nodes[id].krate))
                .collect()
        };
        // Edges.
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
        for (id, node) in g.nodes.iter().enumerate() {
            let uses = uses_by_file.get(node.file.as_str()).copied().unwrap_or(&[]);
            let use_path = |alias: &str| -> Option<&Vec<String>> {
                uses.iter().rev().find(|(n, _)| n == alias).map(|(_, p)| p)
            };
            for call in &node.def.calls {
                let callee = call.path.last().expect("call path is non-empty").as_str();
                let cands: Vec<usize> = if call.method {
                    methods_by_name
                        .get(callee)
                        .map(|ids| scoped(node, ids, &g.nodes))
                        .unwrap_or_default()
                } else if call.path.len() >= 2 {
                    let qual = call.path[call.path.len() - 2].as_str();
                    let self_qual = if qual == "Self" {
                        node.def.impl_type.as_deref()
                    } else {
                        Some(qual)
                    };
                    let typed = self_qual
                        .and_then(|q| by_type_and_name.get(&(q, callee)))
                        .map(|ids| scoped(node, ids, &g.nodes))
                        .unwrap_or_default();
                    if !typed.is_empty() {
                        typed
                    } else {
                        // `module::helper(…)` or `crate_name::…::f(…)`:
                        // bind to the named crate when the leading
                        // segment (or its `use` alias) names one, else
                        // fall back to any in-scope fn with that name.
                        let lead = use_path(call.path[0].as_str())
                            .and_then(|p| p.first().cloned())
                            .unwrap_or_else(|| call.path[0].clone());
                        let crate_hit = free_by_crate
                            .get(&(lead.as_str(), callee))
                            .map(|ids| scoped(node, ids, &g.nodes))
                            .unwrap_or_default();
                        if !crate_hit.is_empty() {
                            crate_hit
                        } else if call.path[0] == "crate" || call.path[0] == "self" {
                            free_by_crate
                                .get(&(node.krate.as_str(), callee))
                                .cloned()
                                .unwrap_or_default()
                        } else {
                            by_name
                                .get(callee)
                                .map(|ids| scoped(node, ids, &g.nodes))
                                .unwrap_or_default()
                        }
                    }
                } else {
                    // Free call: same file shadows same crate shadows
                    // `use`-imported shadows dependency crates.
                    let same_file = free_by_file
                        .get(&(node.file.as_str(), callee))
                        .cloned()
                        .unwrap_or_default();
                    if !same_file.is_empty() {
                        same_file
                    } else {
                        let imported = use_path(callee)
                            .and_then(|p| p.first())
                            .and_then(|lead| free_by_crate.get(&(lead.as_str(), callee)))
                            .map(|ids| scoped(node, ids, &g.nodes))
                            .unwrap_or_default();
                        if !imported.is_empty() {
                            imported
                        } else {
                            let same_crate = free_by_crate
                                .get(&(node.krate.as_str(), callee))
                                .cloned()
                                .unwrap_or_default();
                            if !same_crate.is_empty() {
                                same_crate
                            } else {
                                by_name
                                    .get(callee)
                                    .map(|ids| {
                                        ids.iter()
                                            .copied()
                                            .filter(|&c| {
                                                g.nodes[c].def.impl_type.is_none()
                                                    && deps.in_scope(&node.krate, &g.nodes[c].krate)
                                            })
                                            .collect::<Vec<_>>()
                                    })
                                    .unwrap_or_default()
                            }
                        }
                    }
                };
                for c in cands {
                    edges[id].push(c);
                }
            }
        }
        for adj in &mut edges {
            adj.sort_unstable();
            adj.dedup();
        }
        g.edges = edges;
        g
    }

    /// Breadth-first reachability from `roots` (sorted, deduped by the
    /// caller or not — handled here). Returns, for each node, `None`
    /// (unreachable) or `Some(parent)` — a root's parent is itself —
    /// chosen deterministically (BFS layer order, lowest id first).
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut sorted_roots: Vec<usize> = roots.to_vec();
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        for r in sorted_roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if parent[m].is_none() {
                    parent[m] = Some(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// Reconstructs the root→node call chain from a `reachable_from`
    /// parent table, as node indices starting at the root.
    pub fn path_to(&self, parent: &[Option<usize>], node: usize) -> Vec<usize> {
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// The node whose body contains `line` in `file` (innermost wins),
    /// used to map a lexical sink site to its enclosing function.
    pub fn enclosing_fn(&self, file: &str, line: u32) -> Option<usize> {
        let mut best: Option<(u32, usize)> = None; // (span, id)
        for (id, node) in self.nodes.iter().enumerate() {
            if node.file != file {
                continue;
            }
            let (a, b) = node.def.body;
            if (a..=b).contains(&line) && a != 0 {
                let span = b - a;
                if best.is_none_or(|(s, _)| span <= s) {
                    best = Some((span, id));
                }
            }
        }
        best.map(|(_, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn files(srcs: &[(&str, &str)]) -> Vec<(String, FileSymbols)> {
        let mut v: Vec<(String, FileSymbols)> = srcs
            .iter()
            .map(|(rel, src)| ((*rel).to_owned(), parse(&lex(src))))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    fn deps() -> CrateDeps {
        let mut d = CrateDeps::default();
        d.insert("sim_core", &[]);
        d.insert("netsim", &["sim_core"]);
        d.insert("corelite", &["sim_core", "netsim"]);
        d.insert("scenarios", &["sim_core", "netsim", "corelite"]);
        d.insert("bench", &["sim_core", "netsim", "scenarios"]);
        d
    }

    fn node(g: &CallGraph, file_frag: &str, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.file.contains(file_frag) && n.def.name == name)
            .unwrap_or_else(|| panic!("no node {file_frag}::{name}"))
    }

    #[test]
    fn same_file_free_fn_shadows_cross_crate_name() {
        let g = CallGraph::build(
            &files(&[
                (
                    "crates/netsim/src/a.rs",
                    "fn caller() { helper(); }\nfn helper() {}",
                ),
                ("crates/sim-core/src/b.rs", "fn helper() {}"),
            ]),
            &deps(),
        );
        let caller = node(&g, "netsim", "caller");
        let local = node(&g, "netsim", "helper");
        let foreign = node(&g, "sim-core", "helper");
        assert_eq!(g.edges[caller], vec![local], "same-file def shadows");
        assert!(!g.edges[caller].contains(&foreign));
    }

    #[test]
    fn cross_crate_call_binds_through_use_path() {
        let g = CallGraph::build(
            &files(&[
                (
                    "crates/netsim/src/a.rs",
                    "use sim_core::time::helper;\nfn caller() { helper(); }",
                ),
                ("crates/sim-core/src/time.rs", "pub fn helper() {}"),
            ]),
            &deps(),
        );
        let caller = node(&g, "netsim", "caller");
        let target = node(&g, "sim-core", "helper");
        assert_eq!(g.edges[caller], vec![target]);
    }

    #[test]
    fn qualified_path_call_binds_to_named_crate() {
        let g = CallGraph::build(
            &files(&[
                (
                    "crates/netsim/src/a.rs",
                    "fn caller() { sim_core::time::helper(); }",
                ),
                ("crates/sim-core/src/time.rs", "pub fn helper() {}"),
            ]),
            &deps(),
        );
        let caller = node(&g, "netsim", "caller");
        let target = node(&g, "sim-core", "helper");
        assert_eq!(g.edges[caller], vec![target]);
    }

    #[test]
    fn dependency_scoping_blocks_reverse_edges() {
        // sim-core does not depend on bench: an identical fn name in
        // bench must not become a callee of sim-core code.
        let g = CallGraph::build(
            &files(&[
                ("crates/sim-core/src/a.rs", "fn caller() { measure(); }"),
                ("crates/bench/src/lib.rs", "pub fn measure() {}"),
            ]),
            &deps(),
        );
        let caller = node(&g, "sim-core", "caller");
        assert!(g.edges[caller].is_empty(), "{:?}", g.edges[caller]);
    }

    #[test]
    fn method_calls_bind_to_methods_not_free_fns() {
        let g = CallGraph::build(
            &files(&[(
                "crates/netsim/src/a.rs",
                "struct S;\nimpl S { fn poll(&self) {} }\nfn poll() {}\nfn caller(s: &S) { s.poll(); }",
            )]),
            &deps(),
        );
        let caller = node(&g, "netsim", "caller");
        let method = g
            .nodes
            .iter()
            .position(|n| n.def.name == "poll" && n.def.impl_type.is_some())
            .expect("method");
        assert_eq!(g.edges[caller], vec![method]);
    }

    #[test]
    fn typed_path_call_binds_to_impl() {
        let g = CallGraph::build(
            &files(&[(
                "crates/netsim/src/a.rs",
                "struct Wheel;\nimpl Wheel { fn push(&mut self) { Self::rotate(); }\n\
                 fn rotate() {} }\nfn caller() { Wheel::push_all(); }\nimpl Wheel { fn push_all() {} }",
            )]),
            &deps(),
        );
        let push = node(&g, "netsim", "push");
        let rotate = node(&g, "netsim", "rotate");
        assert_eq!(g.edges[push], vec![rotate], "Self:: resolves via impl");
        let caller = node(&g, "netsim", "caller");
        let push_all = node(&g, "netsim", "push_all");
        assert_eq!(g.edges[caller], vec![push_all]);
    }

    #[test]
    fn reachability_and_paths_are_transitive_and_deterministic() {
        let g = CallGraph::build(
            &files(&[(
                "crates/netsim/src/a.rs",
                "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}",
            )]),
            &deps(),
        );
        let root = node(&g, "a.rs", "root");
        let leaf = node(&g, "a.rs", "leaf");
        let island = node(&g, "a.rs", "island");
        let parent = g.reachable_from(&[root]);
        assert!(parent[leaf].is_some(), "leaf is two calls from the root");
        assert!(parent[island].is_none(), "island is unreachable");
        let chain: Vec<&str> = g
            .path_to(&parent, leaf)
            .into_iter()
            .map(|id| g.nodes[id].def.name.as_str())
            .collect();
        assert_eq!(chain, vec!["root", "mid", "leaf"]);
    }

    #[test]
    fn enclosing_fn_picks_innermost_body() {
        let g = CallGraph::build(
            &files(&[(
                "crates/netsim/src/a.rs",
                "fn outer() {\n  fn inner() {\n    x();\n  }\n}",
            )]),
            &deps(),
        );
        let inner = node(&g, "a.rs", "inner");
        assert_eq!(g.enclosing_fn("crates/netsim/src/a.rs", 3), Some(inner));
    }

    #[test]
    fn workspace_deps_parse_and_close_transitively() {
        let root = crate::walker::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let deps = CrateDeps::from_workspace(&root).expect("deps parse");
        assert!(deps.in_scope("netsim", "sim_core"));
        assert!(deps.in_scope("corelite", "sim_core"), "transitive");
        assert!(!deps.in_scope("sim_core", "netsim"), "no reverse edges");
        assert!(!deps.in_scope("corelite", "bench"));
        assert!(deps.in_scope(ROOT_FILES_CRATE, "scenarios"));
    }

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/sim-core/src/rng.rs"), "sim_core");
        assert_eq!(crate_of("tests/determinism.rs"), ROOT_FILES_CRATE);
        assert_eq!(crate_of("examples/quickstart.rs"), ROOT_FILES_CRATE);
    }
}
