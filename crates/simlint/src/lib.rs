//! `simlint` — in-repo static analysis enforcing the two properties the
//! whole reproduction stands on:
//!
//! * **core-statelessness** — Corelite's headline claim (paper §2–3) is
//!   that core routers keep no per-flow state; the `core-state` rule
//!   machine-checks that no core-router module declares a
//!   `FlowId`-keyed or per-flow-growing collection.
//! * **deterministic replay** — serial and parallel experiment sweeps
//!   are `cmp`-compared byte-for-byte in CI; the `hash-collections`,
//!   `wall-clock`, `thread-spawn` and `rand-import` rules keep the
//!   nondeterminism sources that would silently break this out of the
//!   simulation crates.
//!
//! Three hygiene rules ride along: `float-eq` (exact `==`/`!=` on
//! floats), `panic-path` (bare `unwrap()` in the netsim event loop) and
//! `hot-alloc` (fresh heap allocations in per-event hot functions,
//! guarding the engine's zero-alloc dispatch contract).
//!
//! Violations print as `file:line: rule — message` and any violation
//! makes the process exit nonzero. Suppress per-site with an inline
//! `// simlint: allow(<rule>)` comment (covers that line and the next)
//! or per-path in the checked-in `simlint.toml`. See DESIGN.md §10.
//!
//! The crate is dependency-free by necessity: crates.io is unreachable
//! in the reproduction container, so the lexer, walker and TOML-subset
//! parser are hand-rolled like sim-core's `DetRng`.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod walker;

use std::path::Path;

pub use config::Allowlist;
pub use rules::{classify, scan_source, FileClass, Violation, RULES};

/// Lints one file on disk. `rel` decides rule scoping and must be the
/// workspace-relative path (`crates/netsim/src/network.rs`).
pub fn lint_file(root: &Path, rel: &str, allow: &Allowlist) -> Result<Vec<Violation>, String> {
    let src =
        std::fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
    Ok(scan_source(rel, &src, classify(rel), allow))
}

/// Lints every `.rs` file in the workspace tree at `root`, returning
/// violations sorted by file and line.
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> Result<Vec<Violation>, String> {
    let mut all = Vec::new();
    for rel in walker::collect_rs_files(root)? {
        all.extend(lint_file(root, &rel, allow)?);
    }
    all.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(all)
}

/// Loads `simlint.toml` from `root`; a missing file is an empty
/// allowlist, a malformed one is an error.
pub fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    match std::fs::read_to_string(root.join("simlint.toml")) {
        Ok(text) => Allowlist::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
        Err(e) => Err(format!("cannot read simlint.toml: {e}")),
    }
}
