//! `simlint` — in-repo static analysis enforcing the two properties the
//! whole reproduction stands on:
//!
//! * **core-statelessness** — Corelite's headline claim (paper §2–3) is
//!   that core routers keep no per-flow state; the `core-state` rule
//!   machine-checks that no core-router module declares a
//!   `FlowId`-keyed or per-flow-growing collection.
//! * **deterministic replay** — serial and parallel experiment sweeps
//!   are `cmp`-compared byte-for-byte in CI; the `hash-collections`,
//!   `wall-clock`, `thread-spawn` and `rand-import` rules keep the
//!   nondeterminism sources that would silently break this out of the
//!   simulation crates, and their `taint-*` forms make them transitive
//!   over the workspace call graph (DESIGN.md §15).
//!
//! The analysis runs as a three-stage pipeline:
//!
//! 1. **lex** ([`lexer`]) — tokens plus inline-allow comments; the
//!    per-file token rules ([`rules`]) run directly on this stream;
//! 2. **parse** ([`parser`]) — a lightweight item parser recovering
//!    `use` declarations, `impl`/`trait` context, brace-matched `fn`
//!    bodies with their call expressions, and `DetRng` stream labels;
//! 3. **graph** ([`graph`] + [`taint`]) — a workspace call graph with
//!    dependency-scoped name resolution, walked from the replay-path
//!    roots for the taint rules and the RNG stream-hygiene rule.
//!
//! Violations print as `file:line: rule — message` and any violation
//! makes the process exit nonzero. Suppress per-site with an inline
//! `// simlint: allow(<rule>)` comment (covers that line and the next)
//! or per-path in the checked-in `simlint.toml`. See DESIGN.md §10.
//!
//! The crate is dependency-free by necessity: crates.io is unreachable
//! in the reproduction container, so the lexer, parser, walker and
//! TOML-subset reader are hand-rolled like sim-core's `DetRng`.

pub mod config;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
mod taint;
pub mod walker;

use std::path::Path;

pub use config::Allowlist;
pub use rules::{classify, explain, scan_source, FileClass, Violation, RULES};

/// Lints a batch of files as one unit: the per-file token rules on each
/// file, then the workspace rules (taint reachability, RNG stream
/// hygiene) over the whole batch. `rels` are workspace-relative paths.
///
/// Passing a single file still runs the workspace rules over that
/// file's own call graph — which is how the taint fixtures work — but
/// cross-file reachability obviously needs the files that carry it.
pub fn lint_paths(
    root: &Path,
    rels: &[String],
    allow: &Allowlist,
) -> Result<Vec<Violation>, String> {
    let deps = graph::CrateDeps::from_workspace(root)?;
    let mut analyzed = Vec::new();
    let mut all = Vec::new();
    for rel in rels {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        let class = classify(rel);
        let lexed = lexer::lex(&src);
        let raw = rules::scan_tokens(rel, &lexed, class);
        all.extend(rules::suppress(raw.clone(), &lexed, allow));
        let symbols = parser::parse(&lexed);
        analyzed.push(taint::AnalyzedFile {
            rel: rel.clone(),
            class,
            lexed,
            symbols,
            raw,
        });
    }
    all.extend(taint::workspace_pass(&analyzed, &deps, allow));
    all.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    all.dedup();
    Ok(all)
}

/// Lints one file on disk. `rel` decides rule scoping and must be the
/// workspace-relative path (`crates/netsim/src/network.rs`).
pub fn lint_file(root: &Path, rel: &str, allow: &Allowlist) -> Result<Vec<Violation>, String> {
    lint_paths(root, std::slice::from_ref(&rel.to_owned()), allow)
}

/// Lints every `.rs` file in the workspace tree at `root`, returning
/// violations sorted by file, line and rule. Also validates that every
/// `simlint.toml` entry still matches a workspace file — a stale allow
/// is dead configuration that would silently cover future code.
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> Result<Vec<Violation>, String> {
    let rels = walker::collect_rs_files(root)?;
    validate_allowlist(allow, &rels)?;
    lint_paths(root, &rels, allow)
}

/// Errors when an allowlist path prefix matches none of `rels`: the
/// file was moved or deleted and the entry now silently allowlists
/// whatever lands at that path next.
pub fn validate_allowlist(allow: &Allowlist, rels: &[String]) -> Result<(), String> {
    let stale: Vec<String> = allow
        .entries()
        .filter(|(_, prefix)| {
            !rels
                .iter()
                .any(|rel| rel == prefix || rel.starts_with(&format!("{prefix}/")))
        })
        .map(|(rule, prefix)| format!("`{rule} = \"{prefix}\"`"))
        .collect();
    if stale.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "simlint.toml: {} match(es) no workspace file — remove the stale entr{} or fix the path",
            stale.join(", "),
            if stale.len() == 1 { "y" } else { "ies" }
        ))
    }
}

/// Loads `simlint.toml` from `root`; a missing file is an empty
/// allowlist, a malformed one is an error.
pub fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    match std::fs::read_to_string(root.join("simlint.toml")) {
        Ok(text) => Allowlist::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
        Err(e) => Err(format!("cannot read simlint.toml: {e}")),
    }
}

/// Serializes violations as a JSON array, byte-deterministic for a
/// given input list (which `lint_*` already return fully sorted).
pub fn to_json(violations: &[Violation]) -> String {
    let mut out = String::from("[\n");
    for (i, v) in violations.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
            json_string(&v.file),
            v.line,
            json_string(v.rule),
            json_string(&v.message)
        ));
        out.push_str(if i + 1 < violations.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push(']');
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_allowlist_flags_stale_prefixes() {
        let mut allow = Allowlist::default();
        allow.insert("wall-clock", "crates/bench");
        allow.insert("float-eq", "crates/gone/src/lost.rs");
        let rels = vec!["crates/bench/src/lib.rs".to_owned()];
        let err = validate_allowlist(&allow, &rels).expect_err("stale entry must error");
        assert!(err.contains("crates/gone/src/lost.rs"), "{err}");
        assert!(!err.contains("crates/bench`"), "{err}");
        allow = Allowlist::default();
        allow.insert("wall-clock", "crates/bench");
        validate_allowlist(&allow, &rels).expect("live prefix is fine");
    }

    #[test]
    fn json_escapes_and_shapes() {
        let v = vec![Violation {
            file: "a.rs".into(),
            line: 3,
            rule: "wall-clock",
            message: "say \"hi\"\nback\\slash".into(),
        }];
        let json = to_json(&v);
        assert_eq!(
            json,
            "[\n  {\"file\":\"a.rs\",\"line\":3,\"rule\":\"wall-clock\",\
             \"message\":\"say \\\"hi\\\"\\nback\\\\slash\"}\n]"
        );
        assert_eq!(to_json(&[]), "[\n]");
    }
}
