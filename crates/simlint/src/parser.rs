//! Stage 2 of the lint pipeline: a lightweight item parser on top of
//! the hand-rolled lexer.
//!
//! One linear pass over the token stream recovers just enough structure
//! for whole-workspace analysis (DESIGN.md §15):
//!
//! * `use` declarations (including groups and `as` aliases) → an
//!   alias-to-path map, so cross-crate calls can be attributed to the
//!   crate that defines them;
//! * `impl`/`trait` blocks → the self type and (for trait impls) the
//!   trait name attached to each method;
//! * brace-matched `fn` bodies → one [`FnDef`] per function with its
//!   line range and every call expression inside it;
//! * `DetRng::stream`/`substream` call sites → the label literal (or
//!   the fact that the label is not a literal), for `rng-stream-hygiene`.
//!
//! The parser is deliberately approximate — no types, no macro
//! expansion, nesting handled by brace depth — but it is *conservative
//! in the direction the taint rules need*: when attribution is
//! ambiguous every candidate is kept, so the call graph over-approximates
//! reachability rather than missing edges.

use crate::lexer::{Lexed, Tok, Token};

/// One call expression found inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Path segments of the callee: `["helper"]` for a free call,
    /// `["Foo", "new"]` for `Foo::new(…)`, `["poll"]` for `.poll(…)`.
    pub path: Vec<String>,
    /// True for a `.name(…)` method call (receiver type unknown).
    pub method: bool,
    /// 1-based source line of the callee name.
    pub line: u32,
}

/// One `fn` item: free function, inherent/trait-impl method or trait
/// default method.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// The `impl` self type (`impl Foo` / `impl Trait for Foo` → `Foo`)
    /// or, for a trait's default methods, the trait name.
    pub impl_type: Option<String>,
    /// For `impl Trait for Foo` methods and trait default methods, the
    /// trait name — how the taint pass finds `RouterLogic`/`Discipline`
    /// replay roots.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inclusive line range of the body (`(0, 0)` for bodiless trait
    /// method declarations).
    pub body: (u32, u32),
    /// Calls made directly in this body (innermost-fn attribution:
    /// a nested `fn` owns its own calls, closures belong to the
    /// enclosing `fn`).
    pub calls: Vec<Call>,
    /// True when the def sits inside a `#[cfg(test)]` range — test
    /// logic is excluded from the replay call graph.
    pub in_cfg_test: bool,
}

/// One `DetRng::stream`/`substream` call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RngLabel {
    /// The label literal, or `None` when the label argument is not a
    /// plain string literal (computed labels defeat stream auditing).
    pub label: Option<String>,
    /// `"stream"` or `"substream"`.
    pub kind: &'static str,
    pub line: u32,
    /// True inside `#[cfg(test)]` code, where reusing a label to prove
    /// stream identity is the point.
    pub in_cfg_test: bool,
}

/// Everything the parser recovers from one file.
#[derive(Debug, Default, Clone)]
pub struct FileSymbols {
    pub fns: Vec<FnDef>,
    /// `use` aliases: local name → full path segments.
    pub uses: Vec<(String, Vec<String>)>,
    pub rng_labels: Vec<RngLabel>,
}

/// Keywords that look like `ident (` call sites but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "let", "mut", "ref", "where", "unsafe", "async", "await", "dyn", "impl", "fn", "pub",
    "crate", "super", "self", "Self", "const", "static", "type", "struct", "enum", "union",
    "trait", "mod", "use", "extern", "box", "yield",
];

/// Line ranges covered by `#[cfg(test)]` items (typically `mod tests`),
/// found by brace-matching after the attribute. Shared with the
/// token-rule scanner in `rules.rs`.
pub fn cfg_test_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].tok == Tok::Op("#")
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Op("[")))
        {
            // Scan the attribute for `cfg` … `test` before its `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut saw_cfg = false;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < toks.len() && depth > 0 {
                match &toks[j].tok {
                    Tok::Op("[") => depth += 1,
                    Tok::Op("]") => depth -= 1,
                    Tok::Ident(s) if s == "cfg" => saw_cfg = true,
                    Tok::Ident(s) if s == "test" => saw_test = true,
                    // `#[cfg(not(test))]` marks *live* code.
                    Tok::Ident(s) if s == "not" => saw_not = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_cfg && saw_test && !saw_not {
                // Skip any further attributes, then brace-match the item.
                while toks.get(j).map(|t| &t.tok) == Some(&Tok::Op("#"))
                    && toks.get(j + 1).map(|t| &t.tok) == Some(&Tok::Op("["))
                {
                    let mut d = 1usize;
                    j += 2;
                    while j < toks.len() && d > 0 {
                        match &toks[j].tok {
                            Tok::Op("[") => d += 1,
                            Tok::Op("]") => d -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                }
                let start = toks.get(j).map_or(0, |t| t.line);
                // Find the item's opening brace (a `;` first means a
                // braceless item like `#[cfg(test)] use …;`).
                while j < toks.len() && toks[j].tok != Tok::Op("{") && toks[j].tok != Tok::Op(";") {
                    j += 1;
                }
                if toks.get(j).map(|t| &t.tok) == Some(&Tok::Op("{")) {
                    let mut d = 1usize;
                    j += 1;
                    while j < toks.len() && d > 0 {
                        match &toks[j].tok {
                            Tok::Op("{") => d += 1,
                            Tok::Op("}") => d -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                }
                let end = toks.get(j.saturating_sub(1)).map_or(u32::MAX, |t| t.line);
                ranges.push((start, end));
                i = j;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// True when `line` falls inside any of `ranges` (inclusive).
pub fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Parses one lexed file into its symbol table.
pub fn parse(lexed: &Lexed) -> FileSymbols {
    let toks = &lexed.tokens;
    let test_ranges = cfg_test_ranges(toks);
    let mut out = FileSymbols::default();

    // Context stacks, keyed by the brace depth at which they close.
    struct ImplCtx {
        close_depth: usize,
        self_type: Option<String>,
        trait_name: Option<String>,
    }
    struct OpenFn {
        fn_index: usize,
        close_depth: usize,
    }
    let mut depth = 0usize;
    let mut impls: Vec<ImplCtx> = Vec::new();
    let mut open_fns: Vec<OpenFn> = Vec::new();

    let ident = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let op = |i: usize, want: &str| matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Op(o)) if *o == want);

    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Op("{") => {
                depth += 1;
                i += 1;
            }
            Tok::Op("}") => {
                depth = depth.saturating_sub(1);
                while impls.last().is_some_and(|c| c.close_depth == depth) {
                    impls.pop();
                }
                while open_fns.last().is_some_and(|f| f.close_depth == depth) {
                    let f = open_fns.pop().expect("just checked non-empty");
                    out.fns[f.fn_index].body.1 = toks[i].line;
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "use" && open_fns.is_empty() => {
                i = parse_use(toks, i + 1, &mut out.uses);
            }
            Tok::Ident(kw) if (kw == "impl" || kw == "trait") && open_fns.is_empty() => {
                let is_trait = kw == "trait";
                // Collect header tokens up to the opening `{` (or a `;`
                // for e.g. `impl Trait for Type;` — never valid, but be
                // robust). `where` clauses are cut off; an `fn` keyword
                // means we ran into the next item (malformed header).
                let mut j = i + 1;
                let mut header: Vec<&str> = Vec::new();
                while j < toks.len() && !op(j, "{") && !op(j, ";") {
                    match &toks[j].tok {
                        Tok::Ident(s) if s == "where" => break,
                        Tok::Ident(s) => header.push(s.as_str()),
                        Tok::Op(o) => header.push(o),
                        _ => {}
                    }
                    j += 1;
                }
                while j < toks.len() && !op(j, "{") && !op(j, ";") {
                    j += 1;
                }
                let (self_type, trait_name) = if is_trait {
                    let name = header.first().map(|s| (*s).to_owned());
                    (name.clone(), name)
                } else {
                    impl_header_types(&header)
                };
                if op(j, "{") {
                    impls.push(ImplCtx {
                        close_depth: depth,
                        self_type,
                        trait_name,
                    });
                    depth += 1;
                }
                i = j + 1;
            }
            Tok::Ident(kw) if kw == "fn" => {
                let Some(name) = ident(i + 1) else {
                    i += 1;
                    continue;
                };
                let fn_line = toks[i].line;
                let (self_type, trait_name) = impls
                    .last()
                    .map(|c| (c.self_type.clone(), c.trait_name.clone()))
                    .unwrap_or((None, None));
                // Scan past the signature to the body's `{`; a `;` first
                // means a bodiless trait-method declaration.
                let mut j = i + 2;
                let mut angle = 0i32;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Op("{") if angle <= 0 => break,
                        Tok::Op(";") if angle <= 0 => break,
                        Tok::Op("<") => angle += 1,
                        Tok::Op(">") => angle -= 1,
                        Tok::Op("->") => angle = 0,
                        _ => {}
                    }
                    j += 1;
                }
                let def_index = out.fns.len();
                out.fns.push(FnDef {
                    name: name.to_owned(),
                    impl_type: self_type,
                    trait_name,
                    line: fn_line,
                    body: (0, 0),
                    calls: Vec::new(),
                    in_cfg_test: in_ranges(&test_ranges, fn_line),
                });
                if op(j, "{") {
                    out.fns[def_index].body = (toks[j].line, toks[j].line);
                    open_fns.push(OpenFn {
                        fn_index: def_index,
                        close_depth: depth,
                    });
                    depth += 1;
                }
                i = j + 1;
            }
            Tok::Ident(name) => {
                // DetRng::stream / DetRng::substream label collection —
                // everywhere, not only inside fns (consts count too).
                if (name == "stream" || name == "substream")
                    && i >= 2
                    && op(i - 1, "::")
                    && ident(i - 2) == Some("DetRng")
                    && op(i + 1, "(")
                {
                    let kind = if name == "stream" {
                        "stream"
                    } else {
                        "substream"
                    };
                    out.rng_labels.push(RngLabel {
                        label: second_arg_literal(toks, i + 1),
                        kind,
                        line: toks[i].line,
                        in_cfg_test: in_ranges(&test_ranges, toks[i].line),
                    });
                }
                // Call attribution: innermost open fn owns the call.
                if let Some(open) = open_fns.last() {
                    // A call looks like `name(`; macros (`name!(…)`) fail
                    // this test because the `!` sits between name and `(`.
                    if op(i + 1, "(") && !NON_CALL_KEYWORDS.contains(&name.as_str()) {
                        let method = i >= 1 && op(i - 1, ".");
                        let mut path = vec![name.clone()];
                        if !method {
                            // Walk back across `seg ::` pairs.
                            let mut k = i;
                            while k >= 2 && op(k - 1, "::") {
                                if let Some(seg) = ident(k - 2) {
                                    path.insert(0, seg.to_owned());
                                    k -= 2;
                                } else {
                                    break;
                                }
                            }
                        }
                        out.fns[open.fn_index].calls.push(Call {
                            path,
                            method,
                            line: toks[i].line,
                        });
                    }
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    // Close any fn left open by unbalanced braces.
    for f in open_fns {
        out.fns[f.fn_index].body.1 = u32::MAX;
    }
    out
}

/// Extracts `(self_type, trait_name)` from an `impl` header's idents and
/// ops (generics included, `where` clause already stripped):
/// `impl Foo` → `(Foo, None)`; `impl Trait for Foo` → `(Foo, Trait)`.
fn impl_header_types(header: &[&str]) -> (Option<String>, Option<String>) {
    // Find a top-level `for` that is not an HRTB `for<…>`.
    let mut angle = 0i32;
    let mut for_at = None;
    for (k, t) in header.iter().enumerate() {
        match *t {
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle <= 0 && header.get(k + 1) != Some(&"<") => {
                for_at = Some(k);
                break;
            }
            _ => {}
        }
    }
    let last_path_segment = |part: &[&str]| -> Option<String> {
        // The self type's name is the last ident before its generic
        // arguments: `corelite::edge::CoreliteEdge<T>` → `CoreliteEdge`.
        let mut best = None;
        let mut angle = 0i32;
        for t in part {
            match *t {
                "<" => angle += 1,
                ">" => angle -= 1,
                "&" | "(" | ")" | "[" | "]" => {}
                s if angle <= 0
                    && s.chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                    && !matches!(s, "dyn" | "mut" | "const") =>
                {
                    best = Some(s.to_owned());
                }
                _ => {}
            }
        }
        best
    };
    match for_at {
        Some(k) => {
            // `impl<…> Trait for Type`: the trait name is the *first*
            // plain ident of the trait part after any generic params.
            let trait_part = &header[..k];
            let type_part = &header[k + 1..];
            let trait_name = {
                let mut angle = 0i32;
                let mut found = None;
                for t in trait_part {
                    match *t {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        s if angle <= 0
                            && s.chars()
                                .next()
                                .is_some_and(|c| c.is_alphabetic() || c == '_') =>
                        {
                            // Skip generic-param idents: they only appear
                            // inside `<…>`, which angle-tracking excludes.
                            found = Some(s.to_owned());
                        }
                        _ => {}
                    }
                }
                found
            };
            (last_path_segment(type_part), trait_name)
        }
        None => (last_path_segment(header), None),
    }
}

/// Parses a `use` declaration starting after the `use` keyword; returns
/// the index just past the terminating `;`. Handles `a::b::C`,
/// `a::{B, c::D as E}`, nested groups and globs (ignored).
fn parse_use(toks: &[Token], mut i: usize, out: &mut Vec<(String, Vec<String>)>) -> usize {
    fn walk(
        toks: &[Token],
        mut i: usize,
        prefix: &mut Vec<String>,
        out: &mut Vec<(String, Vec<String>)>,
    ) -> usize {
        let start_len = prefix.len();
        loop {
            match toks.get(i).map(|t| &t.tok) {
                Some(Tok::Ident(s)) if s == "as" => {
                    // `path as Alias`: record under the alias, then leave
                    // the cursor on the `,`/`}`/`;` for the caller.
                    if let Some(Tok::Ident(alias)) = toks.get(i + 1).map(|t| &t.tok) {
                        out.push((alias.clone(), prefix.clone()));
                        prefix.truncate(start_len);
                        return i + 2;
                    }
                    i += 1;
                }
                Some(Tok::Ident(s)) => {
                    prefix.push(s.clone());
                    i += 1;
                }
                Some(Tok::Op("::")) => {
                    i += 1;
                }
                Some(Tok::Op("{")) => {
                    i += 1;
                    // Group: each element extends the current prefix.
                    loop {
                        match toks.get(i).map(|t| &t.tok) {
                            Some(Tok::Op("}")) => {
                                i += 1;
                                break;
                            }
                            Some(Tok::Op(",")) => {
                                i += 1;
                            }
                            None => break,
                            _ => {
                                let mut sub = prefix.clone();
                                i = walk(toks, i, &mut sub, out);
                            }
                        }
                    }
                    prefix.truncate(start_len);
                    return i;
                }
                Some(Tok::Op("*")) => {
                    // Glob import: nothing nameable to record.
                    prefix.truncate(start_len);
                    return i + 1;
                }
                Some(Tok::Op(",")) | Some(Tok::Op("}")) | Some(Tok::Op(";")) | None => {
                    // End of one path: the leaf ident is the local name.
                    if prefix.len() > start_len {
                        let leaf = prefix.last().expect("non-empty checked").clone();
                        out.push((leaf, prefix.clone()));
                    }
                    prefix.truncate(start_len);
                    return i;
                }
                _ => {
                    i += 1;
                }
            }
        }
    }
    let mut prefix = Vec::new();
    i = walk(toks, i, &mut prefix, out);
    while i < toks.len() && toks[i].tok != Tok::Op(";") {
        i += 1;
    }
    i + 1
}

/// If the call whose argument list opens at `open` (a `(` token) has a
/// plain string literal as its *second* top-level argument, returns its
/// text. `DetRng::stream(seed, "label")` → `Some("label")`.
fn second_arg_literal(toks: &[Token], open: usize) -> Option<String> {
    debug_assert!(matches!(toks[open].tok, Tok::Op("(")));
    let mut depth = 1usize;
    let mut commas = 0usize;
    let mut arg_tokens: Vec<&Tok> = Vec::new();
    let mut j = open + 1;
    while j < toks.len() && depth > 0 {
        match &toks[j].tok {
            Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
            Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
            Tok::Op(",") if depth == 1 => commas += 1,
            t if depth == 1 && commas == 1 => arg_tokens.push(t),
            _ => {}
        }
        j += 1;
    }
    match arg_tokens.as_slice() {
        [Tok::Str(s)] => Some((*s).clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileSymbols {
        parse(&lex(src))
    }

    #[test]
    fn free_fn_and_calls() {
        let s = parse_src("fn a() { b(); c::d(); x.e(); }\nfn b() {}");
        assert_eq!(s.fns.len(), 2);
        let a = &s.fns[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.calls.len(), 3);
        assert_eq!(a.calls[0].path, vec!["b"]);
        assert!(!a.calls[0].method);
        assert_eq!(a.calls[1].path, vec!["c", "d"]);
        assert_eq!(a.calls[2].path, vec!["e"]);
        assert!(a.calls[2].method);
    }

    #[test]
    fn impl_and_trait_context() {
        let s = parse_src(
            "impl Foo { fn m(&self) {} }\n\
             impl Bar for Foo { fn n(&self) { self.m(); } }\n\
             trait Baz { fn d(&self) { free(); } fn sig(&self); }",
        );
        let m = &s.fns[0];
        assert_eq!(
            (m.name.as_str(), m.impl_type.as_deref()),
            ("m", Some("Foo"))
        );
        assert_eq!(m.trait_name, None);
        let n = &s.fns[1];
        assert_eq!(n.impl_type.as_deref(), Some("Foo"));
        assert_eq!(n.trait_name.as_deref(), Some("Bar"));
        let d = &s.fns[2];
        assert_eq!(d.trait_name.as_deref(), Some("Baz"));
        assert_eq!(d.calls.len(), 1);
        let sig = &s.fns[3];
        assert_eq!(sig.body, (0, 0), "bodiless trait method has no body");
    }

    #[test]
    fn generic_impl_headers_resolve_self_type() {
        let s = parse_src(
            "impl<T: Clone> Wrapper<T> { fn g(&self) {} }\n\
             impl<E> RouterLogic for Slab<E> where E: Copy { fn h(&self) {} }",
        );
        assert_eq!(s.fns[0].impl_type.as_deref(), Some("Wrapper"));
        assert_eq!(s.fns[1].impl_type.as_deref(), Some("Slab"));
        assert_eq!(s.fns[1].trait_name.as_deref(), Some("RouterLogic"));
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let s = parse_src("fn outer() { inner_call(); fn nested() { deep(); } tail(); }");
        let outer = s.fns.iter().find(|f| f.name == "outer").expect("outer");
        let nested = s.fns.iter().find(|f| f.name == "nested").expect("nested");
        let outer_calls: Vec<_> = outer.calls.iter().map(|c| c.path[0].as_str()).collect();
        assert_eq!(outer_calls, vec!["inner_call", "tail"]);
        assert_eq!(nested.calls.len(), 1);
        assert_eq!(nested.calls[0].path, vec!["deep"]);
    }

    #[test]
    fn closures_belong_to_enclosing_fn() {
        let s = parse_src("fn f() { let g = |x| helper(x); g(1); }");
        let names: Vec<_> = s.fns[0].calls.iter().map(|c| c.path[0].as_str()).collect();
        assert!(names.contains(&"helper"), "{names:?}");
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let s = parse_src("fn f() { if (a) {} match (b) { _ => {} } println!(\"x\"); vec![1]; }");
        assert!(s.fns[0].calls.is_empty(), "{:?}", s.fns[0].calls);
    }

    #[test]
    fn use_decls_with_groups_and_aliases() {
        let s = parse_src(
            "use sim_core::rng::DetRng;\n\
             use netsim::{link::Link, logic as lg, slab::{DenseMap, ActiveSet}};\n\
             use std::collections::*;",
        );
        let find = |name: &str| {
            s.uses
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, p)| p.join("::"))
        };
        assert_eq!(find("DetRng").as_deref(), Some("sim_core::rng::DetRng"));
        assert_eq!(find("Link").as_deref(), Some("netsim::link::Link"));
        assert_eq!(find("lg").as_deref(), Some("netsim::logic"));
        assert_eq!(find("DenseMap").as_deref(), Some("netsim::slab::DenseMap"));
        assert_eq!(
            find("ActiveSet").as_deref(),
            Some("netsim::slab::ActiveSet")
        );
    }

    #[test]
    fn rng_labels_collected_with_literals_and_not() {
        let s = parse_src(
            "fn f(seed: u64, dynamic: &str) {\n\
             let a = DetRng::stream(seed, \"alpha\");\n\
             let b = DetRng::substream(seed ^ 1, \"beta\", 3);\n\
             let c = DetRng::stream(seed, dynamic);\n}",
        );
        assert_eq!(s.rng_labels.len(), 3);
        assert_eq!(s.rng_labels[0].label.as_deref(), Some("alpha"));
        assert_eq!(s.rng_labels[0].kind, "stream");
        assert_eq!(s.rng_labels[1].label.as_deref(), Some("beta"));
        assert_eq!(s.rng_labels[1].kind, "substream");
        assert_eq!(s.rng_labels[2].label, None, "computed label is non-literal");
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let s = parse_src("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { helper(); }\n}");
        assert!(!s.fns[0].in_cfg_test);
        let t = s.fns.iter().find(|f| f.name == "t").expect("test fn");
        assert!(t.in_cfg_test);
    }

    #[test]
    fn body_line_ranges_are_tracked() {
        let s = parse_src("fn a() {\n  x();\n  y();\n}\nfn b() { z(); }");
        assert_eq!(s.fns[0].body, (1, 4));
        assert_eq!(s.fns[1].body, (5, 5));
    }
}
