//! The lint rules and the token-stream scanner that applies them.
//!
//! Each rule is a named invariant of this repository (see DESIGN.md
//! §10); every rule can be suppressed per-site with an inline
//! `// simlint: allow(<rule>)` comment or per-path via `simlint.toml`.

use crate::config::Allowlist;
use crate::lexer::{lex, Lexed, Tok, Token};
use crate::parser::{cfg_test_ranges, in_ranges};

/// One rule violation, printed as `file:line: rule — message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} — {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Every rule simlint knows, with a one-line description (shown by
/// `simlint --list-rules` and validated against `simlint.toml` keys).
pub const RULES: &[(&str, &str)] = &[
    (
        "core-state",
        "core-router modules must not declare FlowId-keyed or per-flow-growing collections",
    ),
    (
        "hash-collections",
        "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet",
    ),
    (
        "wall-clock",
        "Instant::now()/SystemTime read wall-clock time and break deterministic replay",
    ),
    (
        "thread-spawn",
        "std::thread outside scenarios::exec/bench breaks deterministic event ordering",
    ),
    (
        "rand-import",
        "external RNG crates are forbidden; use sim_core::rng::DetRng streams",
    ),
    (
        "float-eq",
        "exact ==/!= on floats; use an epsilon or ordered comparison",
    ),
    (
        "panic-path",
        "bare unwrap() in the netsim event loop; expect() must name the violated invariant",
    ),
    (
        "hot-alloc",
        "heap allocation (vec!/Vec::new/Box::new/.to_vec) in per-event hot functions; reuse buffers",
    ),
    (
        "dense-state",
        "BTreeMap/HashMap keyed by FlowId/NodeId/LinkId in hot-path state modules; use netsim::slab::DenseMap",
    ),
    (
        "flow-lifecycle",
        "0..key_bound() slot scans in per-epoch discipline modules; iterate the ActiveSet",
    ),
    (
        "taint-wall-clock",
        "wall-clock read reachable from a replay-path root (transitive wall-clock)",
    ),
    (
        "taint-thread-spawn",
        "thread use reachable from a replay-path root (transitive thread-spawn)",
    ),
    (
        "taint-rand-import",
        "external RNG use reachable from a replay-path root (transitive rand-import)",
    ),
    (
        "taint-hash-collections",
        "hash-ordered collection reachable from a replay-path root (transitive hash-collections)",
    ),
    (
        "unit-safety",
        "expression mixes _ns/_s/_ticks or _bytes/_pkts identifiers without a recognized conversion",
    ),
    (
        "rng-stream-hygiene",
        "DetRng stream labels must be unique string literals; duplicates correlate streams",
    ),
];

/// Long-form rationale shown by `simlint --explain <rule>`.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "core-state" => {
            "The paper's headline claim (§2-3) is that core routers keep no per-flow\n\
             state: edges encode each flow's weighted share in packet markers, and the\n\
             core acts on aggregates alone. A FlowId-keyed collection in a core-router\n\
             module would reintroduce exactly the state the architecture removes, so the\n\
             rule flags `Map<FlowId, …>` and growing `Vec<(FlowId, …)>` declarations in\n\
             the core modules. FRED deliberately keeps per-flow state as the contrast\n\
             baseline; its exemption lives in simlint.toml, next to its justification."
        }
        "hash-collections" => {
            "Every CI gate in this repo compares serial/parallel/wheel/heap/train replays\n\
             byte-for-byte. HashMap/HashSet iteration order depends on RandomState, so a\n\
             single hash-ordered loop anywhere in the simulation can reorder floating-\n\
             point accumulation or event emission and silently break those comparisons.\n\
             Use BTreeMap/BTreeSet (or netsim::slab::DenseMap for id keys)."
        }
        "wall-clock" => {
            "Instant::now()/SystemTime read host time. Any simulation decision derived\n\
             from them differs run-to-run, breaking deterministic replay. Simulated time\n\
             is sim_core::time::SimTime; the bench harness is the one sanctioned reader\n\
             of wall-clock time and carries inline allows."
        }
        "thread-spawn" => {
            "Thread interleaving is nondeterministic; any simulation state touched from\n\
             more than one thread breaks byte-identical replay. The one sanctioned user\n\
             is scenarios::exec, which fans out *whole runs* and merges results in input\n\
             order (proved byte-identical to serial by tests/parallel_exec.rs)."
        }
        "rand-import" => {
            "External RNG crates change algorithms across versions and platforms; draws\n\
             would not be pinned by this repository alone. sim_core::rng::DetRng is a\n\
             self-contained xoshiro256++ whose streams are keyed by stable labels."
        }
        "float-eq" => {
            "Exact ==/!= on floats is almost always a latent bug: one rounding step away\n\
             from never (or always) firing. Compare with an epsilon or an ordered\n\
             comparison; test code is exempt."
        }
        "panic-path" => {
            "A bare unwrap() in the netsim event loop aborts a million-event run with no\n\
             context. expect() must name the violated invariant so the panic message\n\
             says what broke."
        }
        "hot-alloc" => {
            "Steady-state dispatch is allocation-free (pinned by netsim's counting-\n\
             allocator tests); a vec!/Vec::new/Box::new/.to_vec in a per-event function\n\
             of a hot-path module re-introduces per-event heap traffic. Reuse a\n\
             preallocated buffer (ActionBuf-style)."
        }
        "dense-state" => {
            "Per-id state read on the hot path belongs in netsim::slab::DenseMap: O(1)\n\
             index access, id-ordered iteration and allocation-free reuse. Tree/hash\n\
             maps keyed by FlowId/NodeId/LinkId trade that for pointer chasing and\n\
             per-insert allocation."
        }
        "flow-lifecycle" => {
            "Flow slots are recycled under churn: a 0..key_bound() index scan walks\n\
             every slot ever used and touches retired occupants. Iterate the ActiveSet\n\
             (same ascending order, O(active) per epoch) instead."
        }
        "taint-wall-clock"
        | "taint-thread-spawn"
        | "taint-rand-import"
        | "taint-hash-collections" => {
            "The transitive form of the determinism rules. simlint parses every fn body,\n\
             builds a workspace call graph (name-based, dependency-scoped resolution)\n\
             and walks it from the replay-path roots: Network dispatch/apply_actions and\n\
             the event-loop modules, EventQueue, churn/fault application, and every\n\
             RouterLogic/Discipline impl. A nondeterminism sink (wall-clock, threads,\n\
             external RNG, hash-ordered collections) whose *site* carries an allow —\n\
             legitimate in its own context, e.g. bench timing — is still an error if a\n\
             replay root can reach it through any call chain: the allow justified the\n\
             site, not its reachability. The diagnostic prints the root→sink chain.\n\
             Suppress with `simlint: allow(taint-<rule>)` at the sink or on any fn\n\
             declaration along the chain, or a simlint.toml path entry."
        }
        "unit-safety" => {
            "Identifiers in this repo carry unit suffixes (_ns/_s/_ms/_ticks, _bytes/\n\
             _pkts). An expression that combines two different units of the same\n\
             dimension with +, -, a comparison, an assignment or min/max — with no\n\
             conversion identifier (…_per_…, …_to_…, *_SHIFT, tick_ns-style) in sight —\n\
             is the bug class behind the PR 4 tick/ns floor split. Multiplication and\n\
             division are exempt (they legitimately change units)."
        }
        "rng-stream-hygiene" => {
            "DetRng streams are keyed by (seed, label): two call sites using the same\n\
             label draw *identical* sequences under the same seed — silently correlated\n\
             randomness. The rule collects every DetRng::stream/substream label literal\n\
             workspace-wide and errors on duplicates at distinct live call sites, and on\n\
             non-literal labels in replay-path crates (a computed label defeats stream\n\
             auditing). Test code is exempt — reusing a label to prove stream identity\n\
             is what RNG tests do."
        }
        _ => return None,
    })
}

/// True when `rule` is a known rule name.
pub fn is_known_rule(rule: &str) -> bool {
    RULES.iter().any(|&(name, _)| name == rule)
}

/// Core-router modules: the paper's headline claim (§2–3) is that these
/// keep no per-flow state. FRED is in the list because it sits in the
/// same core-AQM position — its deliberate per-flow accounting is
/// allowlisted in `simlint.toml`, not exempted here.
const CORE_MODULES: &[&str] = &[
    "crates/corelite/src/router.rs",
    "crates/corelite/src/detector.rs",
    "crates/corelite/src/stateless.rs",
    "crates/corelite/src/cache.rs",
    "crates/corelite/src/congestion.rs",
    "crates/csfq/src/core.rs",
    "crates/baselines/src/red.rs",
    "crates/baselines/src/fred.rs",
];

/// The netsim event-loop hot path: a panic here aborts a million-event
/// run, so every fallible step must say which invariant broke.
const EVENT_LOOP_MODULES: &[&str] = &[
    "crates/netsim/src/network.rs",
    "crates/netsim/src/logic.rs",
    "crates/netsim/src/link.rs",
];

/// Dispatch/discipline modules whose per-event functions must not
/// allocate: the engine's zero-alloc contract (DESIGN.md §"Engine
/// performance", pinned by `crates/netsim/tests/zero_alloc.rs`) only
/// holds if steady-state dispatch never touches the heap.
const HOT_PATH_MODULES: &[&str] = &[
    "crates/netsim/src/network.rs",
    "crates/netsim/src/logic.rs",
    "crates/netsim/src/link.rs",
    "crates/netsim/src/slab.rs",
    "crates/netsim/src/telemetry.rs",
    "crates/netsim/src/transport.rs",
    "crates/corelite/src/edge.rs",
    "crates/corelite/src/router.rs",
    "crates/csfq/src/core.rs",
    "crates/csfq/src/edge.rs",
    "crates/baselines/src/red.rs",
    "crates/baselines/src/fred.rs",
    "crates/baselines/src/greedy.rs",
];

/// Modules holding per-id state that the dispatch loop reads or writes
/// per event (or per epoch): a tree/hash map keyed by one of the dense
/// id types here trades O(1) slab access for pointer chasing and
/// per-insert allocation, so the `dense-state` rule steers these to
/// `netsim::slab::DenseMap`. FRED's deliberate per-flow table is
/// allowlisted in `simlint.toml`, not exempted here.
const DENSE_STATE_MODULES: &[&str] = &[
    "crates/netsim/src/network.rs",
    "crates/netsim/src/logic.rs",
    "crates/netsim/src/link.rs",
    "crates/netsim/src/monitor.rs",
    "crates/netsim/src/slab.rs",
    "crates/netsim/src/transport.rs",
    "crates/corelite/src/edge.rs",
    "crates/corelite/src/router.rs",
    "crates/corelite/src/gateway.rs",
    "crates/corelite/src/aggregate.rs",
    "crates/corelite/src/controller.rs",
    "crates/csfq/src/core.rs",
    "crates/csfq/src/edge.rs",
    "crates/baselines/src/red.rs",
    "crates/baselines/src/fred.rs",
    "crates/baselines/src/greedy.rs",
];

/// Modules with per-epoch loops over recycled flow tables. Under churn
/// a `0..key_bound()` index scan costs O(slots ever used) per epoch and
/// touches retired occupants, where `ActiveSet` iteration is O(active
/// flows) in the same ascending-index order. Link tables never recycle
/// their slots, so per-link scans (the core router's) stay off this
/// list.
const FLOW_LIFECYCLE_MODULES: &[&str] = &[
    "crates/corelite/src/edge.rs",
    "crates/corelite/src/gateway.rs",
    "crates/corelite/src/aggregate.rs",
    "crates/csfq/src/edge.rs",
];

/// The dense id types whose keyed maps belong in the slab.
const DENSE_ID_TYPES: &[&str] = &["FlowId", "NodeId", "LinkId"];

/// Source roots of the crates that execute during a replay. Inside them
/// `rng-stream-hygiene` requires stream labels to be string literals,
/// and the taint pass treats their sinks as replay-relevant.
pub const REPLAY_CRATES: &[&str] = &[
    "crates/sim-core/src",
    "crates/netsim/src",
    "crates/corelite/src",
    "crates/csfq/src",
    "crates/baselines/src",
];

/// Function names that run per event (or per epoch) in a hot-path
/// module. The `hot-alloc` rule applies only inside these bodies, so
/// constructors and report/setup code may allocate freely.
const HOT_FNS: &[&str] = &[
    // netsim dispatch internals.
    "run_until",
    "dispatch",
    "handle_arrive",
    "handle_tx_done",
    "with_logic",
    "apply_action",
    "push_control",
    "record_drop",
    // Per-packet link operations.
    "offer",
    "sync",
    "queue_len",
    // Per-event slab accessors (netsim::slab): growth is amortized via
    // resize_with, everything else must stay allocation-free.
    "insert",
    "remove",
    "entry_or_insert_with",
    "clear",
    "retain",
    // RouterLogic callbacks (on_start included: helpers reached from it
    // are usually shared with the per-packet path).
    "on_start",
    "on_packet",
    "on_timer",
    "on_control",
    "on_flow_start",
    "on_flow_stop",
    // Discipline helpers on the emit/adapt path.
    "handle_emit",
    "ensure_emission",
    "schedule_next",
    "run_epoch",
    "adapt_all",
    // Telemetry: every per-epoch publish lands here; the zero-alloc
    // contract (ISSUE 5) extends to probe recording.
    "record",
    "publish",
];

/// Collection types whose `<FlowId, …>` instantiation is per-flow state.
const KEYED_COLLECTIONS: &[&str] = &[
    "HashMap", "BTreeMap", "HashSet", "BTreeSet", "IndexMap", "VecDeque",
];

/// Hash-based collections with nondeterministic iteration order.
const HASH_COLLECTIONS: &[&str] = &[
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "AHashMap",
    "AHashSet",
    "IndexMap",
    "IndexSet",
    "DashMap",
    "DashSet",
];

/// RNG crates whose mere import makes runs irreproducible across
/// toolchains (this repo hand-rolls `DetRng` instead).
const RNG_CRATES: &[&str] = &[
    "rand",
    "rand_core",
    "rand_chacha",
    "rand_distr",
    "rand_pcg",
    "rand_xoshiro",
    "fastrand",
    "oorandom",
    "getrandom",
];

/// How a file is treated by path-scoped rules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileClass {
    /// Core-router module: the `core-state` rule applies.
    pub core_module: bool,
    /// netsim event-loop module: the `panic-path` rule applies.
    pub event_loop: bool,
    /// Dispatch/discipline module: the `hot-alloc` rule applies inside
    /// its per-event functions.
    pub hot_path: bool,
    /// Per-id state module: the `dense-state` rule applies.
    pub dense_state: bool,
    /// Per-epoch flow-table module: the `flow-lifecycle` rule applies.
    pub flow_lifecycle: bool,
    /// Replay-path crate source: `rng-stream-hygiene` rejects
    /// non-literal `DetRng` stream labels here.
    pub replay: bool,
    /// Test code (integration test file): `float-eq` does not apply.
    pub is_test: bool,
}

/// Classifies `rel` (workspace-relative path with `/` separators).
///
/// Lint fixtures under `simlint/fixtures/` classify by filename prefix
/// (`core_state_*` as a core module, `panic_path_*` as an event-loop
/// module, `hot_alloc_*` as a hot-path module, `dense_state_*` as a
/// per-id state module, `flow_lifecycle_*` as a per-epoch flow-table
/// module, `transport_sender_*` as both hot-path and per-id-state like
/// the real `crates/netsim/src/transport.rs`) so the fixtures exercise
/// the path-scoped rules without masquerading as real tree paths.
pub fn classify(rel: &str) -> FileClass {
    if let Some(name) = rel
        .contains("simlint/fixtures/")
        .then(|| rel.rsplit('/').next().unwrap_or(rel))
    {
        return FileClass {
            core_module: name.starts_with("core_state"),
            event_loop: name.starts_with("panic_path"),
            hot_path: name.starts_with("hot_alloc") || name.starts_with("transport_sender"),
            dense_state: name.starts_with("dense_state") || name.starts_with("transport_sender"),
            flow_lifecycle: name.starts_with("flow_lifecycle"),
            replay: name.starts_with("rng_stream_hygiene") || name.starts_with("taint_"),
            is_test: false,
        };
    }
    FileClass {
        core_module: CORE_MODULES.contains(&rel),
        event_loop: EVENT_LOOP_MODULES.contains(&rel),
        hot_path: HOT_PATH_MODULES.contains(&rel),
        dense_state: DENSE_STATE_MODULES.contains(&rel),
        flow_lifecycle: FLOW_LIFECYCLE_MODULES.contains(&rel),
        replay: REPLAY_CRATES.iter().any(|p| rel.starts_with(p)),
        is_test: rel.starts_with("tests/") || rel.contains("/tests/"),
    }
}

/// Lints `src` as file `rel` classified as `class`, honoring inline
/// `simlint: allow(...)` comments and the `allow` config.
///
/// This covers the per-file (token) rules only; the workspace rules
/// (taint reachability, rng-stream duplicate labels) need every file at
/// once and run in [`crate::lint_paths`].
pub fn scan_source(rel: &str, src: &str, class: FileClass, allow: &Allowlist) -> Vec<Violation> {
    let lexed = lex(src);
    suppress(scan_tokens(rel, &lexed, class), &lexed, allow)
}

/// The pre-suppression token scan: every per-file finding, including
/// ones an inline allow or the config will drop. The taint pass works
/// from this raw list — an allowed wall-clock read is still a *sink*.
pub(crate) fn scan_tokens(rel: &str, lexed: &Lexed, class: FileClass) -> Vec<Violation> {
    let test_ranges = cfg_test_ranges(&lexed.tokens);
    let hot_ranges = if class.hot_path {
        hot_fn_ranges(&lexed.tokens)
    } else {
        Vec::new()
    };
    let mut found = Vec::new();
    let toks = &lexed.tokens;

    let ident = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let op = |i: usize, want: &str| matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Op(o)) if *o == want);

    for i in 0..toks.len() {
        let line = toks[i].line;
        match &toks[i].tok {
            Tok::Ident(name) => {
                // core-state: `BTreeMap<FlowId, …>` (optionally with a
                // turbofish) or `Vec<(FlowId, …)>` in a core module.
                if class.core_module {
                    let mut j = i + 1;
                    if op(j, "::") {
                        j += 1; // turbofish `BTreeMap::<FlowId, _>`
                    }
                    if op(j, "<") {
                        let keyed = KEYED_COLLECTIONS.contains(&name.as_str())
                            && ident(j + 1) == Some("FlowId");
                        let tupled =
                            name == "Vec" && op(j + 1, "(") && ident(j + 2) == Some("FlowId");
                        if keyed || tupled {
                            found.push(Violation {
                                file: rel.to_owned(),
                                line,
                                rule: "core-state",
                                message: format!(
                                    "per-flow state `{name}<FlowId, …>` in a core-router module; \
                                     cores must stay stateless (paper §2–3)"
                                ),
                            });
                        }
                    }
                }
                // dense-state: a tree/hash map keyed by a dense id type
                // in a hot-path state module. Tests may model with maps
                // (the DenseMap property tests deliberately do).
                if class.dense_state
                    && !class.is_test
                    && !in_ranges(&test_ranges, line)
                    && matches!(name.as_str(), "BTreeMap" | "HashMap")
                {
                    let mut j = i + 1;
                    if op(j, "::") {
                        j += 1; // turbofish `BTreeMap::<FlowId, _>`
                    }
                    if op(j, "<") {
                        if let Some(key) = ident(j + 1).filter(|k| DENSE_ID_TYPES.contains(k)) {
                            found.push(Violation {
                                file: rel.to_owned(),
                                line,
                                rule: "dense-state",
                                message: format!(
                                    "`{name}<{key}, …>` in a hot-path module; id-keyed state \
                                     belongs in `netsim::slab::DenseMap` (O(1) index access, \
                                     id-ordered iteration, allocation-free reuse)"
                                ),
                            });
                        }
                    }
                }
                // hash-collections: any mention as an identifier.
                if HASH_COLLECTIONS.contains(&name.as_str()) {
                    found.push(Violation {
                        file: rel.to_owned(),
                        line,
                        rule: "hash-collections",
                        message: format!(
                            "`{name}` iterates in nondeterministic order, breaking byte-identical \
                             replay; use BTreeMap/BTreeSet"
                        ),
                    });
                }
                // wall-clock: `Instant::now` or any `SystemTime`.
                let wall = (name == "Instant" && op(i + 1, "::") && ident(i + 2) == Some("now"))
                    || name == "SystemTime";
                if wall {
                    found.push(Violation {
                        file: rel.to_owned(),
                        line,
                        rule: "wall-clock",
                        message: "wall-clock time in simulation code breaks deterministic replay; \
                                  use sim_core::time::SimTime"
                            .to_owned(),
                    });
                }
                // thread-spawn: `std::thread` or `thread::{spawn,scope,…}`.
                let threaded = (name == "std" && op(i + 1, "::") && ident(i + 2) == Some("thread"))
                    || (name == "thread"
                        && op(i + 1, "::")
                        && matches!(
                            ident(i + 2),
                            Some("spawn" | "scope" | "Builder" | "available_parallelism")
                        ))
                    || name == "rayon";
                if threaded {
                    found.push(Violation {
                        file: rel.to_owned(),
                        line,
                        rule: "thread-spawn",
                        message: "threads outside scenarios::exec/bench break deterministic \
                                  event ordering"
                            .to_owned(),
                    });
                }
                // rand-import: any mention of an external RNG crate.
                if RNG_CRATES.contains(&name.as_str()) {
                    found.push(Violation {
                        file: rel.to_owned(),
                        line,
                        rule: "rand-import",
                        message: format!(
                            "external RNG `{name}` is nondeterministic across toolchains; use \
                             sim_core::rng::DetRng streams"
                        ),
                    });
                }
                // panic-path: `.unwrap()` in an event-loop module.
                if class.event_loop
                    && name == "unwrap"
                    && i > 0
                    && op(i - 1, ".")
                    && op(i + 1, "(")
                    && op(i + 2, ")")
                {
                    found.push(Violation {
                        file: rel.to_owned(),
                        line,
                        rule: "panic-path",
                        message: "bare unwrap() in the event-loop hot path; use expect() naming \
                                  the violated invariant so a panic in a million-event run is \
                                  diagnosable"
                            .to_owned(),
                    });
                }
                // flow-lifecycle: a `.key_bound()` call in a per-epoch
                // discipline module. Flow slots are recycled under
                // churn, so an index scan walks every slot ever used
                // and reads retired occupants; tests may scan the whole
                // table to cross-check the active set.
                if class.flow_lifecycle
                    && !class.is_test
                    && !in_ranges(&test_ranges, line)
                    && name == "key_bound"
                    && i > 0
                    && op(i - 1, ".")
                    && op(i + 1, "(")
                {
                    found.push(Violation {
                        file: rel.to_owned(),
                        line,
                        rule: "flow-lifecycle",
                        message: "`0..key_bound()`-style slot scan in a per-epoch discipline \
                                  module; flow slots are recycled under churn, so iterate the \
                                  `ActiveSet` (same ascending-index order, O(active flows) per \
                                  epoch) or justify with `simlint: allow(flow-lifecycle)`"
                            .to_owned(),
                    });
                }
                // hot-alloc: a fresh heap allocation inside a per-event
                // function of a dispatch/discipline module. `Vec::<` is
                // the turbofish constructor form; `Vec` as a plain type
                // annotation has no `::` and is not flagged.
                if class.hot_path
                    && !class.is_test
                    && !in_ranges(&test_ranges, line)
                    && in_ranges(&hot_ranges, line)
                {
                    let alloc = if name == "vec" && op(i + 1, "!") {
                        Some("vec![…]")
                    } else if name == "Vec"
                        && op(i + 1, "::")
                        && (ident(i + 2) == Some("new") || op(i + 2, "<"))
                    {
                        Some("Vec::new()")
                    } else if name == "Box"
                        && op(i + 1, "::")
                        && (ident(i + 2) == Some("new") || op(i + 2, "<"))
                    {
                        Some("Box::new(…)")
                    } else if name == "to_vec" && i > 0 && op(i - 1, ".") && op(i + 1, "(") {
                        Some(".to_vec()")
                    } else {
                        None
                    };
                    if let Some(what) = alloc {
                        found.push(Violation {
                            file: rel.to_owned(),
                            line,
                            rule: "hot-alloc",
                            message: format!(
                                "`{what}` allocates on the per-event hot path, breaking the \
                                 engine's zero-alloc dispatch contract; reuse a preallocated \
                                 buffer (ActionBuf-style, DESIGN.md §\"Engine performance\") or \
                                 justify with `simlint: allow(hot-alloc)`"
                            ),
                        });
                    }
                }
            }
            // float-eq: `==`/`!=` with a float-literal operand or a
            // `.fract()` receiver, outside tests.
            Tok::Op(o @ ("==" | "!="))
                if !class.is_test && !in_ranges(&test_ranges, line) && float_operand(toks, i) =>
            {
                found.push(Violation {
                    file: rel.to_owned(),
                    line,
                    rule: "float-eq",
                    message: format!(
                        "exact `{o}` on a floating-point value; use an epsilon or ordered \
                         comparison, or justify with `simlint: allow(float-eq)`"
                    ),
                });
            }
            _ => {}
        }
    }
    if !class.is_test {
        unit_safety(rel, toks, &test_ranges, &mut found);
    }
    found
}

/// Classifies one `_`-separated identifier segment as a canonical unit:
/// `(dimension, key)` where dimension 0 is time and 1 is count, and the
/// key folds spelling variants (`ns`/`nanos`, `pkt`/`pkts`/`packet`…).
fn unit_of_segment(seg: &str) -> Option<(u8, &'static str)> {
    Some(match seg {
        "ns" | "nanos" => (0, "ns"),
        "us" | "micros" => (0, "us"),
        "ms" | "millis" => (0, "ms"),
        "s" | "sec" | "secs" => (0, "s"),
        "tick" | "ticks" => (0, "ticks"),
        "byte" | "bytes" => (1, "bytes"),
        "pkt" | "pkts" | "packet" | "packets" => (1, "pkts"),
        _ => return None,
    })
}

/// The unit an identifier carries: its last `_`-segment's unit.
/// Single-segment names (`ticks` alone, a loop variable `s`) are too
/// common as ordinary locals to be trustworthy carriers, so a `_` is
/// required somewhere in the identifier.
fn unit_of_ident(name: &str) -> Option<(u8, &'static str)> {
    if !name.contains('_') {
        return None;
    }
    unit_of_segment(&name.rsplit('_').next().unwrap_or(name).to_ascii_lowercase())
}

/// True when `name` marks a deliberate unit conversion: a `per`/`to`/
/// `shift` segment (`bytes_per_s`, `ns_to_ticks`, `TICK_SHIFT`) or two
/// same-dimension units fused into one identifier (`tick_ns`).
fn is_conversion_ident(name: &str) -> bool {
    let mut dims_seen = [0usize; 2];
    for seg in name.split('_') {
        let lower = seg.to_ascii_lowercase();
        if matches!(lower.as_str(), "per" | "to" | "shift") {
            return true;
        }
        if let Some((dim, _)) = unit_of_segment(&lower) {
            dims_seen[dim as usize] += 1;
        }
    }
    dims_seen.iter().any(|&n| n >= 2)
}

/// The `unit-safety` scan: within one statement segment (split on `;`,
/// `,`, `{`, `}`), two identifiers carrying *different* units of the
/// same dimension combined by `+ - += -= < > <= >= == != =` or a
/// `min`/`max` call — with no conversion identifier in the segment — is
/// flagged. `*` and `/` are exempt: they legitimately change units.
fn unit_safety(rel: &str, toks: &[Token], test_ranges: &[(u32, u32)], found: &mut Vec<Violation>) {
    const TRIGGER_OPS: &[&str] = &["+", "-", "+=", "-=", "<", ">", "<=", ">=", "==", "!=", "="];
    let mut start = 0usize;
    for i in 0..=toks.len() {
        let boundary = i == toks.len() || matches!(&toks[i].tok, Tok::Op(";" | "," | "{" | "}"));
        if !boundary {
            continue;
        }
        let seg = &toks[start..i];
        start = i + 1;
        if seg.is_empty() {
            continue;
        }
        let line = seg[0].line;
        if in_ranges(test_ranges, line) {
            continue;
        }
        let mut units: Vec<(u8, &'static str, &str)> = Vec::new();
        let mut trigger = false;
        let mut converted = false;
        for t in seg {
            match &t.tok {
                Tok::Ident(name) => {
                    if is_conversion_ident(name) {
                        converted = true;
                    } else if let Some((dim, key)) = unit_of_ident(name) {
                        if !units.iter().any(|&(d, k, _)| d == dim && k == key) {
                            units.push((dim, key, name.as_str()));
                        }
                    }
                    if matches!(name.as_str(), "min" | "max") {
                        trigger = true;
                    }
                }
                Tok::Op(o) if TRIGGER_OPS.contains(o) => trigger = true,
                _ => {}
            }
        }
        if converted || !trigger {
            continue;
        }
        for class in 0u8..2 {
            let mixed: Vec<_> = units.iter().filter(|&&(c, _, _)| c == class).collect();
            if mixed.len() >= 2 {
                let names: Vec<_> = mixed.iter().map(|&&(_, _, n)| n).collect();
                found.push(Violation {
                    file: rel.to_owned(),
                    line,
                    rule: "unit-safety",
                    message: format!(
                        "expression mixes units ({}) without a recognized conversion \
                         (`…_per_…`, `…_to_…`, `*_SHIFT`, or a fused ident like `tick_ns`); \
                         convert explicitly or justify with `simlint: allow(unit-safety)`",
                        names.join(", ")
                    ),
                });
            }
        }
    }
}

/// True when the `==`/`!=` at `i` has a float operand we can see
/// lexically: a float literal on either side (allowing unary minus), or
/// a `.fract()` call immediately before it.
fn float_operand(toks: &[Token], i: usize) -> bool {
    if i > 0 && toks[i - 1].tok == Tok::Float {
        return true;
    }
    let next = match toks.get(i + 1).map(|t| &t.tok) {
        Some(Tok::Op("-")) => toks.get(i + 2).map(|t| &t.tok),
        t => t,
    };
    if next == Some(&Tok::Float) {
        return true;
    }
    // `x.fract() ==` lexes as … Ident(fract) ( ) ==
    i >= 3
        && matches!(&toks[i - 3].tok, Tok::Ident(s) if s == "fract")
        && toks[i - 2].tok == Tok::Op("(")
        && toks[i - 1].tok == Tok::Op(")")
}

/// Line ranges covered by the bodies of [`HOT_FNS`] functions, found by
/// brace-matching from each `fn <name>` to its closing brace. Trait
/// declarations without a body (`fn on_packet(…);`) contribute nothing.
fn hot_fn_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_hot_fn = matches!(&toks[i].tok, Tok::Ident(s) if s == "fn")
            && matches!(
                toks.get(i + 1).map(|t| &t.tok),
                Some(Tok::Ident(s)) if HOT_FNS.contains(&s.as_str())
            );
        if !is_hot_fn {
            i += 1;
            continue;
        }
        let start = toks[i].line;
        // Scan past the signature to the body's opening brace; a `;`
        // first means a bodiless trait-method declaration.
        let mut j = i + 2;
        while j < toks.len() && toks[j].tok != Tok::Op("{") && toks[j].tok != Tok::Op(";") {
            j += 1;
        }
        if toks.get(j).map(|t| &t.tok) == Some(&Tok::Op("{")) {
            let mut depth = 1usize;
            j += 1;
            while j < toks.len() && depth > 0 {
                match &toks[j].tok {
                    Tok::Op("{") => depth += 1,
                    Tok::Op("}") => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let end = toks.get(j.saturating_sub(1)).map_or(u32::MAX, |t| t.line);
            ranges.push((start, end));
        }
        i = j;
    }
    ranges
}

/// Drops violations covered by an inline allow (same line or the line
/// directly above) or by the config allowlist for the file's path.
pub(crate) fn suppress(found: Vec<Violation>, lexed: &Lexed, allow: &Allowlist) -> Vec<Violation> {
    found
        .into_iter()
        .filter(|v| {
            let inline = lexed
                .allows
                .iter()
                .any(|a| a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line));
            !inline && !allow.allows(v.rule, &v.file)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, src: &str) -> Vec<Violation> {
        scan_source(rel, src, classify(rel), &Allowlist::default())
    }

    #[test]
    fn classify_paths() {
        assert!(classify("crates/corelite/src/router.rs").core_module);
        assert!(classify("crates/netsim/src/network.rs").event_loop);
        assert!(classify("tests/paper_topology.rs").is_test);
        assert!(classify("crates/netsim/tests/properties.rs").is_test);
        assert!(!classify("crates/netsim/src/flow.rs").core_module);
        assert!(classify("crates/corelite/src/edge.rs").hot_path);
        assert!(!classify("crates/netsim/src/flow.rs").hot_path);
        assert!(classify("crates/simlint/fixtures/core_state_bad.rs").core_module);
        assert!(classify("crates/simlint/fixtures/panic_path_bad.rs").event_loop);
        assert!(classify("crates/simlint/fixtures/hot_alloc_bad.rs").hot_path);
        assert!(classify("crates/corelite/src/gateway.rs").flow_lifecycle);
        assert!(!classify("crates/corelite/src/router.rs").flow_lifecycle);
        assert!(classify("crates/simlint/fixtures/flow_lifecycle_bad.rs").flow_lifecycle);
    }

    #[test]
    fn flowid_map_flagged_only_in_core_modules() {
        // Core modules are also dense-state modules, so filter by rule:
        // this test pins the *core-state* scoping.
        let src = "struct S { m: BTreeMap<FlowId, f64> }";
        let core = scan("crates/csfq/src/core.rs", src);
        assert_eq!(
            core.iter().filter(|v| v.rule == "core-state").count(),
            1,
            "{core:?}"
        );
        let edge = scan("crates/csfq/src/edge.rs", src);
        assert!(edge.iter().all(|v| v.rule != "core-state"), "{edge:?}");
    }

    #[test]
    fn flowid_tuple_vec_and_turbofish_flagged() {
        let v = scan(
            "crates/corelite/src/router.rs",
            "let v: Vec<(FlowId, f64)> = Vec::new(); let m = BTreeMap::<FlowId, u8>::new();",
        );
        assert_eq!(
            v.iter().filter(|v| v.rule == "core-state").count(),
            2,
            "{v:?}"
        );
    }

    #[test]
    fn linkid_map_in_core_is_fine() {
        // Per-link state does not violate core-statelessness (it does
        // trip dense-state, which wants it slab-backed — a separate
        // concern).
        let v = scan(
            "crates/corelite/src/router.rs",
            "struct S { m: BTreeMap<LinkId, LinkState> }",
        );
        assert!(v.iter().all(|v| v.rule != "core-state"), "{v:?}");
    }

    #[test]
    fn id_keyed_map_flagged_in_dense_state_modules() {
        let src = "struct S { m: BTreeMap<NodeId, u32> }";
        let hot = scan("crates/corelite/src/controller.rs", src);
        assert_eq!(hot.len(), 1, "{hot:?}");
        assert_eq!(hot[0].rule, "dense-state");
        // Turbofish constructor form and every dense id type.
        let v = scan(
            "crates/csfq/src/edge.rs",
            "let m = BTreeMap::<LinkId, u8>::new();",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        // Outside the module list the rule is silent.
        let cold = scan("crates/netsim/src/flow.rs", src);
        assert!(cold.is_empty(), "{cold:?}");
        // Non-id keys are not the slab's business.
        let strings = scan(
            "crates/corelite/src/controller.rs",
            "struct S { counters: BTreeMap<String, f64> }",
        );
        assert!(strings.is_empty(), "{strings:?}");
    }

    #[test]
    fn id_keyed_map_in_cfg_test_mod_is_fine() {
        // The DenseMap property tests model against BTreeMap on purpose.
        let src = "#[cfg(test)]\nmod tests {\n struct M { m: BTreeMap<FlowId, u32> }\n}";
        let v = scan("crates/netsim/src/slab.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn key_bound_scan_flagged_only_in_flow_lifecycle_modules() {
        let src = "fn run_epoch(&mut self) { for i in 0..self.flows.key_bound() {} }";
        let v = scan("crates/corelite/src/edge.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "flow-lifecycle");
        // The core router's per-link scan is exempt: link slots are
        // never recycled, so an index scan there is exact.
        assert!(scan("crates/corelite/src/router.rs", src).is_empty());
        // Defining `key_bound` (slab.rs) is not calling it in a loop.
        let def = "pub fn key_bound(&self) -> usize { self.slots.len() }";
        assert!(scan("crates/corelite/src/gateway.rs", def).is_empty());
        // cfg(test) code may scan the whole table to cross-check the
        // active set, and an inline allow covers justified full scans.
        let test_src = "#[cfg(test)]\nmod tests {\n fn t() { for i in 0..m.key_bound() {} }\n}";
        assert!(scan("crates/corelite/src/gateway.rs", test_src).is_empty());
        let allowed = "// simlint: allow(flow-lifecycle) one-shot report\n\
                       for i in 0..self.flows.key_bound() {}";
        assert!(scan("crates/csfq/src/edge.rs", allowed).is_empty());
    }

    #[test]
    fn hash_collections_flagged_everywhere() {
        let v = scan(
            "crates/netsim/src/flow.rs",
            "use std::collections::HashMap;",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "hash-collections");
    }

    #[test]
    fn wall_clock_and_threads_flagged() {
        let v = scan(
            "crates/netsim/src/flow.rs",
            "let t = Instant::now(); std::thread::spawn(|| {});",
        );
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"wall-clock"), "{v:?}");
        assert!(rules.contains(&"thread-spawn"), "{v:?}");
    }

    #[test]
    fn instant_import_alone_is_fine() {
        let v = scan("crates/netsim/src/flow.rs", "use std::time::Instant;");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn rand_import_flagged() {
        let v = scan("crates/netsim/src/flow.rs", "use rand::Rng;");
        assert_eq!(v[0].rule, "rand-import");
    }

    #[test]
    fn float_eq_literal_both_sides_and_fract() {
        let v = scan(
            "crates/sim-core/src/stats.rs",
            "if q == 0.0 {} if 1.0 != r {} if v.fract() == z {}",
        );
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "float-eq"));
    }

    #[test]
    fn int_eq_and_epsilon_compare_are_fine() {
        let v = scan(
            "crates/sim-core/src/stats.rs",
            "if n == 0 {} if (a - b).abs() < 1e-9 {} if q <= 0.0 {}",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_eq_skipped_in_test_files_and_cfg_test_mods() {
        assert!(scan("tests/x.rs", "assert!(a == 0.0);").is_empty());
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { assert!(a == 0.0); }\n}";
        let v = scan("crates/sim-core/src/stats.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_eq_before_cfg_test_mod_still_flagged() {
        let src = "fn live(a: f64) -> bool { a == 0.0 }\n#[cfg(test)]\nmod tests {}";
        let v = scan("crates/sim-core/src/stats.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn bare_unwrap_flagged_only_in_event_loop() {
        let src = "let x = q.pop().unwrap();";
        assert_eq!(scan("crates/netsim/src/network.rs", src).len(), 1);
        assert!(scan("crates/netsim/src/flow.rs", src).is_empty());
        // expect() with a message and unwrap_or_else are fine.
        let ok = "q.pop().expect(\"queue invariant\"); v.unwrap_or_else(|| 0);";
        assert!(scan("crates/netsim/src/network.rs", ok).is_empty());
    }

    #[test]
    fn hot_alloc_flagged_only_in_hot_fns_of_hot_modules() {
        // Ranges are line-granular, so keep the fns on separate lines.
        let src = "impl L {\nfn on_packet(&mut self) { let v = vec![1]; }\n\
                   fn report(&self) { let v = vec![1]; }\n}";
        let v = scan("crates/netsim/src/network.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "hot-alloc");
        // Same source in a non-hot module is fine.
        assert!(scan("crates/netsim/src/flow.rs", src).is_empty());
    }

    #[test]
    fn hot_alloc_catches_every_pattern() {
        let src = "fn on_timer() { let a = Vec::new(); let b = Box::new(1); \
                   let c = s.to_vec(); let d = Vec::<u8>::new(); }";
        let v = scan("crates/corelite/src/edge.rs", src);
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "hot-alloc"));
    }

    #[test]
    fn hot_alloc_ignores_types_setup_and_tests() {
        // A `Vec<…>` type annotation in a hot fn is not an allocation.
        let ty = "fn on_packet(&mut self, xs: &Vec<u64>) -> Vec<u64> { xs.clone() }";
        assert!(scan("crates/netsim/src/network.rs", ty).is_empty());
        // Constructors and cfg(test) code may allocate.
        let setup = "fn new() -> Self { L { buf: Vec::new() } }\n\
                     #[cfg(test)]\nmod tests { fn on_packet() { let v = vec![1]; } }";
        assert!(scan("crates/netsim/src/network.rs", setup).is_empty());
        // Inline allow suppresses a justified site.
        let allowed =
            "fn on_control(&mut self) {\n// simlint: allow(hot-alloc) rare reconfiguration\n\
             let v = Vec::new();\n}";
        assert!(scan("crates/netsim/src/network.rs", allowed).is_empty());
    }

    #[test]
    fn inline_allow_suppresses_same_and_next_line() {
        let same = "let t = Instant::now(); // simlint: allow(wall-clock) bench timing";
        assert!(scan("crates/x/src/a.rs", same).is_empty());
        let above = "// simlint: allow(wall-clock) bench timing\nlet t = Instant::now();";
        assert!(scan("crates/x/src/a.rs", above).is_empty());
        let wrong_rule = "let t = Instant::now(); // simlint: allow(float-eq)";
        assert_eq!(scan("crates/x/src/a.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn config_allowlist_suppresses_by_path_prefix() {
        let mut allow = Allowlist::default();
        allow.insert("wall-clock", "crates/bench");
        let v = scan_source(
            "crates/bench/src/lib.rs",
            "let t = Instant::now();",
            FileClass::default(),
            &allow,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unit_safety_flags_mixed_units_with_trigger_op() {
        // Addition and comparison across time units.
        let v = scan(
            "crates/netsim/src/flow.rs",
            "let deadline = now_ns + timeout_s;",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unit-safety");
        let v = scan("crates/netsim/src/flow.rs", "if gap_ticks < window_ns {}");
        assert_eq!(v.len(), 1, "{v:?}");
        // Count dimension, `.min(…)` trigger.
        let v = scan(
            "crates/netsim/src/flow.rs",
            "let lim = queued_bytes.min(cap_pkts);",
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn unit_safety_ignores_conversions_products_and_tests() {
        let fine = [
            // Same unit on both sides.
            "let total_ns = a_ns + b_ns;",
            // `*`/`/` legitimately change units.
            "let bytes = rate_bytes * window_s;",
            "let r = count_pkts / elapsed_s;",
            // Conversion markers anywhere in the segment.
            "let t = now_ns + timeout_s * NS_PER_S;",
            "let t = ns_to_ticks + base_ticks + off_ns;",
            "let floor = min_ns >> TICK_SHIFT > lim_ticks;",
            // A fused dual-unit ident is itself the conversion.
            "let t = base_ticks + off_ns + tick_ns;",
            // Different dimensions never mix-flag.
            "if sent_bytes > deadline_ns {}",
            // No trigger operator.
            "let pair = (a_ns, b_s);",
            // Bare suffix words without `_` are ordinary locals.
            "let x = ticks + s;",
        ];
        for src in fine {
            let v = scan("crates/netsim/src/flow.rs", src);
            assert!(v.is_empty(), "{src}: {v:?}");
        }
        // Test files and cfg(test) blocks are exempt.
        assert!(scan("tests/x.rs", "let d = now_ns + timeout_s;").is_empty());
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let d = now_ns + timeout_s; }\n}";
        assert!(scan("crates/netsim/src/flow.rs", src).is_empty());
        // Inline allow suppresses a justified site.
        let allowed = "// simlint: allow(unit-safety) ns-denominated s counter\n\
                       let d = now_ns + timeout_s;";
        assert!(scan("crates/netsim/src/flow.rs", allowed).is_empty());
    }

    #[test]
    fn comments_never_trigger_rules() {
        let v = scan(
            "crates/netsim/src/flow.rs",
            "// HashMap Instant::now rand\n/* std::thread */ fn f() {}",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
