//! The lint rules and the token-stream scanner that applies them.
//!
//! Each rule is a named invariant of this repository (see DESIGN.md
//! §10); every rule can be suppressed per-site with an inline
//! `// simlint: allow(<rule>)` comment or per-path via `simlint.toml`.

use crate::config::Allowlist;
use crate::lexer::{lex, Lexed, Tok, Token};

/// One rule violation, printed as `file:line: rule — message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} — {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Every rule simlint knows, with a one-line description (shown by
/// `simlint --list-rules` and validated against `simlint.toml` keys).
pub const RULES: &[(&str, &str)] = &[
    (
        "core-state",
        "core-router modules must not declare FlowId-keyed or per-flow-growing collections",
    ),
    (
        "hash-collections",
        "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet",
    ),
    (
        "wall-clock",
        "Instant::now()/SystemTime read wall-clock time and break deterministic replay",
    ),
    (
        "thread-spawn",
        "std::thread outside scenarios::exec/bench breaks deterministic event ordering",
    ),
    (
        "rand-import",
        "external RNG crates are forbidden; use sim_core::rng::DetRng streams",
    ),
    (
        "float-eq",
        "exact ==/!= on floats; use an epsilon or ordered comparison",
    ),
    (
        "panic-path",
        "bare unwrap() in the netsim event loop; expect() must name the violated invariant",
    ),
    (
        "hot-alloc",
        "heap allocation (vec!/Vec::new/Box::new/.to_vec) in per-event hot functions; reuse buffers",
    ),
    (
        "dense-state",
        "BTreeMap/HashMap keyed by FlowId/NodeId/LinkId in hot-path state modules; use netsim::slab::DenseMap",
    ),
    (
        "flow-lifecycle",
        "0..key_bound() slot scans in per-epoch discipline modules; iterate the ActiveSet",
    ),
];

/// True when `rule` is a known rule name.
pub fn is_known_rule(rule: &str) -> bool {
    RULES.iter().any(|&(name, _)| name == rule)
}

/// Core-router modules: the paper's headline claim (§2–3) is that these
/// keep no per-flow state. FRED is in the list because it sits in the
/// same core-AQM position — its deliberate per-flow accounting is
/// allowlisted in `simlint.toml`, not exempted here.
const CORE_MODULES: &[&str] = &[
    "crates/corelite/src/router.rs",
    "crates/corelite/src/detector.rs",
    "crates/corelite/src/stateless.rs",
    "crates/corelite/src/cache.rs",
    "crates/corelite/src/congestion.rs",
    "crates/csfq/src/core.rs",
    "crates/baselines/src/red.rs",
    "crates/baselines/src/fred.rs",
];

/// The netsim event-loop hot path: a panic here aborts a million-event
/// run, so every fallible step must say which invariant broke.
const EVENT_LOOP_MODULES: &[&str] = &[
    "crates/netsim/src/network.rs",
    "crates/netsim/src/logic.rs",
    "crates/netsim/src/link.rs",
];

/// Dispatch/discipline modules whose per-event functions must not
/// allocate: the engine's zero-alloc contract (DESIGN.md §"Engine
/// performance", pinned by `crates/netsim/tests/zero_alloc.rs`) only
/// holds if steady-state dispatch never touches the heap.
const HOT_PATH_MODULES: &[&str] = &[
    "crates/netsim/src/network.rs",
    "crates/netsim/src/logic.rs",
    "crates/netsim/src/link.rs",
    "crates/netsim/src/slab.rs",
    "crates/netsim/src/telemetry.rs",
    "crates/corelite/src/edge.rs",
    "crates/corelite/src/router.rs",
    "crates/csfq/src/core.rs",
    "crates/csfq/src/edge.rs",
    "crates/baselines/src/red.rs",
    "crates/baselines/src/fred.rs",
    "crates/baselines/src/greedy.rs",
];

/// Modules holding per-id state that the dispatch loop reads or writes
/// per event (or per epoch): a tree/hash map keyed by one of the dense
/// id types here trades O(1) slab access for pointer chasing and
/// per-insert allocation, so the `dense-state` rule steers these to
/// `netsim::slab::DenseMap`. FRED's deliberate per-flow table is
/// allowlisted in `simlint.toml`, not exempted here.
const DENSE_STATE_MODULES: &[&str] = &[
    "crates/netsim/src/network.rs",
    "crates/netsim/src/logic.rs",
    "crates/netsim/src/link.rs",
    "crates/netsim/src/monitor.rs",
    "crates/netsim/src/slab.rs",
    "crates/corelite/src/edge.rs",
    "crates/corelite/src/router.rs",
    "crates/corelite/src/gateway.rs",
    "crates/corelite/src/aggregate.rs",
    "crates/corelite/src/controller.rs",
    "crates/csfq/src/core.rs",
    "crates/csfq/src/edge.rs",
    "crates/baselines/src/red.rs",
    "crates/baselines/src/fred.rs",
    "crates/baselines/src/greedy.rs",
];

/// Modules with per-epoch loops over recycled flow tables. Under churn
/// a `0..key_bound()` index scan costs O(slots ever used) per epoch and
/// touches retired occupants, where `ActiveSet` iteration is O(active
/// flows) in the same ascending-index order. Link tables never recycle
/// their slots, so per-link scans (the core router's) stay off this
/// list.
const FLOW_LIFECYCLE_MODULES: &[&str] = &[
    "crates/corelite/src/edge.rs",
    "crates/corelite/src/gateway.rs",
    "crates/corelite/src/aggregate.rs",
    "crates/csfq/src/edge.rs",
];

/// The dense id types whose keyed maps belong in the slab.
const DENSE_ID_TYPES: &[&str] = &["FlowId", "NodeId", "LinkId"];

/// Function names that run per event (or per epoch) in a hot-path
/// module. The `hot-alloc` rule applies only inside these bodies, so
/// constructors and report/setup code may allocate freely.
const HOT_FNS: &[&str] = &[
    // netsim dispatch internals.
    "run_until",
    "dispatch",
    "handle_arrive",
    "handle_tx_done",
    "with_logic",
    "apply_action",
    "push_control",
    "record_drop",
    // Per-packet link operations.
    "offer",
    "sync",
    "queue_len",
    // Per-event slab accessors (netsim::slab): growth is amortized via
    // resize_with, everything else must stay allocation-free.
    "insert",
    "remove",
    "entry_or_insert_with",
    "clear",
    "retain",
    // RouterLogic callbacks (on_start included: helpers reached from it
    // are usually shared with the per-packet path).
    "on_start",
    "on_packet",
    "on_timer",
    "on_control",
    "on_flow_start",
    "on_flow_stop",
    // Discipline helpers on the emit/adapt path.
    "handle_emit",
    "ensure_emission",
    "schedule_next",
    "run_epoch",
    "adapt_all",
    // Telemetry: every per-epoch publish lands here; the zero-alloc
    // contract (ISSUE 5) extends to probe recording.
    "record",
    "publish",
];

/// Collection types whose `<FlowId, …>` instantiation is per-flow state.
const KEYED_COLLECTIONS: &[&str] = &[
    "HashMap", "BTreeMap", "HashSet", "BTreeSet", "IndexMap", "VecDeque",
];

/// Hash-based collections with nondeterministic iteration order.
const HASH_COLLECTIONS: &[&str] = &[
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "AHashMap",
    "AHashSet",
    "IndexMap",
    "IndexSet",
    "DashMap",
    "DashSet",
];

/// RNG crates whose mere import makes runs irreproducible across
/// toolchains (this repo hand-rolls `DetRng` instead).
const RNG_CRATES: &[&str] = &[
    "rand",
    "rand_core",
    "rand_chacha",
    "rand_distr",
    "rand_pcg",
    "rand_xoshiro",
    "fastrand",
    "oorandom",
    "getrandom",
];

/// How a file is treated by path-scoped rules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileClass {
    /// Core-router module: the `core-state` rule applies.
    pub core_module: bool,
    /// netsim event-loop module: the `panic-path` rule applies.
    pub event_loop: bool,
    /// Dispatch/discipline module: the `hot-alloc` rule applies inside
    /// its per-event functions.
    pub hot_path: bool,
    /// Per-id state module: the `dense-state` rule applies.
    pub dense_state: bool,
    /// Per-epoch flow-table module: the `flow-lifecycle` rule applies.
    pub flow_lifecycle: bool,
    /// Test code (integration test file): `float-eq` does not apply.
    pub is_test: bool,
}

/// Classifies `rel` (workspace-relative path with `/` separators).
///
/// Lint fixtures under `simlint/fixtures/` classify by filename prefix
/// (`core_state_*` as a core module, `panic_path_*` as an event-loop
/// module, `hot_alloc_*` as a hot-path module, `dense_state_*` as a
/// per-id state module, `flow_lifecycle_*` as a per-epoch flow-table
/// module) so the fixtures exercise the path-scoped rules without
/// masquerading as real tree paths.
pub fn classify(rel: &str) -> FileClass {
    if let Some(name) = rel
        .contains("simlint/fixtures/")
        .then(|| rel.rsplit('/').next().unwrap_or(rel))
    {
        return FileClass {
            core_module: name.starts_with("core_state"),
            event_loop: name.starts_with("panic_path"),
            hot_path: name.starts_with("hot_alloc"),
            dense_state: name.starts_with("dense_state"),
            flow_lifecycle: name.starts_with("flow_lifecycle"),
            is_test: false,
        };
    }
    FileClass {
        core_module: CORE_MODULES.contains(&rel),
        event_loop: EVENT_LOOP_MODULES.contains(&rel),
        hot_path: HOT_PATH_MODULES.contains(&rel),
        dense_state: DENSE_STATE_MODULES.contains(&rel),
        flow_lifecycle: FLOW_LIFECYCLE_MODULES.contains(&rel),
        is_test: rel.starts_with("tests/") || rel.contains("/tests/"),
    }
}

/// Lints `src` as file `rel` classified as `class`, honoring inline
/// `simlint: allow(...)` comments and the `allow` config.
pub fn scan_source(rel: &str, src: &str, class: FileClass, allow: &Allowlist) -> Vec<Violation> {
    let lexed = lex(src);
    let test_ranges = cfg_test_ranges(&lexed.tokens);
    let hot_ranges = if class.hot_path {
        hot_fn_ranges(&lexed.tokens)
    } else {
        Vec::new()
    };
    let mut found = Vec::new();
    let toks = &lexed.tokens;

    let ident = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let op = |i: usize, want: &str| matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Op(o)) if *o == want);

    for i in 0..toks.len() {
        let line = toks[i].line;
        match &toks[i].tok {
            Tok::Ident(name) => {
                // core-state: `BTreeMap<FlowId, …>` (optionally with a
                // turbofish) or `Vec<(FlowId, …)>` in a core module.
                if class.core_module {
                    let mut j = i + 1;
                    if op(j, "::") {
                        j += 1; // turbofish `BTreeMap::<FlowId, _>`
                    }
                    if op(j, "<") {
                        let keyed = KEYED_COLLECTIONS.contains(&name.as_str())
                            && ident(j + 1) == Some("FlowId");
                        let tupled =
                            name == "Vec" && op(j + 1, "(") && ident(j + 2) == Some("FlowId");
                        if keyed || tupled {
                            found.push(Violation {
                                file: rel.to_owned(),
                                line,
                                rule: "core-state",
                                message: format!(
                                    "per-flow state `{name}<FlowId, …>` in a core-router module; \
                                     cores must stay stateless (paper §2–3)"
                                ),
                            });
                        }
                    }
                }
                // dense-state: a tree/hash map keyed by a dense id type
                // in a hot-path state module. Tests may model with maps
                // (the DenseMap property tests deliberately do).
                if class.dense_state
                    && !class.is_test
                    && !in_ranges(&test_ranges, line)
                    && matches!(name.as_str(), "BTreeMap" | "HashMap")
                {
                    let mut j = i + 1;
                    if op(j, "::") {
                        j += 1; // turbofish `BTreeMap::<FlowId, _>`
                    }
                    if op(j, "<") {
                        if let Some(key) = ident(j + 1).filter(|k| DENSE_ID_TYPES.contains(k)) {
                            found.push(Violation {
                                file: rel.to_owned(),
                                line,
                                rule: "dense-state",
                                message: format!(
                                    "`{name}<{key}, …>` in a hot-path module; id-keyed state \
                                     belongs in `netsim::slab::DenseMap` (O(1) index access, \
                                     id-ordered iteration, allocation-free reuse)"
                                ),
                            });
                        }
                    }
                }
                // hash-collections: any mention as an identifier.
                if HASH_COLLECTIONS.contains(&name.as_str()) {
                    found.push(Violation {
                        file: rel.to_owned(),
                        line,
                        rule: "hash-collections",
                        message: format!(
                            "`{name}` iterates in nondeterministic order, breaking byte-identical \
                             replay; use BTreeMap/BTreeSet"
                        ),
                    });
                }
                // wall-clock: `Instant::now` or any `SystemTime`.
                let wall = (name == "Instant" && op(i + 1, "::") && ident(i + 2) == Some("now"))
                    || name == "SystemTime";
                if wall {
                    found.push(Violation {
                        file: rel.to_owned(),
                        line,
                        rule: "wall-clock",
                        message: "wall-clock time in simulation code breaks deterministic replay; \
                                  use sim_core::time::SimTime"
                            .to_owned(),
                    });
                }
                // thread-spawn: `std::thread` or `thread::{spawn,scope,…}`.
                let threaded = (name == "std" && op(i + 1, "::") && ident(i + 2) == Some("thread"))
                    || (name == "thread"
                        && op(i + 1, "::")
                        && matches!(
                            ident(i + 2),
                            Some("spawn" | "scope" | "Builder" | "available_parallelism")
                        ))
                    || name == "rayon";
                if threaded {
                    found.push(Violation {
                        file: rel.to_owned(),
                        line,
                        rule: "thread-spawn",
                        message: "threads outside scenarios::exec/bench break deterministic \
                                  event ordering"
                            .to_owned(),
                    });
                }
                // rand-import: any mention of an external RNG crate.
                if RNG_CRATES.contains(&name.as_str()) {
                    found.push(Violation {
                        file: rel.to_owned(),
                        line,
                        rule: "rand-import",
                        message: format!(
                            "external RNG `{name}` is nondeterministic across toolchains; use \
                             sim_core::rng::DetRng streams"
                        ),
                    });
                }
                // panic-path: `.unwrap()` in an event-loop module.
                if class.event_loop
                    && name == "unwrap"
                    && i > 0
                    && op(i - 1, ".")
                    && op(i + 1, "(")
                    && op(i + 2, ")")
                {
                    found.push(Violation {
                        file: rel.to_owned(),
                        line,
                        rule: "panic-path",
                        message: "bare unwrap() in the event-loop hot path; use expect() naming \
                                  the violated invariant so a panic in a million-event run is \
                                  diagnosable"
                            .to_owned(),
                    });
                }
                // flow-lifecycle: a `.key_bound()` call in a per-epoch
                // discipline module. Flow slots are recycled under
                // churn, so an index scan walks every slot ever used
                // and reads retired occupants; tests may scan the whole
                // table to cross-check the active set.
                if class.flow_lifecycle
                    && !class.is_test
                    && !in_ranges(&test_ranges, line)
                    && name == "key_bound"
                    && i > 0
                    && op(i - 1, ".")
                    && op(i + 1, "(")
                {
                    found.push(Violation {
                        file: rel.to_owned(),
                        line,
                        rule: "flow-lifecycle",
                        message: "`0..key_bound()`-style slot scan in a per-epoch discipline \
                                  module; flow slots are recycled under churn, so iterate the \
                                  `ActiveSet` (same ascending-index order, O(active flows) per \
                                  epoch) or justify with `simlint: allow(flow-lifecycle)`"
                            .to_owned(),
                    });
                }
                // hot-alloc: a fresh heap allocation inside a per-event
                // function of a dispatch/discipline module. `Vec::<` is
                // the turbofish constructor form; `Vec` as a plain type
                // annotation has no `::` and is not flagged.
                if class.hot_path
                    && !class.is_test
                    && !in_ranges(&test_ranges, line)
                    && in_ranges(&hot_ranges, line)
                {
                    let alloc = if name == "vec" && op(i + 1, "!") {
                        Some("vec![…]")
                    } else if name == "Vec"
                        && op(i + 1, "::")
                        && (ident(i + 2) == Some("new") || op(i + 2, "<"))
                    {
                        Some("Vec::new()")
                    } else if name == "Box"
                        && op(i + 1, "::")
                        && (ident(i + 2) == Some("new") || op(i + 2, "<"))
                    {
                        Some("Box::new(…)")
                    } else if name == "to_vec" && i > 0 && op(i - 1, ".") && op(i + 1, "(") {
                        Some(".to_vec()")
                    } else {
                        None
                    };
                    if let Some(what) = alloc {
                        found.push(Violation {
                            file: rel.to_owned(),
                            line,
                            rule: "hot-alloc",
                            message: format!(
                                "`{what}` allocates on the per-event hot path, breaking the \
                                 engine's zero-alloc dispatch contract; reuse a preallocated \
                                 buffer (ActionBuf-style, DESIGN.md §\"Engine performance\") or \
                                 justify with `simlint: allow(hot-alloc)`"
                            ),
                        });
                    }
                }
            }
            // float-eq: `==`/`!=` with a float-literal operand or a
            // `.fract()` receiver, outside tests.
            Tok::Op(o @ ("==" | "!="))
                if !class.is_test && !in_ranges(&test_ranges, line) && float_operand(toks, i) =>
            {
                found.push(Violation {
                    file: rel.to_owned(),
                    line,
                    rule: "float-eq",
                    message: format!(
                        "exact `{o}` on a floating-point value; use an epsilon or ordered \
                         comparison, or justify with `simlint: allow(float-eq)`"
                    ),
                });
            }
            _ => {}
        }
    }
    suppress(found, &lexed, allow)
}

/// True when the `==`/`!=` at `i` has a float operand we can see
/// lexically: a float literal on either side (allowing unary minus), or
/// a `.fract()` call immediately before it.
fn float_operand(toks: &[Token], i: usize) -> bool {
    if i > 0 && toks[i - 1].tok == Tok::Float {
        return true;
    }
    let next = match toks.get(i + 1).map(|t| &t.tok) {
        Some(Tok::Op("-")) => toks.get(i + 2).map(|t| &t.tok),
        t => t,
    };
    if next == Some(&Tok::Float) {
        return true;
    }
    // `x.fract() ==` lexes as … Ident(fract) ( ) ==
    i >= 3
        && matches!(&toks[i - 3].tok, Tok::Ident(s) if s == "fract")
        && toks[i - 2].tok == Tok::Op("(")
        && toks[i - 1].tok == Tok::Op(")")
}

/// Line ranges covered by `#[cfg(test)]` items (typically `mod tests`),
/// found by brace-matching after the attribute.
fn cfg_test_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].tok == Tok::Op("#")
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Op("[")))
        {
            // Scan the attribute for `cfg` … `test` before its `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut saw_cfg = false;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < toks.len() && depth > 0 {
                match &toks[j].tok {
                    Tok::Op("[") => depth += 1,
                    Tok::Op("]") => depth -= 1,
                    Tok::Ident(s) if s == "cfg" => saw_cfg = true,
                    Tok::Ident(s) if s == "test" => saw_test = true,
                    // `#[cfg(not(test))]` marks *live* code.
                    Tok::Ident(s) if s == "not" => saw_not = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_cfg && saw_test && !saw_not {
                // Skip any further attributes, then brace-match the item.
                while toks.get(j).map(|t| &t.tok) == Some(&Tok::Op("#"))
                    && toks.get(j + 1).map(|t| &t.tok) == Some(&Tok::Op("["))
                {
                    let mut d = 1usize;
                    j += 2;
                    while j < toks.len() && d > 0 {
                        match &toks[j].tok {
                            Tok::Op("[") => d += 1,
                            Tok::Op("]") => d -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                }
                let start = toks.get(j).map_or(0, |t| t.line);
                // Find the item's opening brace (a `;` first means a
                // braceless item like `#[cfg(test)] use …;`).
                while j < toks.len() && toks[j].tok != Tok::Op("{") && toks[j].tok != Tok::Op(";") {
                    j += 1;
                }
                if toks.get(j).map(|t| &t.tok) == Some(&Tok::Op("{")) {
                    let mut d = 1usize;
                    j += 1;
                    while j < toks.len() && d > 0 {
                        match &toks[j].tok {
                            Tok::Op("{") => d += 1,
                            Tok::Op("}") => d -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                }
                let end = toks.get(j.saturating_sub(1)).map_or(u32::MAX, |t| t.line);
                ranges.push((start, end));
                i = j;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Line ranges covered by the bodies of [`HOT_FNS`] functions, found by
/// brace-matching from each `fn <name>` to its closing brace. Trait
/// declarations without a body (`fn on_packet(…);`) contribute nothing.
fn hot_fn_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_hot_fn = matches!(&toks[i].tok, Tok::Ident(s) if s == "fn")
            && matches!(
                toks.get(i + 1).map(|t| &t.tok),
                Some(Tok::Ident(s)) if HOT_FNS.contains(&s.as_str())
            );
        if !is_hot_fn {
            i += 1;
            continue;
        }
        let start = toks[i].line;
        // Scan past the signature to the body's opening brace; a `;`
        // first means a bodiless trait-method declaration.
        let mut j = i + 2;
        while j < toks.len() && toks[j].tok != Tok::Op("{") && toks[j].tok != Tok::Op(";") {
            j += 1;
        }
        if toks.get(j).map(|t| &t.tok) == Some(&Tok::Op("{")) {
            let mut depth = 1usize;
            j += 1;
            while j < toks.len() && depth > 0 {
                match &toks[j].tok {
                    Tok::Op("{") => depth += 1,
                    Tok::Op("}") => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let end = toks.get(j.saturating_sub(1)).map_or(u32::MAX, |t| t.line);
            ranges.push((start, end));
        }
        i = j;
    }
    ranges
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Drops violations covered by an inline allow (same line or the line
/// directly above) or by the config allowlist for the file's path.
fn suppress(found: Vec<Violation>, lexed: &Lexed, allow: &Allowlist) -> Vec<Violation> {
    found
        .into_iter()
        .filter(|v| {
            let inline = lexed
                .allows
                .iter()
                .any(|a| a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line));
            !inline && !allow.allows(v.rule, &v.file)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, src: &str) -> Vec<Violation> {
        scan_source(rel, src, classify(rel), &Allowlist::default())
    }

    #[test]
    fn classify_paths() {
        assert!(classify("crates/corelite/src/router.rs").core_module);
        assert!(classify("crates/netsim/src/network.rs").event_loop);
        assert!(classify("tests/paper_topology.rs").is_test);
        assert!(classify("crates/netsim/tests/properties.rs").is_test);
        assert!(!classify("crates/netsim/src/flow.rs").core_module);
        assert!(classify("crates/corelite/src/edge.rs").hot_path);
        assert!(!classify("crates/netsim/src/flow.rs").hot_path);
        assert!(classify("crates/simlint/fixtures/core_state_bad.rs").core_module);
        assert!(classify("crates/simlint/fixtures/panic_path_bad.rs").event_loop);
        assert!(classify("crates/simlint/fixtures/hot_alloc_bad.rs").hot_path);
        assert!(classify("crates/corelite/src/gateway.rs").flow_lifecycle);
        assert!(!classify("crates/corelite/src/router.rs").flow_lifecycle);
        assert!(classify("crates/simlint/fixtures/flow_lifecycle_bad.rs").flow_lifecycle);
    }

    #[test]
    fn flowid_map_flagged_only_in_core_modules() {
        // Core modules are also dense-state modules, so filter by rule:
        // this test pins the *core-state* scoping.
        let src = "struct S { m: BTreeMap<FlowId, f64> }";
        let core = scan("crates/csfq/src/core.rs", src);
        assert_eq!(
            core.iter().filter(|v| v.rule == "core-state").count(),
            1,
            "{core:?}"
        );
        let edge = scan("crates/csfq/src/edge.rs", src);
        assert!(edge.iter().all(|v| v.rule != "core-state"), "{edge:?}");
    }

    #[test]
    fn flowid_tuple_vec_and_turbofish_flagged() {
        let v = scan(
            "crates/corelite/src/router.rs",
            "let v: Vec<(FlowId, f64)> = Vec::new(); let m = BTreeMap::<FlowId, u8>::new();",
        );
        assert_eq!(
            v.iter().filter(|v| v.rule == "core-state").count(),
            2,
            "{v:?}"
        );
    }

    #[test]
    fn linkid_map_in_core_is_fine() {
        // Per-link state does not violate core-statelessness (it does
        // trip dense-state, which wants it slab-backed — a separate
        // concern).
        let v = scan(
            "crates/corelite/src/router.rs",
            "struct S { m: BTreeMap<LinkId, LinkState> }",
        );
        assert!(v.iter().all(|v| v.rule != "core-state"), "{v:?}");
    }

    #[test]
    fn id_keyed_map_flagged_in_dense_state_modules() {
        let src = "struct S { m: BTreeMap<NodeId, u32> }";
        let hot = scan("crates/corelite/src/controller.rs", src);
        assert_eq!(hot.len(), 1, "{hot:?}");
        assert_eq!(hot[0].rule, "dense-state");
        // Turbofish constructor form and every dense id type.
        let v = scan(
            "crates/csfq/src/edge.rs",
            "let m = BTreeMap::<LinkId, u8>::new();",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        // Outside the module list the rule is silent.
        let cold = scan("crates/netsim/src/flow.rs", src);
        assert!(cold.is_empty(), "{cold:?}");
        // Non-id keys are not the slab's business.
        let strings = scan(
            "crates/corelite/src/controller.rs",
            "struct S { counters: BTreeMap<String, f64> }",
        );
        assert!(strings.is_empty(), "{strings:?}");
    }

    #[test]
    fn id_keyed_map_in_cfg_test_mod_is_fine() {
        // The DenseMap property tests model against BTreeMap on purpose.
        let src = "#[cfg(test)]\nmod tests {\n struct M { m: BTreeMap<FlowId, u32> }\n}";
        let v = scan("crates/netsim/src/slab.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn key_bound_scan_flagged_only_in_flow_lifecycle_modules() {
        let src = "fn run_epoch(&mut self) { for i in 0..self.flows.key_bound() {} }";
        let v = scan("crates/corelite/src/edge.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "flow-lifecycle");
        // The core router's per-link scan is exempt: link slots are
        // never recycled, so an index scan there is exact.
        assert!(scan("crates/corelite/src/router.rs", src).is_empty());
        // Defining `key_bound` (slab.rs) is not calling it in a loop.
        let def = "pub fn key_bound(&self) -> usize { self.slots.len() }";
        assert!(scan("crates/corelite/src/gateway.rs", def).is_empty());
        // cfg(test) code may scan the whole table to cross-check the
        // active set, and an inline allow covers justified full scans.
        let test_src = "#[cfg(test)]\nmod tests {\n fn t() { for i in 0..m.key_bound() {} }\n}";
        assert!(scan("crates/corelite/src/gateway.rs", test_src).is_empty());
        let allowed = "// simlint: allow(flow-lifecycle) one-shot report\n\
                       for i in 0..self.flows.key_bound() {}";
        assert!(scan("crates/csfq/src/edge.rs", allowed).is_empty());
    }

    #[test]
    fn hash_collections_flagged_everywhere() {
        let v = scan(
            "crates/netsim/src/flow.rs",
            "use std::collections::HashMap;",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "hash-collections");
    }

    #[test]
    fn wall_clock_and_threads_flagged() {
        let v = scan(
            "crates/netsim/src/flow.rs",
            "let t = Instant::now(); std::thread::spawn(|| {});",
        );
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"wall-clock"), "{v:?}");
        assert!(rules.contains(&"thread-spawn"), "{v:?}");
    }

    #[test]
    fn instant_import_alone_is_fine() {
        let v = scan("crates/netsim/src/flow.rs", "use std::time::Instant;");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn rand_import_flagged() {
        let v = scan("crates/netsim/src/flow.rs", "use rand::Rng;");
        assert_eq!(v[0].rule, "rand-import");
    }

    #[test]
    fn float_eq_literal_both_sides_and_fract() {
        let v = scan(
            "crates/sim-core/src/stats.rs",
            "if q == 0.0 {} if 1.0 != r {} if v.fract() == z {}",
        );
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "float-eq"));
    }

    #[test]
    fn int_eq_and_epsilon_compare_are_fine() {
        let v = scan(
            "crates/sim-core/src/stats.rs",
            "if n == 0 {} if (a - b).abs() < 1e-9 {} if q <= 0.0 {}",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_eq_skipped_in_test_files_and_cfg_test_mods() {
        assert!(scan("tests/x.rs", "assert!(a == 0.0);").is_empty());
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { assert!(a == 0.0); }\n}";
        let v = scan("crates/sim-core/src/stats.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_eq_before_cfg_test_mod_still_flagged() {
        let src = "fn live(a: f64) -> bool { a == 0.0 }\n#[cfg(test)]\nmod tests {}";
        let v = scan("crates/sim-core/src/stats.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn bare_unwrap_flagged_only_in_event_loop() {
        let src = "let x = q.pop().unwrap();";
        assert_eq!(scan("crates/netsim/src/network.rs", src).len(), 1);
        assert!(scan("crates/netsim/src/flow.rs", src).is_empty());
        // expect() with a message and unwrap_or_else are fine.
        let ok = "q.pop().expect(\"queue invariant\"); v.unwrap_or_else(|| 0);";
        assert!(scan("crates/netsim/src/network.rs", ok).is_empty());
    }

    #[test]
    fn hot_alloc_flagged_only_in_hot_fns_of_hot_modules() {
        // Ranges are line-granular, so keep the fns on separate lines.
        let src = "impl L {\nfn on_packet(&mut self) { let v = vec![1]; }\n\
                   fn report(&self) { let v = vec![1]; }\n}";
        let v = scan("crates/netsim/src/network.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "hot-alloc");
        // Same source in a non-hot module is fine.
        assert!(scan("crates/netsim/src/flow.rs", src).is_empty());
    }

    #[test]
    fn hot_alloc_catches_every_pattern() {
        let src = "fn on_timer() { let a = Vec::new(); let b = Box::new(1); \
                   let c = s.to_vec(); let d = Vec::<u8>::new(); }";
        let v = scan("crates/corelite/src/edge.rs", src);
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "hot-alloc"));
    }

    #[test]
    fn hot_alloc_ignores_types_setup_and_tests() {
        // A `Vec<…>` type annotation in a hot fn is not an allocation.
        let ty = "fn on_packet(&mut self, xs: &Vec<u64>) -> Vec<u64> { xs.clone() }";
        assert!(scan("crates/netsim/src/network.rs", ty).is_empty());
        // Constructors and cfg(test) code may allocate.
        let setup = "fn new() -> Self { L { buf: Vec::new() } }\n\
                     #[cfg(test)]\nmod tests { fn on_packet() { let v = vec![1]; } }";
        assert!(scan("crates/netsim/src/network.rs", setup).is_empty());
        // Inline allow suppresses a justified site.
        let allowed =
            "fn on_control(&mut self) {\n// simlint: allow(hot-alloc) rare reconfiguration\n\
             let v = Vec::new();\n}";
        assert!(scan("crates/netsim/src/network.rs", allowed).is_empty());
    }

    #[test]
    fn inline_allow_suppresses_same_and_next_line() {
        let same = "let t = Instant::now(); // simlint: allow(wall-clock) bench timing";
        assert!(scan("crates/x/src/a.rs", same).is_empty());
        let above = "// simlint: allow(wall-clock) bench timing\nlet t = Instant::now();";
        assert!(scan("crates/x/src/a.rs", above).is_empty());
        let wrong_rule = "let t = Instant::now(); // simlint: allow(float-eq)";
        assert_eq!(scan("crates/x/src/a.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn config_allowlist_suppresses_by_path_prefix() {
        let mut allow = Allowlist::default();
        allow.insert("wall-clock", "crates/bench");
        let v = scan_source(
            "crates/bench/src/lib.rs",
            "let t = Instant::now();",
            FileClass::default(),
            &allow,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn comments_never_trigger_rules() {
        let v = scan(
            "crates/netsim/src/flow.rs",
            "// HashMap Instant::now rand\n/* std::thread */ fn f() {}",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
