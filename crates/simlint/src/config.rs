//! The checked-in allowlist (`simlint.toml`), parsed with a hand-rolled
//! TOML-subset reader: `[allow]` tables whose keys are rule names and
//! whose values are arrays of workspace-relative path prefixes.
//!
//! ```toml
//! [allow]
//! core-state = [
//!     "crates/baselines/src/fred.rs", # per-flow state is FRED's point
//! ]
//! thread-spawn = ["crates/scenarios/src/exec.rs"]
//! ```
//!
//! Only this shape is supported (no nested tables, no non-string
//! values); anything else is a hard error so typos cannot silently
//! disable enforcement.

use std::collections::BTreeMap;

use crate::rules::is_known_rule;

/// Per-rule path-prefix allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: BTreeMap<String, Vec<String>>,
}

impl Allowlist {
    /// Adds one `rule → path-prefix` entry (used by tests and the
    /// parser).
    pub fn insert(&mut self, rule: &str, prefix: &str) {
        self.entries
            .entry(rule.to_owned())
            .or_default()
            .push(prefix.trim_end_matches('/').to_owned());
    }

    /// Iterates every `(rule, path-prefix)` entry, in rule order — used
    /// by `validate_allowlist` to reject stale prefixes.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries
            .iter()
            .flat_map(|(rule, prefixes)| prefixes.iter().map(move |p| (rule.as_str(), p.as_str())))
    }

    /// True when `rel` is allowlisted for `rule`: an entry equals the
    /// path or is a directory prefix of it.
    pub fn allows(&self, rule: &str, rel: &str) -> bool {
        self.entries.get(rule).is_some_and(|prefixes| {
            prefixes
                .iter()
                .any(|p| rel == p || rel.starts_with(&format!("{p}/")))
        })
    }

    /// Parses the `simlint.toml` text. Errors carry the offending line
    /// number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut out = Allowlist::default();
        let mut in_allow = false;
        let mut pending: Option<(String, String, usize)> = None; // key, buffered array text, start line
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_owned();
            if let Some((key, mut buf, start)) = pending.take() {
                // Continuing a multi-line array.
                buf.push(' ');
                buf.push_str(&line);
                if line.contains(']') {
                    out.finish_entry(&key, &buf, start)?;
                } else {
                    pending = Some((key, buf, start));
                }
                continue;
            }
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let section = section
                    .strip_suffix(']')
                    .ok_or_else(|| format!("simlint.toml:{lineno}: unterminated section header"))?
                    .trim();
                in_allow = section == "allow";
                if !in_allow {
                    return Err(format!(
                        "simlint.toml:{lineno}: unknown section `[{section}]` (only `[allow]` is supported)"
                    ));
                }
                continue;
            }
            if !in_allow {
                return Err(format!(
                    "simlint.toml:{lineno}: entry outside an `[allow]` section"
                ));
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                format!("simlint.toml:{lineno}: expected `rule = [\"path\", ...]`")
            })?;
            let key = key.trim().trim_matches('"').to_owned();
            let value = value.trim().to_owned();
            if !value.starts_with('[') {
                return Err(format!(
                    "simlint.toml:{lineno}: value for `{key}` must be an array of path strings"
                ));
            }
            if value.contains(']') {
                out.finish_entry(&key, &value, lineno)?;
            } else {
                pending = Some((key, value, lineno));
            }
        }
        if let Some((key, _, start)) = pending {
            return Err(format!(
                "simlint.toml:{start}: unterminated array for `{key}`"
            ));
        }
        Ok(out)
    }

    fn finish_entry(&mut self, key: &str, array: &str, lineno: usize) -> Result<(), String> {
        if !is_known_rule(key) {
            return Err(format!(
                "simlint.toml:{lineno}: unknown rule `{key}` (run `simlint --list-rules`)"
            ));
        }
        let inner = array
            .trim()
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| format!("simlint.toml:{lineno}: malformed array for `{key}`"))?;
        for item in inner.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue; // trailing comma
            }
            let path = item
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| {
                    format!("simlint.toml:{lineno}: array items must be \"quoted paths\"")
                })?;
            self.insert(key, path);
        }
        Ok(())
    }
}

/// Drops a `#`-comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_and_multiline_arrays() {
        let text = r#"
# repo allowlist
[allow]
core-state = ["crates/baselines/src/fred.rs"] # FRED is per-flow by design
thread-spawn = [
    "crates/scenarios/src/exec.rs",
    "crates/bench",
]
"#;
        let a = Allowlist::parse(text).expect("valid config must parse");
        assert!(a.allows("core-state", "crates/baselines/src/fred.rs"));
        assert!(!a.allows("core-state", "crates/baselines/src/red.rs"));
        assert!(a.allows("thread-spawn", "crates/bench/src/lib.rs"));
        assert!(!a.allows("thread-spawn", "crates/benchmarks/src/lib.rs"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let err = Allowlist::parse("[allow]\nflaot-eq = [\"x\"]\n").expect_err("typo must error");
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn unknown_section_is_an_error() {
        let err = Allowlist::parse("[deny]\n").expect_err("section must error");
        assert!(err.contains("unknown section"), "{err}");
    }

    #[test]
    fn hash_inside_quotes_is_not_a_comment() {
        let a = Allowlist::parse("[allow]\nfloat-eq = [\"crates/a#b\"]\n")
            .expect("quoted # must parse");
        assert!(a.allows("float-eq", "crates/a#b"));
    }

    #[test]
    fn empty_config_allows_nothing() {
        let a = Allowlist::parse("").expect("empty config is valid");
        assert!(!a.allows("float-eq", "crates/x.rs"));
    }
}
