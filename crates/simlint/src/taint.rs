//! The workspace-level rules: taint reachability and RNG stream
//! hygiene. Both need every file's parsed symbols at once, so they run
//! after the per-file token scan, over the whole batch being linted.
//!
//! **Taint** makes the four determinism rules transitive. The per-file
//! scan reports a wall-clock read (say) *at its site*; an inline allow
//! there is a statement about the site's own context — "bench timing",
//! "one-shot setup". It says nothing about reachability: if the replay
//! path can call into that function, the nondeterminism still lands in
//! the simulation. So the taint pass walks the call graph from the
//! replay roots and re-reports any *allowed* sink a root can reach,
//! with the full root→sink call chain in the message. Unallowed sinks
//! are the base rule's job — taint never double-reports them.
//!
//! **RNG stream hygiene** checks `DetRng::stream`/`substream` labels:
//! streams are keyed by `(seed, label)`, so two live call sites sharing
//! a label draw identical sequences — silently correlated randomness.
//! Duplicate literal labels are errors anywhere outside test code;
//! non-literal labels are errors in replay-path crates, where labels
//! must stay auditable by grep.

use std::collections::BTreeMap;

use crate::config::Allowlist;
use crate::graph::{CallGraph, CrateDeps};
use crate::lexer::Lexed;
use crate::parser::FileSymbols;
use crate::rules::{FileClass, Violation};

/// One file's full analysis state, handed to the workspace pass by
/// [`crate::lint_paths`].
pub(crate) struct AnalyzedFile {
    pub rel: String,
    pub class: FileClass,
    pub lexed: Lexed,
    pub symbols: FileSymbols,
    /// Pre-suppression findings from the per-file token scan: an
    /// allowed wall-clock read is invisible in the suppressed output
    /// but is still a taint sink.
    pub raw: Vec<Violation>,
}

/// The determinism rules with a transitive form: `(base, taint)`.
const TAINTED: &[(&str, &str)] = &[
    ("wall-clock", "taint-wall-clock"),
    ("thread-spawn", "taint-thread-spawn"),
    ("rand-import", "taint-rand-import"),
    ("hash-collections", "taint-hash-collections"),
];

/// Modules whose every (non-test) function is a replay-path root: the
/// netsim dispatch loop and its event queue, churn/fault schedule
/// application, and the sharded executor's worker/merge path — the code
/// that runs between `run_until` (or a shard epoch) and each
/// `RouterLogic` callback.
const ROOT_MODULES: &[&str] = &[
    "crates/netsim/src/network.rs",
    "crates/netsim/src/logic.rs",
    "crates/netsim/src/link.rs",
    "crates/netsim/src/churn.rs",
    "crates/netsim/src/fault.rs",
    "crates/netsim/src/shard.rs",
    // The ack-clocked transport: pump/retransmit/RTO helpers run
    // between dispatch and the RouterLogic callbacks, and the RTT
    // estimator feeds the replayed control loop directly.
    "crates/netsim/src/transport.rs",
    "crates/sim-core/src/event.rs",
];

/// Fixture stand-in for the sharded executor: fixture files with this
/// prefix are treated as replay roots exactly like
/// `crates/netsim/src/shard.rs`, so the shard-worker taint behaviour
/// has its own bad/ok pair (the walker excludes `fixtures/` from tree
/// scans; the fixture tests lint them one-by-one).
const ROOT_FIXTURE_PREFIX: &str = "crates/simlint/fixtures/shard_worker_";

/// Traits the engine dispatches into dynamically. The call graph cannot
/// resolve trait-object calls (no type inference), so every impl of
/// these traits is a root instead — the over-approximation that keeps
/// the analysis sound for replay code (DESIGN.md §15).
const ROOT_TRAITS: &[&str] = &["RouterLogic", "Discipline"];

const RNG_RULE: &str = "rng-stream-hygiene";

/// True when `lexed` carries an inline `simlint: allow(rule)` covering
/// `line` (same line or the line directly above — the same contract the
/// per-file scan uses).
fn inline_allowed(lexed: &Lexed, rule: &str, line: u32) -> bool {
    lexed
        .allows
        .iter()
        .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
}

/// Runs both workspace rules over the analyzed batch. Output is sorted
/// and deduplicated by the caller along with the per-file findings.
pub(crate) fn workspace_pass(
    files: &[AnalyzedFile],
    deps: &CrateDeps,
    allow: &Allowlist,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let lexed_of: BTreeMap<&str, &Lexed> =
        files.iter().map(|f| (f.rel.as_str(), &f.lexed)).collect();

    // The call graph covers live code only: integration-test files
    // exercise the replay path but are not part of it.
    let mut graph_files: Vec<(String, FileSymbols)> = files
        .iter()
        .filter(|f| !f.class.is_test)
        .map(|f| (f.rel.clone(), f.symbols.clone()))
        .collect();
    graph_files.sort_by(|a, b| a.0.cmp(&b.0));
    let graph = CallGraph::build(&graph_files, deps);

    let roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| !n.def.in_cfg_test)
        .filter(|(_, n)| {
            ROOT_MODULES.contains(&n.file.as_str())
                || n.file.starts_with(ROOT_FIXTURE_PREFIX)
                || n.def
                    .trait_name
                    .as_deref()
                    .is_some_and(|t| ROOT_TRAITS.contains(&t))
        })
        .map(|(id, _)| id)
        .collect();
    let parent = graph.reachable_from(&roots);

    // Taint: every *allowed* determinism sink whose enclosing fn a
    // replay root reaches. Top-level sinks (a `use` declaration) have
    // no enclosing fn and stay the base rule's business.
    for f in files.iter().filter(|f| !f.class.is_test) {
        for v in &f.raw {
            let Some(&(base, taint_rule)) = TAINTED.iter().find(|&&(b, _)| b == v.rule) else {
                continue;
            };
            let base_allowed = inline_allowed(&f.lexed, base, v.line) || allow.allows(base, &f.rel);
            if !base_allowed {
                continue; // unallowed: the base rule already reports it
            }
            let Some(sink) = graph.enclosing_fn(&f.rel, v.line) else {
                continue;
            };
            if graph.nodes[sink].def.in_cfg_test || parent[sink].is_none() {
                continue;
            }
            let chain = graph.path_to(&parent, sink);
            // Path-aware suppression: a taint allow at the sink site,
            // on any function declaration along the chain, or a config
            // entry for any file on the chain.
            let suppressed = inline_allowed(&f.lexed, taint_rule, v.line)
                || allow.allows(taint_rule, &f.rel)
                || chain.iter().any(|&id| {
                    let n = &graph.nodes[id];
                    allow.allows(taint_rule, &n.file)
                        || lexed_of
                            .get(n.file.as_str())
                            .is_some_and(|lx| inline_allowed(lx, taint_rule, n.def.line))
                });
            if suppressed {
                continue;
            }
            let shown: Vec<String> = chain
                .iter()
                .map(|&id| {
                    let n = &graph.nodes[id];
                    format!("{} ({}:{})", n.def.name, n.file, n.def.line)
                })
                .collect();
            out.push(Violation {
                file: f.rel.clone(),
                line: v.line,
                rule: taint_rule,
                message: format!(
                    "`{base}` sink (allowed at its site) is reachable from a replay root; \
                     the allow justified the site, not its reachability — chain: {}",
                    shown.join(" → ")
                ),
            });
        }
    }

    // RNG stream hygiene over live call sites, in deterministic
    // (file, line) order so "first use" is stable across runs.
    let mut sites: Vec<(&AnalyzedFile, u32, &'static str, Option<&str>)> = Vec::new();
    for f in files.iter().filter(|f| !f.class.is_test) {
        for l in f.symbols.rng_labels.iter().filter(|l| !l.in_cfg_test) {
            sites.push((f, l.line, l.kind, l.label.as_deref()));
        }
    }
    sites.sort_by(|a, b| (a.0.rel.as_str(), a.1).cmp(&(b.0.rel.as_str(), b.1)));

    let rng_allowed = |f: &AnalyzedFile, line: u32| {
        inline_allowed(&f.lexed, RNG_RULE, line) || allow.allows(RNG_RULE, &f.rel)
    };
    for &(f, line, kind, label) in &sites {
        if label.is_none() && f.class.replay && !rng_allowed(f, line) {
            out.push(Violation {
                file: f.rel.clone(),
                line,
                rule: RNG_RULE,
                message: format!(
                    "`DetRng::{kind}` label is not a string literal; replay-path stream \
                     labels must be grep-auditable literals"
                ),
            });
        }
    }
    let mut first_site: BTreeMap<&str, (&str, u32)> = BTreeMap::new();
    for &(f, line, kind, label) in &sites {
        let Some(label) = label else { continue };
        match first_site.get(label) {
            None => {
                first_site.insert(label, (f.rel.as_str(), line));
            }
            Some(&(f0, l0)) if f0 == f.rel && l0 == line => {}
            Some(&(f0, l0)) => {
                if !rng_allowed(f, line) {
                    out.push(Violation {
                        file: f.rel.clone(),
                        line,
                        rule: RNG_RULE,
                        message: format!(
                            "duplicate `DetRng::{kind}` label \"{label}\" (first used at \
                             {f0}:{l0}); same-label streams draw identical sequences under \
                             one seed — pick a distinct label"
                        ),
                    });
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::rules::{classify, scan_tokens};

    fn analyze(rel: &str, src: &str) -> AnalyzedFile {
        let class = classify(rel);
        let lexed = lex(src);
        let raw = scan_tokens(rel, &lexed, class);
        let symbols = parse(&lexed);
        AnalyzedFile {
            rel: rel.to_owned(),
            class,
            lexed,
            symbols,
            raw,
        }
    }

    fn deps() -> CrateDeps {
        let mut d = CrateDeps::default();
        d.insert("sim_core", &[]);
        d.insert("netsim", &["sim_core"]);
        d.insert("bench", &["sim_core", "netsim"]);
        d
    }

    fn pass(files: &[AnalyzedFile]) -> Vec<Violation> {
        workspace_pass(files, &deps(), &Allowlist::default())
    }

    #[test]
    fn allowed_sink_two_calls_from_root_is_tainted() {
        // network.rs is a ROOT_MODULES file: `dispatch` is a root, and
        // the allowed Instant::now sits two calls away in another file.
        let root = analyze(
            "crates/netsim/src/network.rs",
            "use crate::flow::step;\nfn dispatch() { step(); }",
        );
        let helpers = analyze(
            "crates/netsim/src/flow.rs",
            "pub fn step() { stamp(); }\n\
             fn stamp() {\n\
             // simlint: allow(wall-clock) pretend this is justified\n\
             let t = Instant::now();\n\
             }",
        );
        let v = pass(&[root, helpers]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "taint-wall-clock");
        assert_eq!(v[0].file, "crates/netsim/src/flow.rs");
        assert_eq!(v[0].line, 4);
        assert!(
            v[0].message.contains("dispatch")
                && v[0].message.contains("step")
                && v[0].message.contains("stamp"),
            "chain must name root, middle and sink: {}",
            v[0].message
        );
    }

    #[test]
    fn unallowed_sink_is_the_base_rules_business() {
        let f = analyze(
            "crates/netsim/src/network.rs",
            "fn dispatch() { let t = Instant::now(); }",
        );
        let v = pass(&[f]);
        assert!(
            v.is_empty(),
            "no allow at the site → base rule reports, not taint: {v:?}"
        );
    }

    #[test]
    fn unreachable_sink_is_not_tainted() {
        // flow.rs is not a root module; nothing calls `island`.
        let f = analyze(
            "crates/netsim/src/flow.rs",
            "fn island() {\n// simlint: allow(wall-clock) unreferenced helper\n\
             let t = Instant::now();\n}",
        );
        let v = pass(&[f]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cross_file_reachability_through_use_import() {
        // A Discipline impl (trait root) in one file reaches an allowed
        // sink in another crate through a `use` import.
        let root = analyze(
            "crates/netsim/src/sched.rs",
            "use sim_core::clock::read_clock;\n\
             struct D;\n\
             impl Discipline for D { fn handle_emit(&self) { read_clock(); } }",
        );
        let sink = analyze(
            "crates/sim-core/src/clock.rs",
            "pub fn read_clock() {\n// simlint: allow(wall-clock) calibration\n\
             let t = Instant::now();\n}",
        );
        let v = pass(&[root, sink]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "taint-wall-clock");
        assert_eq!(v[0].file, "crates/sim-core/src/clock.rs");
    }

    #[test]
    fn taint_allow_at_sink_or_along_chain_suppresses() {
        let at_sink = analyze(
            "crates/netsim/src/network.rs",
            "fn dispatch() { stamp(); }\n\
             fn stamp() {\n\
             // simlint: allow(wall-clock) justified\n\
             let t = Instant::now(); // simlint: allow(taint-wall-clock) audited\n\
             }",
        );
        assert!(pass(&[at_sink]).is_empty());
        let mid_chain = analyze(
            "crates/netsim/src/network.rs",
            "fn dispatch() { stamp(); }\n\
             // simlint: allow(taint-wall-clock) audited: cold path\n\
             fn stamp() {\n\
             // simlint: allow(wall-clock) justified\n\
             let t = Instant::now();\n\
             }",
        );
        assert!(pass(&[mid_chain]).is_empty());
    }

    #[test]
    fn config_allow_for_a_chain_file_suppresses() {
        let f = analyze(
            "crates/netsim/src/network.rs",
            "fn dispatch() { stamp(); }\n\
             fn stamp() {\n// simlint: allow(wall-clock) justified\n\
             let t = Instant::now();\n}",
        );
        let mut allow = Allowlist::default();
        allow.insert("taint-wall-clock", "crates/netsim/src/network.rs");
        let v = workspace_pass(&[f], &deps(), &allow);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_test_roots_and_sinks_are_exempt() {
        let f = analyze(
            "crates/netsim/src/network.rs",
            "#[cfg(test)]\nmod tests {\n\
             fn dispatch() { stamp(); }\n\
             fn stamp() {\n// simlint: allow(wall-clock) test timing\n\
             let t = Instant::now();\n}\n\
             }",
        );
        let v = pass(&[f]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn duplicate_rng_labels_flag_later_sites_only() {
        let a = analyze(
            "crates/netsim/src/churn.rs",
            "fn setup(r: &DetRng) { let s = DetRng::stream(r, \"gaps\"); }",
        );
        let b = analyze(
            "crates/netsim/src/fault.rs",
            "fn setup(r: &DetRng) { let s = DetRng::stream(r, \"gaps\"); }",
        );
        let v = pass(&[a, b]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "rng-stream-hygiene");
        assert_eq!(v[0].file, "crates/netsim/src/fault.rs", "first use wins");
        assert!(v[0].message.contains("churn.rs:1"), "{}", v[0].message);
    }

    #[test]
    fn non_literal_label_flagged_only_on_replay_path() {
        let replay = analyze(
            "crates/netsim/src/churn.rs",
            "fn setup(r: &DetRng, name: &str) { let s = DetRng::stream(r, name); }",
        );
        let v = pass(&[replay]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("not a string literal"));
        // scenarios is not a replay crate: computed labels are fine.
        let outside = analyze(
            "crates/scenarios/src/sweep.rs",
            "fn setup(r: &DetRng, name: &str) { let s = DetRng::stream(r, name); }",
        );
        assert!(pass(&[outside]).is_empty());
    }

    #[test]
    fn rng_sites_in_tests_are_exempt() {
        // Reusing a label to prove stream identity is what RNG tests do.
        let f = analyze(
            "crates/sim-core/src/rng.rs",
            "#[cfg(test)]\nmod tests {\nfn t(r: &DetRng) {\n\
             let a = DetRng::stream(r, \"same\"); let b = DetRng::stream(r, \"same\");\n}\n}",
        );
        assert!(pass(&[f]).is_empty());
        let test_file = analyze(
            "crates/sim-core/tests/rng.rs",
            "fn t(r: &DetRng) { let a = DetRng::stream(r, \"x\"); let b = DetRng::stream(r, \"x\"); }",
        );
        assert!(pass(&[test_file]).is_empty());
    }
}
