//! Workspace discovery: finds the workspace root and enumerates the
//! `.rs` files the lint pass covers.

use std::path::{Path, PathBuf};

/// Directories never descended into. `fixtures` holds simlint's own
/// deliberately-violating snippets; they are linted one-by-one from the
//  fixture tests, never as part of a tree scan.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results"];

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start
        .canonicalize()
        .map_err(|e| format!("cannot resolve {}: {e}", start.display()))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace Cargo.toml found above {}",
                start.display()
            ));
        }
    }
}

/// All `.rs` files under `root`, as workspace-relative `/`-separated
/// paths, sorted for deterministic output.
pub fn collect_rs_files(root: &Path) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                walk(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("path {} escapes root: {e}", path.display()))?;
            out.push(rel_to_string(rel));
        }
    }
    Ok(())
}

/// Renders a relative path with `/` separators regardless of platform,
/// so rule scoping and allowlist prefixes are portable.
pub fn rel_to_string(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root must exist");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates/simlint").exists());
    }

    #[test]
    fn collects_sorted_rs_files_and_skips_fixtures() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root must exist");
        let files = collect_rs_files(&root).expect("walk must succeed");
        assert!(files.iter().any(|f| f == "crates/netsim/src/network.rs"));
        assert!(
            !files.iter().any(|f| f.contains("fixtures/")),
            "fixtures must be excluded from tree scans"
        );
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
