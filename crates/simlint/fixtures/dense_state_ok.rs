//! Negative fixture: slab-backed id-keyed state, string-keyed maps, and
//! a justified id-keyed map are all fine in a hot-path state module.
use std::collections::BTreeMap;

pub struct EdgeState {
    per_flow: netsim::slab::DenseMap<FlowId, f64>,
    // Counter names are strings, not dense ids: no slab to point at.
    counters: BTreeMap<String, f64>,
    // simlint: allow(dense-state) cold path, populated once at setup
    routes: BTreeMap<FlowId, Route>,
}
