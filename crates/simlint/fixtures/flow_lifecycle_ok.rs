//! Negative fixture: per-epoch iteration over the active set — O(active
//! flows), never touching retired slots — plus a justified one-shot
//! full scan under an inline allow.

impl EdgeState {
    pub fn run_epoch(&mut self) {
        for idx in self.active.iter() {
            self.adapt(idx);
        }
    }

    pub fn final_report(&self) -> usize {
        let mut resident = 0;
        // simlint: allow(flow-lifecycle) one-shot report, not per-epoch
        for idx in 0..self.flows.key_bound() {
            resident += usize::from(self.flows.get_index(idx).is_some());
        }
        resident
    }
}
