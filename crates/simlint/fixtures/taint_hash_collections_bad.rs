//! Positive fixture: an allowed HashMap reachable from a RouterLogic
//! impl. The allow argued iteration order never leaks ("lookups only"),
//! but the helper is on the replay path, where that argument must be
//! made as a taint allow after an audit — not inherited for free.

pub struct Logic;

impl RouterLogic for Logic {
    fn on_packet(&mut self) {
        classify_flow();
    }
}

fn classify_flow() {
    lookup_bucket();
}

fn lookup_bucket() {
    // simlint: allow(hash-collections) lookups only, never iterated
    let _m: HashMap<u64, u64> = HashMap::new();
}
