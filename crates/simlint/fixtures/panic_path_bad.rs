//! Positive fixture: a bare unwrap() in the event loop gives a
//! useless panic message a million events into a run.
pub fn pop_next(queue: &mut Vec<u64>) -> u64 {
    queue.pop().unwrap()
}
