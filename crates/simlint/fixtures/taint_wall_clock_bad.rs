//! Positive fixture: an *allowed* wall-clock read two calls away from a
//! replay root. The inline allow justified the site ("calibration"),
//! but a RouterLogic impl — which the engine dispatches into — still
//! reaches it, so the nondeterminism lands on the replay path.

pub struct Probe;

impl RouterLogic for Probe {
    fn on_packet(&mut self) {
        refresh_estimate();
    }
}

fn refresh_estimate() {
    calibrate();
}

fn calibrate() {
    // simlint: allow(wall-clock) one-shot calibration
    let _t = Instant::now();
}
