//! Negative fixture: the same shard-worker root reaching a spawn site,
//! but the inline allow covers both the spawn rule and its taint
//! companion, acknowledging the reachability is the executor's design
//! (barrier-lockstep epochs, identity-tested against serial).

pub fn run_shard_epoch() {
    exchange_mailboxes();
}

fn exchange_mailboxes() {
    // simlint: allow(thread-spawn, taint-thread-spawn) lockstep epoch workers; identity suite proves byte-equality
    std::thread::scope(|_| {});
}
