//! Negative fixture: expect() naming the violated invariant, and the
//! non-panicking combinators, are the sanctioned forms.
pub fn pop_next(queue: &mut Vec<u64>) -> u64 {
    queue.pop().expect("peeked event must exist")
}

pub fn pop_or_zero(queue: &mut Vec<u64>) -> u64 {
    queue.pop().unwrap_or(0)
}
