//! Negative fixture: per-*link* state is fine in a core router — only
//! per-flow state violates core-statelessness.
use std::collections::BTreeMap;

pub struct CoreRouter {
    links: BTreeMap<LinkId, LinkState>,
    epoch_markers: u64,
}

pub fn classify(flow: FlowId) -> bool {
    // Mentioning FlowId as a value type is not per-flow *state*.
    flow.index() == 0
}
