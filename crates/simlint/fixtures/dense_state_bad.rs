//! Positive fixture: a fresh id-keyed tree map in a hot-path state
//! module — per-event lookups pay O(log n) pointer chasing and every
//! insert allocates a node, where the slab gives O(1) indexed access.
use std::collections::BTreeMap;

pub struct EdgeState {
    per_flow: BTreeMap<FlowId, f64>,
    per_link: BTreeMap<LinkId, u64>,
}

pub fn fresh() -> BTreeMap<NodeId, u32> {
    BTreeMap::<NodeId, u32>::new()
}
