//! Negative fixture: the idiomatic ack-clocked sender — slab-backed
//! per-flow state, a scratch buffer allocated once in the constructor
//! and reused per ack, and no clocks anywhere near the replay path.

pub struct OkSender {
    flows: DenseMap<FlowId, u64>,
    scratch: Vec<u64>,
}

impl OkSender {
    pub fn new() -> Self {
        // Setup-time allocation: constructors are not per-event.
        OkSender {
            flows: DenseMap::new(),
            scratch: Vec::with_capacity(64),
        }
    }
}

impl RouterLogic for OkSender {
    fn on_control(&mut self, acks: &[u64]) {
        self.scratch.clear();
        self.scratch.extend_from_slice(acks);
    }
}
