//! Negative fixture: the same allowed wall-clock read, but the helper
//! chain is not reachable from any replay root — `calibrate` is only
//! called from a free setup function, so the site allow is the whole
//! story. A second, reachable site carries an explicit taint allow.

pub struct Probe;

impl RouterLogic for Probe {
    fn on_packet(&mut self) {
        audited_stamp();
    }
}

fn audited_stamp() {
    // simlint: allow(wall-clock) bench-style timing
    let _t = Instant::now(); // simlint: allow(taint-wall-clock) reachability audited: cold path
}

pub fn offline_setup() {
    calibrate();
}

fn calibrate() {
    // simlint: allow(wall-clock) one-shot calibration
    let _t = Instant::now();
}
