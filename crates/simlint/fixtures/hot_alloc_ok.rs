//! The idiomatic hot path: allocations happen once in constructors,
//! per-event callbacks reuse preallocated buffers, and the rare
//! justified site carries an inline allow.

struct Logic {
    scratch: Vec<u64>,
}

impl Logic {
    fn new() -> Self {
        // Setup-time allocation is fine: `new` is not a hot function.
        Logic {
            scratch: Vec::with_capacity(8),
        }
    }

    fn on_packet(&mut self, x: u64) {
        self.scratch.clear();
        self.scratch.push(x);
    }

    fn on_control(&mut self, xs: &[u64]) {
        // simlint: allow(hot-alloc) reconfiguration runs once per experiment
        self.scratch = xs.to_vec();
    }
}
