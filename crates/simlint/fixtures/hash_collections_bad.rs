//! Positive fixture: hash collections iterate in nondeterministic
//! order, breaking byte-identical replay.
use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut out = HashMap::new();
    for &x in xs {
        if seen.insert(x) {
            out.insert(x, 1);
        }
    }
    out
}
