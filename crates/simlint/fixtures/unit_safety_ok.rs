//! Negative fixture: unit-correct arithmetic. Same-unit sums, products
//! that legitimately change units, and explicit conversions (`_per_`,
//! `_to_`, `*_SHIFT`, fused idents like `tick_ns`) all pass.

pub fn deadline(now_ns: u64, timeout_s: u64) -> u64 {
    now_ns + timeout_s * NS_PER_S
}

pub fn elapsed(total_ns: u64, start_ns: u64) -> u64 {
    total_ns - start_ns
}

pub fn rate(sent_bytes: u64, elapsed_s: u64) -> u64 {
    sent_bytes / elapsed_s
}

pub fn to_ticks(deadline_ns: u64) -> u64 {
    deadline_ns >> TICK_SHIFT
}

pub fn horizon(base_ticks: u64, off_ns: u64, tick_ns: u64) -> u64 {
    base_ticks + off_ns / tick_ns
}
