//! Negative fixture: epsilon and ordered comparisons, integer
//! equality, and a justified inline allow.
pub fn degenerate(share: f64, q: f64, n: u64) -> bool {
    share.abs() < 1e-9 || q <= 0.0 || q >= 1.0 || n == 0
}

pub fn sentinel(start: f64) -> bool {
    // The parser default is an exact 0.0 sentinel, never computed.
    start != 0.0 // simlint: allow(float-eq)
}
