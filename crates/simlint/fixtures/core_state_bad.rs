//! Positive fixture: a FlowId-keyed map injected into a core-router
//! module — exactly the per-flow state the paper's §2–3 claim forbids.
use std::collections::BTreeMap;

pub struct CoreRouter {
    per_flow_rates: BTreeMap<FlowId, f64>,
    arrivals: Vec<(FlowId, u64)>,
}
