//! Positive fixture: threads outside scenarios::exec/bench introduce
//! scheduling nondeterminism.
pub fn fan_out() {
    let h = std::thread::spawn(|| 1 + 1);
    h.join().ok();
}
