//! Negative fixture: single-threaded event-loop code. The word
//! "thread" in prose or as a local identifier is not a violation.
pub fn run(thread_count_hint: usize) -> usize {
    // Deterministic single-threaded execution; std::thread only in
    // comments.
    thread_count_hint.max(1)
}
