//! Positive fixture: an allowed external-RNG draw reachable from a
//! RouterLogic impl. The allow claimed the draw feeds a log-only id,
//! but the replay path reaches it, so draws differ run-to-run.

pub struct Marker;

impl RouterLogic for Marker {
    fn on_packet(&mut self) {
        tag_packet();
    }
}

fn tag_packet() {
    fresh_tag();
}

fn fresh_tag() {
    // simlint: allow(rand-import) log-only tag
    let _id: u64 = rand::random();
}
