//! Negative fixture: simulation code tells time with SimTime; merely
//! importing Instant (e.g. for a type alias) does not read the clock.
use std::time::Instant;

pub fn horizon() -> f64 {
    let t = SimTime::from_secs(5);
    t.as_secs_f64()
}

pub type BenchStamp = Instant;
