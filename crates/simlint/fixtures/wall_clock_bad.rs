//! Positive fixture: wall-clock reads make a run irreproducible.
use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
