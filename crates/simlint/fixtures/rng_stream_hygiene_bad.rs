//! Positive fixture: two live call sites share the label "churn-gaps",
//! so under any seed they draw byte-identical sequences — silently
//! correlated randomness; and one site computes its label, which
//! defeats grep-auditing of the stream namespace on the replay path.

pub fn arrivals(seed: u64) -> DetRng {
    DetRng::stream(seed, "churn-gaps")
}

pub fn departures(seed: u64) -> DetRng {
    DetRng::stream(seed, "churn-gaps")
}

pub fn named(seed: u64, label: &str) -> DetRng {
    DetRng::stream(seed, label)
}
