//! Positive fixture: exact float equality is brittle under FP error.
pub fn degenerate(share: f64, q: f64) -> bool {
    share == 0.0 || q != 1.0 || q.fract() == epsilon()
}

fn epsilon() -> f64 {
    1e-9
}
