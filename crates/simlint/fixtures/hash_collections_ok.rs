//! Negative fixture: ordered collections keep replay deterministic.
//! A doc comment mentioning HashMap must not trip the rule either.
use std::collections::{BTreeMap, BTreeSet};

pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut out = BTreeMap::new();
    for &x in xs {
        if seen.insert(x) {
            out.insert(x, 1);
        }
    }
    out
}
