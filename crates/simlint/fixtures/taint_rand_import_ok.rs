//! Negative fixture: replay code draws from DetRng streams; the
//! allowed external-RNG helper is only reachable from offline tooling.

pub struct Marker;

impl RouterLogic for Marker {
    fn on_packet(&mut self) {
        let _draw = DetRng::stream(7, "taint-fixture-marker").next_u64();
    }
}

pub fn offline_tooling() {
    fresh_tag();
}

fn fresh_tag() {
    // simlint: allow(rand-import) log-only tag
    let _id: u64 = rand::random();
}
