//! Negative fixture: seeded in-repo DetRng streams are the sanctioned
//! randomness source ("rand" in comments is fine).
use sim_core::rng::DetRng;

pub fn jitter(rng: &mut DetRng) -> f64 {
    rng.next_f64()
}
