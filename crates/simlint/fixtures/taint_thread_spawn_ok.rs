//! Negative fixture: the allowed thread spawn is only called from the
//! CLI entry point, never from a replay root, so the site allow needs
//! no reachability caveat.

pub struct Sched;

impl Discipline for Sched {
    fn run_epoch(&mut self) {
        tally();
    }
}

fn tally() {}

pub fn cli_main() {
    spawn_writer();
}

fn spawn_writer() {
    // simlint: allow(thread-spawn) report writer, joined before exit
    std::thread::spawn(|| {});
}
