//! Positive fixture: a go-back-N-style sender module (the
//! `transport_sender_` prefix classifies it as a hot-path, per-id-state
//! module, like `crates/netsim/src/transport.rs`) committing the three
//! transport sins — tree-keyed per-flow state, a per-ack allocation,
//! and a wall-clock read reachable from its `RouterLogic` impl (a
//! taint root), sanctioned at the site but not for reachability.
use std::collections::BTreeMap;

pub struct BadSender {
    flows: BTreeMap<FlowId, u64>, // flagged: dense-state
}

impl RouterLogic for BadSender {
    fn on_control(&mut self, acks: &[u64]) {
        let batch = acks.to_vec(); // flagged: hot-alloc, a copy per ack
        self.flows.insert(FlowId(0), batch.len() as u64);
        stamp();
    }
}

fn stamp() {
    // simlint: allow(wall-clock) debug timing
    let _ = std::time::Instant::now(); // taints: reachable from on_control
}
