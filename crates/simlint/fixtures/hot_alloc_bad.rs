//! Deliberate `hot-alloc` violations: fresh heap allocations inside
//! per-event hot functions. The `hot_alloc_` filename prefix classifies
//! this fixture as a hot-path module (see `rules::classify`).

struct Logic {
    out: Vec<u64>,
}

impl Logic {
    fn on_packet(&mut self, x: u64) {
        let actions = vec![x, x + 1]; // flagged: a vec! per packet
        let mut scratch = Vec::new(); // flagged: a fresh Vec per packet
        scratch.push(actions.len() as u64);
        let boxed = Box::new(x); // flagged: a Box per packet
        self.out = scratch.to_vec(); // flagged: a full copy per packet
        let _ = boxed;
    }
}

fn build() -> Vec<u64> {
    Vec::new() // not flagged: `build` is not a per-event function
}
