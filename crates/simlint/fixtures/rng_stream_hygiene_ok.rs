//! Negative fixture: every live stream gets its own literal label, and
//! per-entity streams use `substream` with a shared label plus a
//! distinct index — the sanctioned way to partition one namespace.

pub fn arrivals(seed: u64) -> DetRng {
    DetRng::stream(seed, "fixture-arrival-gaps")
}

pub fn departures(seed: u64) -> DetRng {
    DetRng::stream(seed, "fixture-departure-gaps")
}

pub fn per_flow(seed: u64, flow: u64) -> DetRng {
    DetRng::substream(seed, "fixture-flow", flow)
}
