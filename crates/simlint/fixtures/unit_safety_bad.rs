//! Positive fixture: expressions mixing unit-suffixed identifiers of
//! one dimension with no conversion in sight — the bug class behind the
//! tick/nanosecond floor split (a `_ns` deadline compared against a
//! `_ticks` horizon is wrong by a factor of the tick size).

pub fn deadline(now_ns: u64, timeout_s: u64) -> u64 {
    now_ns + timeout_s
}

pub fn window_closed(gap_ticks: u64, window_ns: u64) -> bool {
    gap_ticks < window_ns
}

pub fn backlog_cap(queued_bytes: u64, cap_pkts: u64) -> u64 {
    queued_bytes.min(cap_pkts)
}
