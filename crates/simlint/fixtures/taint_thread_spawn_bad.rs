//! Positive fixture: an allowed thread spawn reachable from a
//! Discipline impl. Fanning out run *batches* is sanctioned (the site
//! allow), but a per-epoch discipline hook reaching the same helper
//! injects thread interleaving into the replay path.

pub struct Sched;

impl Discipline for Sched {
    fn run_epoch(&mut self) {
        flush_results();
    }
}

fn flush_results() {
    spawn_writer();
}

fn spawn_writer() {
    // simlint: allow(thread-spawn) report writer, joined before exit
    std::thread::spawn(|| {});
}
