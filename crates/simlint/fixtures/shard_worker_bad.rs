//! Positive fixture: this file's prefix marks every function in it as a
//! shard-worker replay root (like crates/netsim/src/shard.rs), so an
//! allowed spawn site in a helper it calls is still tainted — the site
//! allow sanctions the spawn, not its reachability from worker code.

pub fn run_shard_epoch() {
    exchange_mailboxes();
}

fn exchange_mailboxes() {
    // simlint: allow(thread-spawn) mailbox flusher, joined at the barrier
    std::thread::scope(|_| {});
}
