//! Positive fixture: external RNG crates draw differently across
//! versions and platforms; the repo hand-rolls DetRng instead.
use rand::Rng;

pub fn jitter() -> f64 {
    rand::thread_rng().gen()
}
