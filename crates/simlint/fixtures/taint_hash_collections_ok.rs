//! Negative fixture: replay code uses order-stable BTreeMap; the
//! allowed HashMap helper only serves an unreachable report path.

pub struct Logic;

impl RouterLogic for Logic {
    fn on_packet(&mut self) {
        let _m: BTreeMap<u64, u64> = BTreeMap::new();
    }
}

pub fn report_main() {
    lookup_bucket();
}

fn lookup_bucket() {
    // simlint: allow(hash-collections) lookups only, never iterated
    let _m: HashMap<u64, u64> = HashMap::new();
}
