//! Positive fixture: a per-epoch loop scanning every flow-table slot
//! index ever used. Under churn slots are recycled, so this walks
//! retired occupants and costs O(slots ever used) per epoch instead of
//! O(active flows).

impl EdgeState {
    pub fn run_epoch(&mut self) {
        for idx in 0..self.flows.key_bound() {
            if let Some(flow) = self.flows.get_index(idx) {
                self.adapt(flow);
            }
        }
    }
}
