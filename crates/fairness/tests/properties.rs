//! Property-based tests for the weighted max-min water-filling solver.
//!
//! The max-min optimality conditions checked here are the textbook ones
//! (Bertsekas & Gallager): feasibility on every link, and every flow
//! having a *bottleneck* link — a saturated link on which the flow's
//! normalized rate is maximal among the link's flows.

use proptest::prelude::*;
use fairness::maxmin::MaxMinProblem;
use fairness::metrics::jain_index;

#[derive(Debug, Clone)]
struct RandomProblem {
    capacities: Vec<f64>,
    /// (weight, link indices) per flow.
    flows: Vec<(f64, Vec<usize>)>,
}

fn random_problem() -> impl Strategy<Value = RandomProblem> {
    (2usize..6, 1usize..12).prop_flat_map(|(n_links, n_flows)| {
        let caps = prop::collection::vec(1.0f64..1_000.0, n_links);
        let flows = prop::collection::vec(
            (
                1.0f64..8.0,
                prop::collection::btree_set(0..n_links, 1..=n_links),
            ),
            n_flows,
        );
        (caps, flows).prop_map(|(capacities, flows)| RandomProblem {
            capacities,
            flows: flows
                .into_iter()
                .map(|(w, links)| (w, links.into_iter().collect()))
                .collect(),
        })
    })
}

fn solve(problem: &RandomProblem) -> Vec<f64> {
    let mut p = MaxMinProblem::new();
    let links: Vec<_> = problem.capacities.iter().map(|&c| p.link(c)).collect();
    let refs: Vec<_> = problem
        .flows
        .iter()
        .map(|(w, ls)| p.flow(*w, ls.iter().map(|&i| links[i])))
        .collect();
    let alloc = p.solve();
    refs.iter().map(|&r| alloc.rate(r)).collect()
}

proptest! {
    /// No link carries more than its capacity.
    #[test]
    fn allocation_is_feasible(problem in random_problem()) {
        let rates = solve(&problem);
        for (l, &cap) in problem.capacities.iter().enumerate() {
            let load: f64 = problem
                .flows
                .iter()
                .zip(&rates)
                .filter(|((_, links), _)| links.contains(&l))
                .map(|(_, &r)| r)
                .sum();
            prop_assert!(load <= cap * (1.0 + 1e-9), "link {l}: load {load} > cap {cap}");
        }
    }

    /// Every flow gets a strictly positive rate.
    #[test]
    fn every_flow_gets_something(problem in random_problem()) {
        for (i, r) in solve(&problem).iter().enumerate() {
            prop_assert!(*r > 0.0, "flow {i} starved");
        }
    }

    /// Max-min optimality: every flow has a saturated link on which its
    /// normalized rate is (weakly) maximal.
    #[test]
    fn every_flow_has_a_bottleneck(problem in random_problem()) {
        let rates = solve(&problem);
        for (i, (w_i, links_i)) in problem.flows.iter().enumerate() {
            let norm_i = rates[i] / w_i;
            let has_bottleneck = links_i.iter().any(|&l| {
                let load: f64 = problem
                    .flows
                    .iter()
                    .zip(&rates)
                    .filter(|((_, links), _)| links.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                let saturated = load >= problem.capacities[l] * (1.0 - 1e-6);
                saturated
                    && problem
                        .flows
                        .iter()
                        .zip(&rates)
                        .filter(|((_, links), _)| links.contains(&l))
                        .all(|((w_j, _), &r_j)| r_j / w_j <= norm_i * (1.0 + 1e-6))
            });
            prop_assert!(has_bottleneck, "flow {i} has no bottleneck link");
        }
    }

    /// Scaling all capacities scales all rates by the same factor.
    #[test]
    fn allocation_scales_with_capacity(problem in random_problem(), factor in 0.1f64..10.0) {
        let base = solve(&problem);
        let mut scaled = problem.clone();
        for c in &mut scaled.capacities {
            *c *= factor;
        }
        let scaled_rates = solve(&scaled);
        for (b, s) in base.iter().zip(&scaled_rates) {
            prop_assert!((s - b * factor).abs() <= 1e-6 * b.max(1.0) * factor.max(1.0),
                "scaling broke: {b} * {factor} vs {s}");
        }
    }

    /// On a single shared link the allocation is exactly
    /// weight-proportional (Jain index of normalized rates = 1).
    #[test]
    fn single_link_is_weight_proportional(
        cap in 1.0f64..1_000.0,
        weights in prop::collection::vec(1.0f64..9.0, 1..10),
    ) {
        let mut p = MaxMinProblem::new();
        let l = p.link(cap);
        let refs: Vec<_> = weights.iter().map(|&w| p.flow(w, [l])).collect();
        let alloc = p.solve();
        let rates: Vec<f64> = refs.iter().map(|&r| alloc.rate(r)).collect();
        prop_assert!((jain_index(&rates, &weights) - 1.0).abs() < 1e-9);
        let total: f64 = rates.iter().sum();
        prop_assert!((total - cap).abs() < 1e-6 * cap, "single link not fully used");
    }

    /// With minimum-rate contracts: every flow gets at least its floor,
    /// links stay feasible, and flows whose floor is *not* binding keep
    /// their weight-proportional relation on a single link.
    #[test]
    fn floors_are_honoured_and_feasible(
        cap in 100.0f64..1_000.0,
        specs in prop::collection::vec((1.0f64..8.0, 0.0f64..40.0), 1..8),
    ) {
        // Floors capped at 40 each and at most 8 flows ⇒ ≤ 320 ≤ cap·…
        // keep feasible by construction when cap ≥ 320 is not guaranteed,
        // so scale floors down to fit.
        let total_floor: f64 = specs.iter().map(|&(_, f)| f).sum();
        let scale = if total_floor > 0.9 * cap { 0.9 * cap / total_floor } else { 1.0 };
        let mut p = MaxMinProblem::new();
        let l = p.link(cap);
        let refs: Vec<_> = specs
            .iter()
            .map(|&(w, f)| p.flow_with_floor(w, f * scale, [l]))
            .collect();
        let alloc = p.solve();
        let mut load = 0.0;
        for (&r, &(w, f)) in refs.iter().zip(&specs) {
            let rate = alloc.rate(r);
            let floor = f * scale;
            prop_assert!(rate >= floor - 1e-9, "rate {rate} below floor {floor}");
            load += rate;
            let _ = w;
        }
        prop_assert!(load <= cap * (1.0 + 1e-9), "overloaded: {load} > {cap}");
        // floor + share on a single link: every flow's normalized
        // *excess* (rate − floor)/w equals the common water level.
        let levels: Vec<f64> = refs
            .iter()
            .zip(&specs)
            .map(|(r, (w, f))| (alloc.rate(*r) - f * scale) / w)
            .collect();
        for pair in levels.windows(2) {
            prop_assert!((pair[0] - pair[1]).abs() < 1e-6 * pair[0].max(1.0),
                "excess must be weight-proportional: {levels:?}");
        }
    }

    /// Solving with all-zero floors matches the plain solver exactly.
    #[test]
    fn zero_floors_match_plain_solver(problem in random_problem()) {
        let plain = solve(&problem);
        let mut p = MaxMinProblem::new();
        let links: Vec<_> = problem.capacities.iter().map(|&c| p.link(c)).collect();
        let refs: Vec<_> = problem
            .flows
            .iter()
            .map(|(w, ls)| p.flow_with_floor(*w, 0.0, ls.iter().map(|&i| links[i])))
            .collect();
        let alloc = p.solve();
        for (i, &r) in refs.iter().enumerate() {
            prop_assert!((alloc.rate(r) - plain[i]).abs() < 1e-9 * plain[i].max(1.0));
        }
    }

    /// On a single shared link, adding a flow never increases anyone
    /// else's allocation. (In multi-link networks max-min is famously
    /// *not* monotone under flow addition — proptest found the
    /// counterexample — so the property is stated where it provably
    /// holds.)
    #[test]
    fn adding_a_flow_is_monotone_on_one_link(
        cap in 1.0f64..1_000.0,
        weights in prop::collection::vec(1.0f64..8.0, 1..10),
        w_new in 1.0f64..8.0,
    ) {
        let solve_one = |ws: &[f64]| {
            let mut p = MaxMinProblem::new();
            let l = p.link(cap);
            let refs: Vec<_> = ws.iter().map(|&w| p.flow(w, [l])).collect();
            let alloc = p.solve();
            refs.iter().map(|&r| alloc.rate(r)).collect::<Vec<_>>()
        };
        let base = solve_one(&weights);
        let mut bigger = weights.clone();
        bigger.push(w_new);
        let after = solve_one(&bigger);
        for (i, (b, a)) in base.iter().zip(&after).enumerate() {
            prop_assert!(*a <= b * (1.0 + 1e-9), "flow {i} grew from {b} to {a}");
        }
    }
}
