//! Randomized property tests for the weighted max-min water-filling
//! solver, driven by the in-tree `sim_core::check` harness.
//!
//! The max-min optimality conditions checked here are the textbook ones
//! (Bertsekas & Gallager): feasibility on every link, and every flow
//! having a *bottleneck* link — a saturated link on which the flow's
//! normalized rate is maximal among the link's flows.

use fairness::maxmin::MaxMinProblem;
use fairness::metrics::jain_index;
use sim_core::check::{self, Gen};

#[derive(Debug, Clone)]
struct RandomProblem {
    capacities: Vec<f64>,
    /// (weight, link indices) per flow.
    flows: Vec<(f64, Vec<usize>)>,
}

fn random_problem(g: &mut Gen) -> RandomProblem {
    let n_links = g.usize_in(2, 6);
    let n_flows = g.usize_in(1, 12);
    RandomProblem {
        capacities: (0..n_links).map(|_| g.f64_in(1.0, 1_000.0)).collect(),
        flows: (0..n_flows)
            .map(|_| (g.f64_in(1.0, 8.0), g.subset(n_links)))
            .collect(),
    }
}

fn solve(problem: &RandomProblem) -> Vec<f64> {
    let mut p = MaxMinProblem::new();
    let links: Vec<_> = problem.capacities.iter().map(|&c| p.link(c)).collect();
    let refs: Vec<_> = problem
        .flows
        .iter()
        .map(|(w, ls)| p.flow(*w, ls.iter().map(|&i| links[i])))
        .collect();
    let alloc = p.solve();
    refs.iter().map(|&r| alloc.rate(r)).collect()
}

/// No link carries more than its capacity.
#[test]
fn allocation_is_feasible() {
    check::cases(128, 0xFA_01, |g| {
        let problem = random_problem(g);
        let rates = solve(&problem);
        for (l, &cap) in problem.capacities.iter().enumerate() {
            let load: f64 = problem
                .flows
                .iter()
                .zip(&rates)
                .filter(|((_, links), _)| links.contains(&l))
                .map(|(_, &r)| r)
                .sum();
            assert!(
                load <= cap * (1.0 + 1e-9),
                "link {l}: load {load} > cap {cap}"
            );
        }
    });
}

/// Every flow gets a strictly positive rate.
#[test]
fn every_flow_gets_something() {
    check::cases(128, 0xFA_02, |g| {
        let problem = random_problem(g);
        for (i, r) in solve(&problem).iter().enumerate() {
            assert!(*r > 0.0, "flow {i} starved");
        }
    });
}

/// Max-min optimality: every flow has a saturated link on which its
/// normalized rate is (weakly) maximal.
#[test]
fn every_flow_has_a_bottleneck() {
    check::cases(128, 0xFA_03, |g| {
        let problem = random_problem(g);
        let rates = solve(&problem);
        for (i, (w_i, links_i)) in problem.flows.iter().enumerate() {
            let norm_i = rates[i] / w_i;
            let has_bottleneck = links_i.iter().any(|&l| {
                let load: f64 = problem
                    .flows
                    .iter()
                    .zip(&rates)
                    .filter(|((_, links), _)| links.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                let saturated = load >= problem.capacities[l] * (1.0 - 1e-6);
                saturated
                    && problem
                        .flows
                        .iter()
                        .zip(&rates)
                        .filter(|((_, links), _)| links.contains(&l))
                        .all(|((w_j, _), &r_j)| r_j / w_j <= norm_i * (1.0 + 1e-6))
            });
            assert!(has_bottleneck, "flow {i} has no bottleneck link");
        }
    });
}

/// Scaling all capacities scales all rates by the same factor.
#[test]
fn allocation_scales_with_capacity() {
    check::cases(128, 0xFA_04, |g| {
        let problem = random_problem(g);
        let factor = g.f64_in(0.1, 10.0);
        let base = solve(&problem);
        let mut scaled = problem.clone();
        for c in &mut scaled.capacities {
            *c *= factor;
        }
        let scaled_rates = solve(&scaled);
        for (b, s) in base.iter().zip(&scaled_rates) {
            assert!(
                (s - b * factor).abs() <= 1e-6 * b.max(1.0) * factor.max(1.0),
                "scaling broke: {b} * {factor} vs {s}"
            );
        }
    });
}

/// On a single shared link the allocation is exactly
/// weight-proportional (Jain index of normalized rates = 1).
#[test]
fn single_link_is_weight_proportional() {
    check::cases(128, 0xFA_05, |g| {
        let cap = g.f64_in(1.0, 1_000.0);
        let weights = g.vec_with(1, 9, |g| g.f64_in(1.0, 9.0));
        let mut p = MaxMinProblem::new();
        let l = p.link(cap);
        let refs: Vec<_> = weights.iter().map(|&w| p.flow(w, [l])).collect();
        let alloc = p.solve();
        let rates: Vec<f64> = refs.iter().map(|&r| alloc.rate(r)).collect();
        assert!((jain_index(&rates, &weights) - 1.0).abs() < 1e-9);
        let total: f64 = rates.iter().sum();
        assert!(
            (total - cap).abs() < 1e-6 * cap,
            "single link not fully used"
        );
    });
}

/// With minimum-rate contracts: every flow gets at least its floor,
/// links stay feasible, and flows whose floor is *not* binding keep
/// their weight-proportional relation on a single link.
#[test]
fn floors_are_honoured_and_feasible() {
    check::cases(128, 0xFA_06, |g| {
        let cap = g.f64_in(100.0, 1_000.0);
        let specs = g.vec_with(1, 7, |g| (g.f64_in(1.0, 8.0), g.f64_in(0.0, 40.0)));
        // Scale floors down so they always fit under the capacity.
        let total_floor: f64 = specs.iter().map(|&(_, f)| f).sum();
        let scale = if total_floor > 0.9 * cap {
            0.9 * cap / total_floor
        } else {
            1.0
        };
        let mut p = MaxMinProblem::new();
        let l = p.link(cap);
        let refs: Vec<_> = specs
            .iter()
            .map(|&(w, f)| p.flow_with_floor(w, f * scale, [l]))
            .collect();
        let alloc = p.solve();
        let mut load = 0.0;
        for (&r, &(_, f)) in refs.iter().zip(&specs) {
            let rate = alloc.rate(r);
            let floor = f * scale;
            assert!(rate >= floor - 1e-9, "rate {rate} below floor {floor}");
            load += rate;
        }
        assert!(load <= cap * (1.0 + 1e-9), "overloaded: {load} > {cap}");
        // floor + share on a single link: every flow's normalized
        // *excess* (rate − floor)/w equals the common water level.
        let levels: Vec<f64> = refs
            .iter()
            .zip(&specs)
            .map(|(r, (w, f))| (alloc.rate(*r) - f * scale) / w)
            .collect();
        for pair in levels.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 1e-6 * pair[0].max(1.0),
                "excess must be weight-proportional: {levels:?}"
            );
        }
    });
}

/// Solving with all-zero floors matches the plain solver exactly.
#[test]
fn zero_floors_match_plain_solver() {
    check::cases(128, 0xFA_07, |g| {
        let problem = random_problem(g);
        let plain = solve(&problem);
        let mut p = MaxMinProblem::new();
        let links: Vec<_> = problem.capacities.iter().map(|&c| p.link(c)).collect();
        let refs: Vec<_> = problem
            .flows
            .iter()
            .map(|(w, ls)| p.flow_with_floor(*w, 0.0, ls.iter().map(|&i| links[i])))
            .collect();
        let alloc = p.solve();
        for (i, &r) in refs.iter().enumerate() {
            assert!((alloc.rate(r) - plain[i]).abs() < 1e-9 * plain[i].max(1.0));
        }
    });
}

/// On a single shared link, adding a flow never increases anyone
/// else's allocation. (In multi-link networks max-min is famously
/// *not* monotone under flow addition, so the property is stated where
/// it provably holds.)
#[test]
fn adding_a_flow_is_monotone_on_one_link() {
    check::cases(128, 0xFA_08, |g| {
        let cap = g.f64_in(1.0, 1_000.0);
        let weights = g.vec_with(1, 9, |g| g.f64_in(1.0, 8.0));
        let w_new = g.f64_in(1.0, 8.0);
        let solve_one = |ws: &[f64]| {
            let mut p = MaxMinProblem::new();
            let l = p.link(cap);
            let refs: Vec<_> = ws.iter().map(|&w| p.flow(w, [l])).collect();
            let alloc = p.solve();
            refs.iter().map(|&r| alloc.rate(r)).collect::<Vec<_>>()
        };
        let base = solve_one(&weights);
        let mut bigger = weights.clone();
        bigger.push(w_new);
        let after = solve_one(&bigger);
        for (i, (b, a)) in base.iter().zip(&after).enumerate() {
            assert!(*a <= b * (1.0 + 1e-9), "flow {i} grew from {b} to {a}");
        }
    });
}
