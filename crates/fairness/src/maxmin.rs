//! Exact weighted max-min fair allocation by water-filling.
//!
//! The algorithm (Bertsekas & Gallager, *Data Networks*): grow every
//! unfrozen flow's rate in proportion to its weight until some link
//! saturates; freeze the flows crossing saturated links at their current
//! rates; subtract their consumption and repeat. Terminates in at most one
//! iteration per link.

use std::fmt;

/// Identifies a link inside a [`MaxMinProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkRef(usize);

/// Identifies a flow inside a [`MaxMinProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowRef(usize);

#[derive(Debug, Clone)]
struct FlowDef {
    weight: f64,
    floor: f64,
    links: Vec<usize>,
}

/// A weighted max-min fair allocation problem.
///
/// # Example
///
/// Two flows of weights 1 and 2 sharing one 30 pkt/s link:
///
/// ```
/// use fairness::maxmin::MaxMinProblem;
///
/// let mut p = MaxMinProblem::new();
/// let l = p.link(30.0);
/// let a = p.flow(1.0, [l]);
/// let b = p.flow(2.0, [l]);
/// let alloc = p.solve();
/// assert!((alloc.rate(a) - 10.0).abs() < 1e-9);
/// assert!((alloc.rate(b) - 20.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MaxMinProblem {
    capacities: Vec<f64>,
    flows: Vec<FlowDef>,
}

/// The result of solving a [`MaxMinProblem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    rates: Vec<f64>,
}

impl MaxMinProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        MaxMinProblem::default()
    }

    /// Adds a link with the given capacity (any consistent unit; the
    /// experiments use packets per second).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not finite and positive.
    pub fn link(&mut self, capacity: f64) -> LinkRef {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be finite and positive, got {capacity}"
        );
        self.capacities.push(capacity);
        LinkRef(self.capacities.len() - 1)
    }

    /// Adds a flow with rate weight `weight` crossing `links`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive, if `links` is empty,
    /// or if any link reference is stale.
    pub fn flow(&mut self, weight: f64, links: impl IntoIterator<Item = LinkRef>) -> FlowRef {
        assert!(
            weight.is_finite() && weight > 0.0,
            "flow weight must be finite and positive, got {weight}"
        );
        self.flow_with_floor(weight, 0.0, links)
    }

    /// Adds a flow with rate weight `weight`, a **minimum rate contract**
    /// `floor`, and the links it crosses.
    ///
    /// Contracted capacity is reserved up front (the flow's in-profile
    /// traffic), and the *residual* capacity of every link is then shared
    /// by weighted max-min among all flows' excess traffic:
    /// `rate = floor + excess`. This matches the Corelite edge mechanism,
    /// where markers are injected for out-of-profile traffic only, so a
    /// flow's marker rate reflects its normalized *excess* rate.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive, `floor` is negative
    /// or not finite, `links` is empty, or a link reference is stale.
    /// [`MaxMinProblem::solve`] panics if the floors alone exceed some
    /// link's capacity (admission control is the caller's job).
    pub fn flow_with_floor(
        &mut self,
        weight: f64,
        floor: f64,
        links: impl IntoIterator<Item = LinkRef>,
    ) -> FlowRef {
        assert!(
            weight.is_finite() && weight > 0.0,
            "flow weight must be finite and positive, got {weight}"
        );
        assert!(
            floor.is_finite() && floor >= 0.0,
            "flow floor must be finite and non-negative, got {floor}"
        );
        let links: Vec<usize> = links.into_iter().map(|l| l.0).collect();
        assert!(!links.is_empty(), "a flow must cross at least one link");
        for &l in &links {
            assert!(l < self.capacities.len(), "unknown link index {l}");
        }
        self.flows.push(FlowDef {
            weight,
            floor,
            links,
        });
        FlowRef(self.flows.len() - 1)
    }

    /// Number of flows added so far.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Solves the problem, returning the unique weighted max-min fair rate
    /// vector (honouring minimum rate contracts, if any).
    ///
    /// # Panics
    ///
    /// Panics if the contracts alone exceed some link's capacity — the
    /// problem is then infeasible and admission control should have
    /// rejected a flow.
    pub fn solve(&self) -> Allocation {
        let n = self.flows.len();
        let m = self.capacities.len();

        // Reserve the contracted floors and validate feasibility.
        let mut residual = self.capacities.clone();
        for f in &self.flows {
            for &l in &f.links {
                residual[l] -= f.floor;
            }
        }
        for (r, &cap) in residual.iter_mut().zip(&self.capacities) {
            assert!(
                *r >= -1e-9 * cap,
                "infeasible: minimum-rate contracts exceed the capacity {cap} of a link"
            );
            *r = r.max(0.0);
        }

        // Weighted max-min water-filling of the residual capacity over
        // every flow's excess traffic.
        let mut excess = vec![0.0f64; n];
        let mut frozen = vec![false; n];
        let mut link_weight = vec![0.0f64; m];
        for f in &self.flows {
            for &l in &f.links {
                link_weight[l] += f.weight;
            }
        }
        let mut unfrozen = n;
        while unfrozen > 0 {
            // The next water level: the smallest per-unit-weight share any
            // link can still offer its unfrozen flows.
            let mut level = f64::INFINITY;
            for l in 0..m {
                if link_weight[l] > 1e-12 {
                    level = level.min(residual[l] / link_weight[l]);
                }
            }
            assert!(
                level.is_finite(),
                "no constraining link for the remaining flows — every flow \
                 must cross at least one capacity-limited link"
            );
            let level = level.max(0.0);
            for (i, f) in self.flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                let inc = level * f.weight;
                excess[i] += inc;
                for &l in &f.links {
                    residual[l] -= inc;
                }
            }
            let mut newly_frozen = 0;
            for (i, f) in self.flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                if f.links
                    .iter()
                    .any(|&l| residual[l] <= 1e-9 * self.capacities[l])
                {
                    frozen[i] = true;
                    newly_frozen += 1;
                    for &l in &f.links {
                        link_weight[l] -= f.weight;
                    }
                }
            }
            assert!(
                newly_frozen > 0,
                "water-filling failed to make progress (numerical issue)"
            );
            unfrozen -= newly_frozen;
        }
        let rates = self
            .flows
            .iter()
            .zip(&excess)
            .map(|(f, &e)| f.floor + e)
            .collect();
        Allocation { rates }
    }
}

impl Allocation {
    /// The rate allocated to `flow`.
    pub fn rate(&self, flow: FlowRef) -> f64 {
        self.rates[flow.0]
    }

    /// All rates, indexed by flow insertion order.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, r) in self.rates.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r:.3}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn single_link_splits_by_weight() {
        let mut p = MaxMinProblem::new();
        let l = p.link(60.0);
        let a = p.flow(1.0, [l]);
        let b = p.flow(2.0, [l]);
        let c = p.flow(3.0, [l]);
        let alloc = p.solve();
        assert!((alloc.rate(a) - 10.0).abs() < EPS);
        assert!((alloc.rate(b) - 20.0).abs() < EPS);
        assert!((alloc.rate(c) - 30.0).abs() < EPS);
    }

    #[test]
    fn classic_parking_lot() {
        // One long flow over both links, one short flow per link; equal
        // weights, both links capacity 1 ⇒ everyone gets 1/2.
        let mut p = MaxMinProblem::new();
        let l1 = p.link(1.0);
        let l2 = p.link(1.0);
        let long = p.flow(1.0, [l1, l2]);
        let s1 = p.flow(1.0, [l1]);
        let s2 = p.flow(1.0, [l2]);
        let alloc = p.solve();
        assert!((alloc.rate(long) - 0.5).abs() < EPS);
        assert!((alloc.rate(s1) - 0.5).abs() < EPS);
        assert!((alloc.rate(s2) - 0.5).abs() < EPS);
    }

    #[test]
    fn unequal_bottlenecks_leave_slack_for_others() {
        // Long flow bottlenecked on the tight link; the short flow on the
        // loose link picks up the slack.
        let mut p = MaxMinProblem::new();
        let tight = p.link(1.0);
        let loose = p.link(10.0);
        let long = p.flow(1.0, [tight, loose]);
        let short_tight = p.flow(1.0, [tight]);
        let short_loose = p.flow(1.0, [loose]);
        let alloc = p.solve();
        assert!((alloc.rate(long) - 0.5).abs() < EPS);
        assert!((alloc.rate(short_tight) - 0.5).abs() < EPS);
        assert!((alloc.rate(short_loose) - 9.5).abs() < EPS);
    }

    #[test]
    fn paper_topology_all_flows_active() {
        // DESIGN.md §4: three 500 pkt/s links, total weight 20 on each
        // ⇒ 25 pkt/s per unit weight for every flow.
        let alloc = paper_problem(true).solve();
        let weights = paper_weights();
        for (i, &w) in weights.iter().enumerate() {
            let expect = 25.0 * w;
            assert!(
                (alloc.rates()[i] - expect).abs() < 1e-6,
                "flow {} got {} expected {expect}",
                i + 1,
                alloc.rates()[i]
            );
        }
    }

    #[test]
    fn paper_topology_subset_active() {
        // Without flows 1, 9, 10, 11, 16 the per-unit share is 33.33.
        let alloc = paper_problem(false).solve();
        let weights = paper_weights();
        let inactive = [1, 9, 10, 11, 16];
        let mut j = 0;
        for (i, &w) in weights.iter().enumerate() {
            if inactive.contains(&(i + 1)) {
                continue;
            }
            let expect = w * 500.0 / 15.0;
            assert!(
                (alloc.rates()[j] - expect).abs() < 1e-6,
                "flow {} got {} expected {expect}",
                i + 1,
                alloc.rates()[j]
            );
            j += 1;
        }
    }

    /// Weights of flows 1..=20 from the paper (§4.1).
    fn paper_weights() -> [f64; 20] {
        let mut w = [2.0; 20];
        w[0] = 1.0; // flow 1
        w[10] = 1.0; // flow 11
        w[15] = 1.0; // flow 16
        w[4] = 3.0; // flow 5
        w[14] = 3.0; // flow 15
        w
    }

    /// Builds the Figure-2 problem; when `all` is false, flows 1, 9, 10,
    /// 11, 16 are omitted (the paper's t<250 s / t>500 s regime).
    fn paper_problem(all: bool) -> MaxMinProblem {
        let mut p = MaxMinProblem::new();
        let l1 = p.link(500.0);
        let l2 = p.link(500.0);
        let l3 = p.link(500.0);
        let weights = paper_weights();
        for i in 1..=20usize {
            if !all && [1, 9, 10, 11, 16].contains(&i) {
                continue;
            }
            let links: Vec<_> = match i {
                1..=5 => vec![l1],
                6..=8 => vec![l1, l2],
                9..=10 => vec![l1, l2, l3],
                11..=12 => vec![l2],
                13..=15 => vec![l2, l3],
                16..=20 => vec![l3],
                _ => unreachable!(),
            };
            p.flow(weights[i - 1], links);
        }
        p
    }

    #[test]
    fn contract_reserves_then_shares_surplus() {
        // Weight-1 flow with a 60 pkt/s contract on a 100 pkt/s link
        // shared with a weight-1 best-effort flow: the 40 pkt/s surplus is
        // split 20/20, so the contracted flow ends at 80.
        let mut p = MaxMinProblem::new();
        let l = p.link(100.0);
        let contracted = p.flow_with_floor(1.0, 60.0, [l]);
        let best_effort = p.flow(1.0, [l]);
        let alloc = p.solve();
        assert!((alloc.rate(contracted) - 80.0).abs() < EPS);
        assert!((alloc.rate(best_effort) - 20.0).abs() < EPS);
    }

    #[test]
    fn small_contract_shifts_allocation_by_its_reservation() {
        // floor + share: the 10 pkt/s reservation comes off the top, the
        // 90 pkt/s surplus splits 45/45.
        let mut p = MaxMinProblem::new();
        let l = p.link(100.0);
        let a = p.flow_with_floor(1.0, 10.0, [l]);
        let b = p.flow(1.0, [l]);
        let alloc = p.solve();
        assert!((alloc.rate(a) - 55.0).abs() < EPS);
        assert!((alloc.rate(b) - 45.0).abs() < EPS);
    }

    #[test]
    fn floors_fill_link_exactly() {
        // Contracts consume the whole link: no surplus to share, everyone
        // sits exactly at the contract.
        let mut p = MaxMinProblem::new();
        let l = p.link(100.0);
        let a = p.flow_with_floor(1.0, 70.0, [l]);
        let b = p.flow_with_floor(5.0, 30.0, [l]);
        let alloc = p.solve();
        assert!((alloc.rate(a) - 70.0).abs() < 1e-6);
        assert!((alloc.rate(b) - 30.0).abs() < 1e-6);
    }

    #[test]
    fn floor_on_one_link_frees_capacity_elsewhere() {
        // The contract reserves most of link 1; surplus sharing happens
        // independently per bottleneck.
        let mut p = MaxMinProblem::new();
        let l1 = p.link(100.0);
        let l2 = p.link(100.0);
        let contracted = p.flow_with_floor(1.0, 80.0, [l1]);
        let long = p.flow(1.0, [l1, l2]);
        let local = p.flow(1.0, [l2]);
        let alloc = p.solve();
        // Link 1's 20 pkt/s surplus splits 10/10; the long flow is frozen
        // there, leaving 90 for the local flow on link 2.
        assert!((alloc.rate(contracted) - 90.0).abs() < 1e-6);
        assert!((alloc.rate(long) - 10.0).abs() < 1e-6);
        assert!((alloc.rate(local) - 90.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_contracts_rejected() {
        let mut p = MaxMinProblem::new();
        let l = p.link(100.0);
        p.flow_with_floor(1.0, 70.0, [l]);
        p.flow_with_floor(1.0, 70.0, [l]);
        p.solve();
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn negative_floor_rejected() {
        let mut p = MaxMinProblem::new();
        let l = p.link(1.0);
        p.flow_with_floor(1.0, -0.5, [l]);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn flow_without_links_rejected() {
        let mut p = MaxMinProblem::new();
        p.flow(1.0, []);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn non_positive_capacity_rejected() {
        MaxMinProblem::new().link(0.0);
    }

    #[test]
    fn display_shows_rates() {
        let mut p = MaxMinProblem::new();
        let l = p.link(4.0);
        p.flow(1.0, [l]);
        assert_eq!(p.solve().to_string(), "[4.000]");
    }
}
