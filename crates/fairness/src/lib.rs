//! Reference allocations and fairness metrics.
//!
//! The paper's service model is **weighted max-min fairness** (§2.1): two
//! flows sharing a bottleneck receive bandwidth in the ratio of their rate
//! weights, and no flow's normalized rate `b(i)/w(i)` can be increased
//! without decreasing the normalized rate of a flow that already has less.
//!
//! This crate provides:
//!
//! * [`maxmin`] — an exact weighted max-min water-filling solver on
//!   arbitrary link/flow topologies. Every experiment compares the
//!   simulated rates against this analytic ground truth.
//! * [`incremental`] — the same allocation maintained incrementally under
//!   flow churn: joins and leaves update Kahan-compensated per-link
//!   aggregates in O(links crossed), and solving water-fills only the
//!   active set. Differential tests pin it to the batch solver at `1e-9`.
//! * [`metrics`] — Jain's fairness index on normalized rates, convergence
//!   time extraction, and weight-class ratio summaries used by the
//!   EXPERIMENTS.md tables.

pub mod incremental;
pub mod maxmin;
pub mod metrics;

pub use incremental::{ChurnAllocation, IncrementalMaxMin, KahanSum};
pub use maxmin::{Allocation, MaxMinProblem};
pub use metrics::{convergence_time, jain_index, jain_series, normalized_spread, ConvergenceSpec};
