//! Incremental weighted max-min under flow churn.
//!
//! The batch solver in [`crate::maxmin`] rebuilds its link aggregates
//! from scratch on every call — fine for a static scenario, O(total
//! arrivals) per churn event when flows come and go. This module keeps
//! the reference allocation **incrementally**: joins and leaves update
//! per-link aggregate weight and reserved floor in O(links crossed),
//! and solving water-fills only the currently active set.
//!
//! Repeatedly adding and subtracting weights from a plain `f64`
//! accumulator drifts (classic cancellation: after a million
//! join/leave pairs of weight 0.1 the naive residual is far above any
//! fairness tolerance). The per-link aggregates therefore use
//! [`KahanSum`] compensation, which keeps the running sums within one
//! ulp of the exact value for these magnitudes — the property the
//! differential tests pin: the incremental allocation matches a batch
//! solve of the same membership to `1e-9`.

use std::fmt;

use crate::maxmin::{Allocation, MaxMinProblem};

/// A compensated (Kahan) running sum.
///
/// Tracks the low-order bits lost by each addition in a carry term and
/// re-applies them, so long alternating add/subtract sequences do not
/// accumulate cancellation error.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    carry: f64,
}

impl KahanSum {
    /// A zero sum.
    pub fn new() -> Self {
        KahanSum::default()
    }

    /// Adds `v` (subtract by adding a negative value).
    pub fn add(&mut self, v: f64) {
        let y = v - self.carry;
        let t = self.sum + y;
        self.carry = (t - self.sum) - y;
        self.sum = t;
    }

    /// The compensated running total.
    pub fn value(&self) -> f64 {
        self.sum
    }
}

/// Identifies a link inside an [`IncrementalMaxMin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkSlot(usize);

/// Identifies a joined flow inside an [`IncrementalMaxMin`].
///
/// Slots are recycled after [`leave`](IncrementalMaxMin::leave), mirroring
/// the simulator's generation-counted flow table; a stale slot is a
/// caller bug and panics rather than silently aliasing the new occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowSlot {
    index: usize,
    generation: u32,
}

#[derive(Debug, Clone)]
struct Member {
    generation: u32,
    weight: f64,
    floor: f64,
    links: Vec<usize>,
}

/// An incrementally-maintained weighted max-min reference allocation.
///
/// # Example
///
/// ```
/// use fairness::incremental::IncrementalMaxMin;
///
/// let mut p = IncrementalMaxMin::new();
/// let l = p.link(30.0);
/// let a = p.join(1.0, 0.0, [l]);
/// let b = p.join(2.0, 0.0, [l]);
/// let rates = p.solve();
/// assert!((rates.rate_of(a).unwrap() - 10.0).abs() < 1e-9);
/// p.leave(a);
/// let rates = p.solve();
/// assert!((rates.rate_of(b).unwrap() - 30.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalMaxMin {
    capacities: Vec<f64>,
    members: Vec<Option<Member>>,
    free: Vec<usize>,
    /// Next generation per slot; bumped on leave so recycled slots hand
    /// out distinguishable [`FlowSlot`]s.
    generations: Vec<u32>,
    /// Compensated aggregate weight of the active flows crossing each
    /// link — the quantity a batch solve recomputes by summation.
    link_weight: Vec<KahanSum>,
    /// Compensated total reserved floor crossing each link.
    link_floor: Vec<KahanSum>,
    active: usize,
}

/// The allocation for the active membership of an [`IncrementalMaxMin`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnAllocation {
    /// `(slot, rate)` in ascending slot-index order.
    rates: Vec<(FlowSlot, f64)>,
}

impl IncrementalMaxMin {
    /// Creates an empty instance.
    pub fn new() -> Self {
        IncrementalMaxMin::default()
    }

    /// Adds a link with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not finite and positive.
    pub fn link(&mut self, capacity: f64) -> LinkSlot {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be finite and positive, got {capacity}"
        );
        self.capacities.push(capacity);
        self.link_weight.push(KahanSum::new());
        self.link_floor.push(KahanSum::new());
        LinkSlot(self.capacities.len() - 1)
    }

    /// Number of currently active flows.
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// One past the largest member-slot index in use.
    pub fn slot_bound(&self) -> usize {
        self.members.len()
    }

    /// A flow joins: weight `weight`, minimum-rate contract `floor`
    /// (0 for best effort), crossing `links`. O(|links|).
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or non-positive weight, a negative floor,
    /// an empty link set, or a stale link reference.
    pub fn join(
        &mut self,
        weight: f64,
        floor: f64,
        links: impl IntoIterator<Item = LinkSlot>,
    ) -> FlowSlot {
        assert!(
            weight.is_finite() && weight > 0.0,
            "flow weight must be finite and positive, got {weight}"
        );
        assert!(
            floor.is_finite() && floor >= 0.0,
            "flow floor must be finite and non-negative, got {floor}"
        );
        let links: Vec<usize> = links.into_iter().map(|l| l.0).collect();
        assert!(!links.is_empty(), "a flow must cross at least one link");
        for &l in &links {
            assert!(l < self.capacities.len(), "unknown link index {l}");
            self.link_weight[l].add(weight);
            self.link_floor[l].add(floor);
        }
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                self.members.push(None);
                self.generations.push(0);
                self.members.len() - 1
            }
        };
        let generation = self.generations[index];
        self.members[index] = Some(Member {
            generation,
            weight,
            floor,
            links,
        });
        self.active += 1;
        FlowSlot { index, generation }
    }

    /// The flow in `slot` departs; its slot is recycled. O(|links|).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is stale (already left, or recycled to a newer
    /// occupant).
    pub fn leave(&mut self, slot: FlowSlot) {
        let member = self.members[slot.index]
            .take()
            .filter(|m| m.generation == slot.generation)
            .expect("stale flow slot: the flow already left");
        for &l in &member.links {
            self.link_weight[l].add(-member.weight);
            self.link_floor[l].add(-member.floor);
        }
        self.generations[slot.index] = self.generations[slot.index].wrapping_add(1);
        self.free.push(slot.index);
        self.active -= 1;
    }

    /// Water-fills the residual capacity over the active membership,
    /// starting from the incrementally-maintained link aggregates.
    /// O(active × links) like a batch solve — but independent of how
    /// many flows have ever existed.
    ///
    /// # Panics
    ///
    /// Panics if the floors alone exceed some link's capacity.
    pub fn solve(&self) -> ChurnAllocation {
        let m = self.capacities.len();
        let mut residual = vec![0.0f64; m];
        let mut link_weight = vec![0.0f64; m];
        for l in 0..m {
            let r = self.capacities[l] - self.link_floor[l].value();
            assert!(
                r >= -1e-9 * self.capacities[l],
                "infeasible: minimum-rate contracts exceed the capacity {} of a link",
                self.capacities[l]
            );
            residual[l] = r.max(0.0);
            link_weight[l] = self.link_weight[l].value();
        }
        let active: Vec<(usize, &Member)> = self
            .members
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|member| (i, member)))
            .collect();
        let mut excess = vec![0.0f64; active.len()];
        let mut frozen = vec![false; active.len()];
        let mut unfrozen = active.len();
        while unfrozen > 0 {
            let mut level = f64::INFINITY;
            for l in 0..m {
                if link_weight[l] > 1e-12 {
                    level = level.min(residual[l] / link_weight[l]);
                }
            }
            assert!(
                level.is_finite(),
                "no constraining link for the remaining flows — every flow \
                 must cross at least one capacity-limited link"
            );
            let level = level.max(0.0);
            for (i, (_, member)) in active.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                let inc = level * member.weight;
                excess[i] += inc;
                for &l in &member.links {
                    residual[l] -= inc;
                }
            }
            let mut newly_frozen = 0;
            for (i, (_, member)) in active.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                if member
                    .links
                    .iter()
                    .any(|&l| residual[l] <= 1e-9 * self.capacities[l])
                {
                    frozen[i] = true;
                    newly_frozen += 1;
                    for &l in &member.links {
                        link_weight[l] -= member.weight;
                    }
                }
            }
            assert!(
                newly_frozen > 0,
                "water-filling failed to make progress (numerical issue)"
            );
            unfrozen -= newly_frozen;
        }
        let rates = active
            .iter()
            .zip(&excess)
            .map(|(&(index, member), &e)| {
                (
                    FlowSlot {
                        index,
                        generation: member.generation,
                    },
                    member.floor + e,
                )
            })
            .collect();
        ChurnAllocation { rates }
    }

    /// A batch [`MaxMinProblem`] over the current membership — the
    /// oracle the differential tests compare [`solve`] against.
    ///
    /// [`solve`]: IncrementalMaxMin::solve
    pub fn to_batch(&self) -> (MaxMinProblem, Vec<FlowSlot>) {
        let mut p = MaxMinProblem::new();
        let links: Vec<_> = self.capacities.iter().map(|&c| p.link(c)).collect();
        let mut slots = Vec::new();
        for (index, member) in self.members.iter().enumerate() {
            let Some(member) = member else { continue };
            p.flow_with_floor(
                member.weight,
                member.floor,
                member.links.iter().map(|&l| links[l]),
            );
            slots.push(FlowSlot {
                index,
                generation: member.generation,
            });
        }
        (p, slots)
    }
}

impl ChurnAllocation {
    /// The rate allocated to `slot`, or `None` if the flow was not
    /// active when the allocation was solved.
    pub fn rate_of(&self, slot: FlowSlot) -> Option<f64> {
        self.rates.iter().find(|(s, _)| *s == slot).map(|&(_, r)| r)
    }

    /// All `(slot, rate)` pairs in ascending slot-index order.
    pub fn rates(&self) -> &[(FlowSlot, f64)] {
        &self.rates
    }

    /// The largest absolute rate difference against a batch
    /// [`Allocation`] over the same membership in the same slot order.
    pub fn max_abs_diff(&self, batch: &Allocation) -> f64 {
        assert_eq!(self.rates.len(), batch.rates().len());
        self.rates
            .iter()
            .zip(batch.rates())
            .map(|(&(_, a), &b)| (a - b).abs())
            .fold(0.0f64, f64::max)
    }
}

impl fmt::Display for ChurnAllocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (_, r)) in self.rates.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r:.3}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn kahan_beats_naive_accumulation() {
        // 0.1 is not representable; ten million naive additions drift
        // well past any fairness tolerance while the compensated sum
        // stays within one ulp of the exact total.
        let mut kahan = KahanSum::new();
        let mut naive = 0.0f64;
        for _ in 0..10_000_000 {
            kahan.add(0.1);
            naive += 0.1;
        }
        let exact = 1_000_000.0;
        assert!(
            (kahan.value() - exact).abs() < 1e-9,
            "compensated sum off by {:e}",
            kahan.value() - exact
        );
        assert!(
            (naive - exact).abs() > 1e-6,
            "the naive sum is supposed to drift ({naive}); if this ever \
             fails the test no longer demonstrates anything"
        );
    }

    #[test]
    fn kahan_returns_to_zero_after_mixed_magnitude_churn() {
        // Alternating joins and leaves at mixed magnitudes — the pattern
        // the per-link aggregates see under churn. The compensated sum
        // drains back to a zero far below the solver tolerance.
        let mut kahan = KahanSum::new();
        let weights: Vec<f64> = (0..10_000).map(|i| 0.1 + (i % 97) as f64 * 0.3).collect();
        for &w in &weights {
            kahan.add(w);
        }
        for &w in weights.iter().rev() {
            kahan.add(-w);
        }
        assert!(
            kahan.value().abs() < 1e-12,
            "residual {:e} after full drain",
            kahan.value()
        );
    }

    #[test]
    fn joins_and_leaves_match_batch_exactly() {
        let mut p = IncrementalMaxMin::new();
        let l1 = p.link(500.0);
        let l2 = p.link(500.0);
        let a = p.join(1.0, 0.0, [l1]);
        let b = p.join(2.0, 0.0, [l1, l2]);
        let _c = p.join(1.0, 0.0, [l2]);
        let (batch, _) = p.to_batch();
        assert!(p.solve().max_abs_diff(&batch.solve()) < EPS);
        p.leave(a);
        let (batch, _) = p.to_batch();
        assert!(p.solve().max_abs_diff(&batch.solve()) < EPS);
        p.leave(b);
        let (batch, _) = p.to_batch();
        assert!(p.solve().max_abs_diff(&batch.solve()) < EPS);
    }

    #[test]
    fn slots_are_recycled_with_fresh_generations() {
        let mut p = IncrementalMaxMin::new();
        let l = p.link(100.0);
        let a = p.join(1.0, 0.0, [l]);
        p.leave(a);
        let b = p.join(2.0, 0.0, [l]);
        assert_eq!(a.index, b.index, "the freed slot is reused");
        assert_ne!(a, b, "but under a new generation");
        let alloc = p.solve();
        assert_eq!(alloc.rate_of(a), None, "stale slots resolve to nothing");
        assert!((alloc.rate_of(b).unwrap() - 100.0).abs() < EPS);
        assert_eq!(p.active_count(), 1);
    }

    #[test]
    #[should_panic(expected = "stale flow slot")]
    fn double_leave_is_rejected() {
        let mut p = IncrementalMaxMin::new();
        let l = p.link(100.0);
        let a = p.join(1.0, 0.0, [l]);
        p.leave(a);
        p.leave(a);
    }

    #[test]
    fn floors_are_maintained_incrementally() {
        let mut p = IncrementalMaxMin::new();
        let l = p.link(100.0);
        let contracted = p.join(1.0, 60.0, [l]);
        let best_effort = p.join(1.0, 0.0, [l]);
        let alloc = p.solve();
        assert!((alloc.rate_of(contracted).unwrap() - 80.0).abs() < EPS);
        assert!((alloc.rate_of(best_effort).unwrap() - 20.0).abs() < EPS);
        p.leave(contracted);
        let alloc = p.solve();
        assert!((alloc.rate_of(best_effort).unwrap() - 100.0).abs() < EPS);
    }

    #[test]
    fn long_churn_sequence_stays_within_tolerance_of_batch() {
        use sim_core::rng::DetRng;

        // A parking-lot of three links; flows join with awkward
        // (non-representable) weights and leave in deterministic random
        // order. After every event the incrementally-maintained solve
        // must match a from-scratch batch solve to 1e-9 — the acceptance
        // bound for the churn reference.
        let mut rng = DetRng::stream(0xC0FFEE, "incremental-maxmin");
        let mut p = IncrementalMaxMin::new();
        let links = [p.link(500.0), p.link(400.0), p.link(300.0)];
        let mut live: Vec<FlowSlot> = Vec::new();
        for step in 0..400 {
            let join = live.len() < 3 || (live.len() < 40 && rng.next_f64() < 0.55);
            if join {
                let weight = 0.1 + 2.9 * rng.next_f64();
                let floor = if rng.next_f64() < 0.2 {
                    3.0 * rng.next_f64()
                } else {
                    0.0
                };
                let first = rng.index(links.len());
                let span = 1 + rng.index(links.len() - first);
                live.push(p.join(weight, floor, links[first..first + span].iter().copied()));
            } else {
                let victim = rng.index(live.len());
                p.leave(live.swap_remove(victim));
            }
            let (batch, order) = p.to_batch();
            let alloc = p.solve();
            let diff = alloc.max_abs_diff(&batch.solve());
            assert!(
                diff < EPS,
                "step {step}: incremental diverged from batch by {diff:e}"
            );
            assert_eq!(
                order.len(),
                p.active_count(),
                "batch projection covers the active set"
            );
        }
        // Drain completely: the compensated link aggregates return to
        // (exactly representable) zero-neighbourhood.
        for slot in live.drain(..) {
            p.leave(slot);
        }
        assert_eq!(p.active_count(), 0);
        for l in 0..3 {
            assert!(
                p.link_weight[l].value().abs() < EPS,
                "residual link weight {:e} after full drain",
                p.link_weight[l].value()
            );
        }
    }
}
