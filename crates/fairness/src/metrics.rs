//! Fairness and convergence metrics over simulated rate series.

use sim_core::stats::TimeSeries;
use sim_core::time::{SimDuration, SimTime};

/// Jain's fairness index over normalized rates `x_i = rate_i / weight_i`:
/// `(Σx)² / (n·Σx²)`. Equals 1 for a perfectly weighted-fair allocation
/// and approaches `1/n` as one flow dominates.
///
/// Returns 1.0 for an empty input (vacuously fair).
///
/// # Panics
///
/// Panics if the slices have different lengths or any weight is
/// non-positive.
///
/// # Example
///
/// ```
/// use fairness::metrics::jain_index;
///
/// // Rates 10 and 20 with weights 1 and 2 are perfectly weighted-fair.
/// let j = jain_index(&[10.0, 20.0], &[1.0, 2.0]);
/// assert!((j - 1.0).abs() < 1e-12);
/// ```
pub fn jain_index(rates: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(
        rates.len(),
        weights.len(),
        "rates and weights must have equal length"
    );
    if rates.is_empty() {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for (&r, &w) in rates.iter().zip(weights) {
        assert!(w > 0.0, "weights must be positive, got {w}");
        let x = r / w;
        sum += x;
        sum_sq += x * x;
    }
    if sum_sq <= 0.0 {
        return 1.0; // all-zero allocation: degenerate but uniform
    }
    (sum * sum) / (rates.len() as f64 * sum_sq)
}

/// The ratio of the largest to the smallest normalized rate
/// (`max_i r_i/w_i / min_i r_i/w_i`); 1.0 is perfectly weighted-fair.
///
/// Returns `f64::INFINITY` when some flow received nothing while another
/// did, and 1.0 for an empty input.
///
/// # Panics
///
/// Panics if the slices have different lengths or any weight is
/// non-positive.
pub fn normalized_spread(rates: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(
        rates.len(),
        weights.len(),
        "rates and weights must have equal length"
    );
    let mut min = f64::INFINITY;
    let mut max: f64 = 0.0;
    for (&r, &w) in rates.iter().zip(weights) {
        assert!(w > 0.0, "weights must be positive, got {w}");
        let x = r / w;
        min = min.min(x);
        max = max.max(x);
    }
    if rates.is_empty() || max <= 0.0 {
        1.0
    } else if min <= 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

/// Parameters for [`convergence_time`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceSpec {
    /// The target value the series should settle around.
    pub target: f64,
    /// Relative tolerance band, e.g. 0.2 accepts `[0.8, 1.2]·target`.
    pub tolerance: f64,
    /// How long the series must remain inside the band to count as
    /// converged.
    pub sustain: SimDuration,
}

/// Returns the first time from which the sample-and-hold series remains
/// inside `target·(1 ± tolerance)` for at least `sustain`, or `None` if it
/// never does (including when the final in-band stretch is shorter than
/// `sustain` at the end of the series).
///
/// This is the convergence measure used to quantify §4.2's claim that
/// Corelite converges faster than CSFQ.
///
/// # Panics
///
/// Panics if `tolerance` is negative or `target` is not finite.
pub fn convergence_time(series: &TimeSeries, spec: &ConvergenceSpec) -> Option<SimTime> {
    assert!(spec.tolerance >= 0.0, "tolerance must be non-negative");
    assert!(spec.target.is_finite(), "target must be finite");
    let lo = spec.target * (1.0 - spec.tolerance);
    let hi = spec.target * (1.0 + spec.tolerance);
    let mut entered: Option<SimTime> = None;
    let mut last_time: Option<SimTime> = None;
    for (t, v) in series.iter() {
        last_time = Some(t);
        let inside = v >= lo && v <= hi;
        match (inside, entered) {
            (true, None) => entered = Some(t),
            (true, Some(since)) => {
                if t.saturating_since(since) >= spec.sustain {
                    // keep scanning only if a later excursion invalidates —
                    // handled by resetting below; once sustained, report.
                    return Some(since);
                }
            }
            (false, _) => entered = None,
        }
    }
    // In-band at the end but not yet for `sustain`.
    match (entered, last_time) {
        (Some(since), Some(end)) if end.saturating_since(since) >= spec.sustain => Some(since),
        _ => None,
    }
}

/// Mean of the final values of each series over the window `[from, to)`,
/// grouped by weight class. Returns `(weight, mean_rate)` pairs sorted by
/// weight — the per-class summary printed in EXPERIMENTS.md.
pub fn class_means(series: &[(&TimeSeries, u32)], from: SimTime, to: SimTime) -> Vec<(u32, f64)> {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<u32, (f64, usize)> = BTreeMap::new();
    for (s, w) in series {
        if let Some(mean) = s.mean_in(from, to) {
            let e = acc.entry(*w).or_insert((0.0, 0));
            e.0 += mean;
            e.1 += 1;
        }
    }
    acc.into_iter()
        .map(|(w, (sum, n))| (w, sum / n as f64))
        .collect()
}

/// Computes the weighted Jain index over time: for consecutive windows of
/// width `window`, the index of the flows' mean rates within that window
/// (flows with no samples in a window are skipped for it).
///
/// This is the "convergence to fairness" curve: it starts low while flows
/// ramp disparately and approaches 1.0 as the allocation settles.
///
/// # Panics
///
/// Panics if `window` is zero or any weight is non-positive.
pub fn jain_series(
    series: &[(&TimeSeries, u32)],
    horizon: SimTime,
    window: SimDuration,
) -> TimeSeries {
    assert!(!window.is_zero(), "window must be positive");
    let mut out = TimeSeries::new();
    let mut start = SimTime::ZERO;
    while start + window <= horizon {
        let end = start + window;
        let (rates, weights): (Vec<f64>, Vec<f64>) = series
            .iter()
            .filter_map(|(s, w)| s.mean_in(start, end).map(|m| (m, *w as f64)))
            .unzip();
        if !rates.is_empty() {
            out.push(end, jain_index(&rates, &weights));
        }
        start = end;
    }
    out
}

/// Half the peak-to-peak excursion of samples at or after `from`, as a
/// fraction of `reference` — the residual oscillation amplitude once a
/// series has settled. Returns 0.0 when fewer than two samples remain.
///
/// # Panics
///
/// Panics if `reference` is not strictly positive.
pub fn oscillation_amplitude(series: &TimeSeries, from: SimTime, reference: f64) -> f64 {
    assert!(
        reference > 0.0,
        "oscillation reference must be positive, got {reference}"
    );
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut n = 0usize;
    for (t, v) in series.iter() {
        if t >= from {
            min = min.min(v);
            max = max.max(v);
            n += 1;
        }
    }
    if n < 2 {
        0.0
    } else {
        (max - min) / 2.0 / reference
    }
}

/// Convergence diagnostics of one rate series against an analytic
/// reference (the weighted max-min rate the flow should receive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SettlingReport {
    /// First instant from which the series stays within
    /// `reference·(1 ± tolerance)` for the sustain window, if any.
    pub settling_time: Option<SimTime>,
    /// Residual oscillation after settling, as a fraction of the
    /// reference (half peak-to-peak); `None` when the series never
    /// settles.
    pub oscillation: Option<f64>,
}

/// Measures when `series` settles to within `tolerance` of `reference`
/// (sustained for `sustain`) and, if it does, how much it still
/// oscillates afterwards. This is the per-flow row of the telemetry
/// binary's convergence table.
///
/// # Panics
///
/// Panics if `reference` is not strictly positive or `tolerance` is
/// negative.
pub fn settling_report(
    series: &TimeSeries,
    reference: f64,
    tolerance: f64,
    sustain: SimDuration,
) -> SettlingReport {
    assert!(
        reference > 0.0,
        "settling reference must be positive, got {reference}"
    );
    let spec = ConvergenceSpec {
        target: reference,
        tolerance,
        sustain,
    };
    let settling_time = convergence_time(series, &spec);
    let oscillation = settling_time.map(|from| oscillation_amplitude(series, from, reference));
    SettlingReport {
        settling_time,
        oscillation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn jain_perfect_fairness() {
        assert!((jain_index(&[25.0, 50.0, 75.0], &[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_total_unfairness_tends_to_one_over_n() {
        let j = jain_index(&[100.0, 0.0, 0.0, 0.0], &[1.0, 1.0, 1.0, 1.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_empty_and_zero() {
        assert_eq!(jain_index(&[], &[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn jain_length_mismatch_panics() {
        jain_index(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn spread_detects_imbalance() {
        assert!((normalized_spread(&[10.0, 20.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
        assert!((normalized_spread(&[10.0, 40.0], &[1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(normalized_spread(&[0.0, 10.0], &[1.0, 1.0]), f64::INFINITY);
        assert_eq!(normalized_spread(&[], &[]), 1.0);
    }

    fn step_series(points: &[(f64, f64)]) -> TimeSeries {
        points.iter().map(|&(ts, v)| (t(ts), v)).collect()
    }

    #[test]
    fn convergence_found_after_transient() {
        let s = step_series(&[
            (0.0, 10.0),
            (1.0, 60.0),
            (2.0, 95.0),
            (3.0, 102.0),
            (4.0, 99.0),
            (10.0, 101.0),
        ]);
        let spec = ConvergenceSpec {
            target: 100.0,
            tolerance: 0.1,
            sustain: SimDuration::from_secs(5),
        };
        assert_eq!(convergence_time(&s, &spec), Some(t(2.0)));
    }

    #[test]
    fn convergence_resets_on_excursion() {
        let s = step_series(&[
            (0.0, 100.0),
            (1.0, 100.0),
            (2.0, 10.0), // excursion
            (3.0, 100.0),
            (9.0, 100.0),
        ]);
        let spec = ConvergenceSpec {
            target: 100.0,
            tolerance: 0.1,
            sustain: SimDuration::from_secs(5),
        };
        assert_eq!(convergence_time(&s, &spec), Some(t(3.0)));
    }

    #[test]
    fn convergence_none_when_band_never_sustained() {
        let s = step_series(&[(0.0, 100.0), (1.0, 10.0), (2.0, 100.0), (3.0, 10.0)]);
        let spec = ConvergenceSpec {
            target: 100.0,
            tolerance: 0.1,
            sustain: SimDuration::from_secs(5),
        };
        assert_eq!(convergence_time(&s, &spec), None);
    }

    #[test]
    fn convergence_accepts_sustained_tail() {
        let s = step_series(&[(0.0, 10.0), (1.0, 100.0), (7.0, 100.0)]);
        let spec = ConvergenceSpec {
            target: 100.0,
            tolerance: 0.1,
            sustain: SimDuration::from_secs(5),
        };
        assert_eq!(convergence_time(&s, &spec), Some(t(1.0)));
    }

    #[test]
    fn jain_series_rises_as_rates_converge() {
        // Two weight-1 flows: one constant at 50, one ramping 0 → 50.
        let a = step_series(&[(0.0, 50.0), (10.0, 50.0)]);
        let ramp: TimeSeries = (0..=10).map(|i| (t(i as f64), 5.0 * i as f64)).collect();
        let series = jain_series(&[(&a, 1), (&ramp, 1)], t(10.0), SimDuration::from_secs(2));
        let values: Vec<f64> = series.iter().map(|(_, v)| v).collect();
        assert!(values.first().unwrap() < values.last().unwrap());
        assert!(*values.last().unwrap() > 0.99, "{values:?}");
    }

    #[test]
    fn jain_series_skips_empty_windows() {
        let a = step_series(&[(5.0, 10.0)]);
        let series = jain_series(&[(&a, 1)], t(8.0), SimDuration::from_secs(2));
        // Only window [4,6) contains the sample; the empty windows
        // produce no points.
        assert_eq!(series.len(), 1);
        assert_eq!(series.last_value(), Some(1.0));
    }

    #[test]
    fn oscillation_measures_half_peak_to_peak() {
        let s = step_series(&[(0.0, 10.0), (5.0, 96.0), (6.0, 104.0), (7.0, 100.0)]);
        // From t=5: min 96, max 104 ⇒ half peak-to-peak 4, /100 = 0.04.
        assert!((oscillation_amplitude(&s, t(5.0), 100.0) - 0.04).abs() < 1e-12);
        // The pre-settling transient at t=0 is excluded.
        assert!(oscillation_amplitude(&s, t(0.0), 100.0) > 0.4);
        // Fewer than two post-settling samples: amplitude is undefined ⇒ 0.
        assert_eq!(oscillation_amplitude(&s, t(7.0), 100.0), 0.0);
    }

    #[test]
    fn settling_report_combines_time_and_oscillation() {
        let s = step_series(&[
            (0.0, 10.0),
            (2.0, 98.0),
            (4.0, 103.0),
            (6.0, 99.0),
            (10.0, 100.0),
        ]);
        let rep = settling_report(&s, 100.0, 0.1, SimDuration::from_secs(5));
        assert_eq!(rep.settling_time, Some(t(2.0)));
        // From t=2: min 98, max 103 ⇒ (5/2)/100.
        assert!((rep.oscillation.unwrap() - 0.025).abs() < 1e-12);

        let never = step_series(&[(0.0, 10.0), (5.0, 10.0)]);
        let rep = settling_report(&never, 100.0, 0.1, SimDuration::from_secs(5));
        assert_eq!(rep.settling_time, None);
        assert_eq!(rep.oscillation, None);
    }

    #[test]
    fn class_means_group_by_weight() {
        let a = step_series(&[(0.0, 24.0), (1.0, 26.0)]);
        let b = step_series(&[(0.0, 50.0), (1.0, 50.0)]);
        let c = step_series(&[(0.0, 49.0), (1.0, 51.0)]);
        let out = class_means(&[(&a, 1), (&b, 2), (&c, 2)], t(0.0), t(2.0));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 1);
        assert!((out[0].1 - 25.0).abs() < 1e-12);
        assert_eq!(out[1].0, 2);
        assert!((out[1].1 - 50.0).abs() < 1e-12);
    }
}
