//! Greedy, non-adaptive sources.
//!
//! Each flow sends at a fixed offered rate regardless of congestion
//! signals — the adversarial workload against which fairness mechanisms
//! are judged. Under plain FIFO or RED cores, goodput tracks the offered
//! load ("send more, get more"); under Corelite or CSFQ it tracks the
//! configured weights.

use sim_core::time::{SimDuration, SimTime};

use netsim::ids::FlowId;
use netsim::logic::{Ctx, LogicReport, RouterLogic, TimerKind};

const TIMER_EMIT: u32 = 1;

/// A source that emits every active flow (whose ingress is this node) at
/// a fixed per-flow rate, ignoring all feedback.
#[derive(Debug)]
pub struct GreedySource {
    /// Offered rate per flow id, packets per second; flows not listed use
    /// `default_rate`.
    rates: netsim::slab::DenseMap<FlowId, f64>,
    default_rate: f64,
    emitted: u64,
}

impl GreedySource {
    /// Creates a source offering `default_rate` packets per second for
    /// every flow starting at this node.
    ///
    /// # Panics
    ///
    /// Panics if `default_rate` is not strictly positive.
    pub fn new(default_rate: f64) -> Self {
        assert!(default_rate > 0.0, "offered rate must be positive");
        GreedySource {
            rates: netsim::slab::DenseMap::new(),
            default_rate,
            emitted: 0,
        }
    }

    /// Overrides the offered rate for one flow (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn with_rate(mut self, flow: FlowId, rate: f64) -> Self {
        assert!(rate > 0.0, "offered rate must be positive");
        self.rates.insert(flow, rate);
        self
    }

    fn rate_of(&self, flow: FlowId) -> f64 {
        self.rates.get(&flow).copied().unwrap_or(self.default_rate)
    }
}

impl RouterLogic for GreedySource {
    fn on_flow_start(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        ctx.set_timer(
            SimDuration::ZERO,
            TimerKind::with_param(TIMER_EMIT, flow.index() as u64),
        );
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
        if timer.tag != TIMER_EMIT {
            return;
        }
        let flow = FlowId::from_index(timer.param as usize);
        if !ctx.flow(flow).is_active_at(ctx.now()) {
            return;
        }
        let packet = ctx.new_packet(flow);
        ctx.emit(packet);
        self.emitted += 1;
        ctx.set_timer(
            SimDuration::from_secs_f64(1.0 / self.rate_of(flow)),
            TimerKind::with_param(TIMER_EMIT, flow.index() as u64),
        );
    }

    fn report(&self, _now: SimTime) -> LogicReport {
        let mut report = LogicReport::default();
        report
            .counters
            .insert("greedy_emitted".to_owned(), self.emitted as f64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::flow::FlowSpec;
    use netsim::link::LinkSpec;
    use netsim::logic::ForwardLogic;
    use netsim::topology::TopologyBuilder;

    #[test]
    fn greedy_ignores_losses() {
        // 800 pkt/s into a 500 pkt/s link: a greedy source keeps sending
        // at its offered rate; deliveries cap at the link rate.
        let mut b = TopologyBuilder::new(5);
        let src = b.node("src", |_| Box::new(GreedySource::new(800.0)));
        let dst = b.node("dst", |_| Box::new(ForwardLogic));
        b.link(
            src,
            dst,
            LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40),
        );
        let f = b.flow(FlowSpec::new(vec![src, dst], 1).active(SimTime::ZERO, None));
        let end = SimTime::from_secs(10);
        let mut net = b.build();
        net.run_until(end);
        let report = net.into_report(end);
        let emitted = report.counter_total("greedy_emitted");
        assert!((emitted - 8000.0).abs() < 20.0, "emitted {emitted}");
        let delivered = report.flow(f).delivered_packets as f64;
        assert!((delivered - 5000.0).abs() < 100.0, "delivered {delivered}");
        assert!(report.flow(f).tail_drops > 2500);
    }

    #[test]
    fn per_flow_rate_overrides_apply() {
        let src = GreedySource::new(100.0).with_rate(FlowId::from_index(3), 250.0);
        assert_eq!(src.rate_of(FlowId::from_index(3)), 250.0);
        assert_eq!(src.rate_of(FlowId::from_index(0)), 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        GreedySource::new(0.0);
    }
}
