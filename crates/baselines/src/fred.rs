//! Flow Random Early Drop (FRED) — the Lin & Morris gateway the paper
//! cites as \[2\] and critiques in §5: *"FRED extends RED to provide some
//! degree of fair bandwidth allocation. However, it maintains state for
//! all flows that have at least one packet in the buffer."*
//!
//! FRED keeps RED's averaged queue and thresholds but adds per-active-flow
//! accounting: `qlen_i` (the flow's packets currently buffered), a global
//! fair buffer share `avgcq` (average per-flow backlog), a floor `min_q`
//! below which a flow is never dropped, and a `strike` counter that
//! penalizes flows repeatedly exceeding several times the average. The
//! result is approximate fair buffer sharing — at the cost of exactly the
//! per-flow state Corelite is designed to avoid. The
//! [`RedCore`](crate::red::RedCore) / [`FredCore`] pair lets the tests
//! quantify both sides of that §5 trade-off.

use sim_core::rng::DetRng;
use sim_core::time::SimTime;

use netsim::ids::{FlowId, LinkId};
use netsim::logic::{Ctx, LogicReport, RouterLogic};
use netsim::packet::Packet;
use netsim::slab::DenseMap;

use crate::red::RedConfig;

/// FRED parameters on top of the RED base configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FredConfig {
    /// The RED thresholds/gain FRED inherits.
    pub red: RedConfig,
    /// Minimum number of buffered packets every flow may hold regardless
    /// of the average (Lin & Morris use 2–4).
    pub min_q: usize,
    /// Multiple of the average per-flow backlog at which a flow is
    /// struck (classically 2).
    pub strike_multiplier: f64,
}

impl Default for FredConfig {
    fn default() -> Self {
        FredConfig {
            red: RedConfig::default(),
            min_q: 2,
            strike_multiplier: 2.0,
        }
    }
}

impl FredConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn validate(&self) {
        self.red.validate();
        assert!(self.min_q >= 1, "min_q must allow at least one packet");
        assert!(
            self.strike_multiplier > 1.0,
            "strike multiplier must exceed 1"
        );
    }
}

#[derive(Debug, Clone, Default)]
struct FlowAccount {
    /// Packets of this flow currently buffered on the link.
    qlen: usize,
    /// Number of times the flow exceeded the strike threshold.
    strikes: u32,
}

#[derive(Debug, Default)]
struct LinkState {
    avg: f64,
    /// Per-active-flow accounting — exactly the state §5 points at.
    flows: DenseMap<FlowId, FlowAccount>,
}

/// A FRED core router: RED plus per-active-flow buffer accounting.
#[derive(Debug)]
pub struct FredCore {
    cfg: FredConfig,
    rng: DetRng,
    links: DenseMap<LinkId, LinkState>,
    early_drops: u64,
    forwarded: u64,
    /// High-water mark of simultaneously tracked flows (the paper's
    /// scalability objection, measured).
    peak_tracked_flows: usize,
}

impl FredCore {
    /// Creates FRED logic with the given component `seed` and parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`FredConfig::validate`].
    pub fn new(seed: u64, cfg: FredConfig) -> Self {
        cfg.validate();
        FredCore {
            cfg,
            rng: DetRng::new(seed),
            links: DenseMap::new(),
            early_drops: 0,
            forwarded: 0,
            peak_tracked_flows: 0,
        }
    }

    /// The most flows ever tracked simultaneously on one link.
    pub fn peak_tracked_flows(&self) -> usize {
        self.peak_tracked_flows
    }
}

impl RouterLogic for FredCore {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        let Some(link) = ctx.next_hop(packet.flow) else {
            return;
        };
        let q = ctx.link_queue_len(link) as f64;
        let state = self.links.entry_or_insert_with(link, LinkState::default);
        state.avg = (1.0 - self.cfg.red.wq) * state.avg + self.cfg.red.wq * q;

        // Average per-flow backlog over currently active flows.
        let active = state.flows.values().filter(|a| a.qlen > 0).count().max(1);
        let avgcq = (state.avg / active as f64).max(1.0);
        let account = state
            .flows
            .entry_or_insert_with(packet.flow, FlowAccount::default);

        let strike_threshold = (self.cfg.strike_multiplier * avgcq) as usize;
        let over_average = account.qlen + 1 > avgcq.ceil() as usize;
        let drop = if account.qlen + 1 > strike_threshold.max(self.cfg.min_q) {
            // Non-adaptive flow: strike it and drop deterministically.
            account.strikes += 1;
            true
        } else if account.strikes > 1 && over_average {
            // Struck flows are held to the average.
            true
        } else if account.qlen < self.cfg.min_q {
            // Every flow may buffer at least min_q packets.
            false
        } else if state.avg >= self.cfg.red.max_thresh {
            true
        } else if state.avg > self.cfg.red.min_thresh {
            // RED's ramp, but applied per flow only when the flow holds at
            // least its fair share of the buffer.
            let p = self.cfg.red.max_p * (state.avg - self.cfg.red.min_thresh)
                / (self.cfg.red.max_thresh - self.cfg.red.min_thresh);
            over_average && self.rng.bernoulli(p.min(1.0))
        } else {
            false
        };

        if drop {
            self.early_drops += 1;
            ctx.drop_packet(packet);
            return;
        }
        account.qlen += 1;
        let tracked = state.flows.values().filter(|a| a.qlen > 0).count();
        self.peak_tracked_flows = self.peak_tracked_flows.max(tracked);
        self.forwarded += 1;
        let flow = packet.flow;
        ctx.forward(link, packet);
        // Approximate departure accounting: FRED decrements qlen when the
        // packet leaves the queue; we do not see departures, so emulate
        // with a decay proportional to the service this flow should get.
        // One-packet decrement per forwarded packet keeps qlen ≈ the
        // flow's share of the instantaneous queue.
        let state = self.links.get_mut(&link).expect("state exists");
        if q < 1.0 {
            // Queue empty before this packet: previous backlog has drained.
            for account in state.flows.values_mut() {
                account.qlen = 0;
            }
            if let Some(account) = state.flows.get_mut(&flow) {
                account.qlen = 1;
            }
        }
    }

    fn report(&self, _now: SimTime) -> LogicReport {
        let mut report = LogicReport::default();
        report
            .counters
            .insert("fred_early_drops".to_owned(), self.early_drops as f64);
        report
            .counters
            .insert("fred_forwarded".to_owned(), self.forwarded as f64);
        report.counters.insert(
            "fred_peak_tracked_flows".to_owned(),
            self.peak_tracked_flows as f64,
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedySource;
    use netsim::flow::FlowSpec;
    use netsim::link::LinkSpec;
    use netsim::logic::ForwardLogic;
    use netsim::topology::TopologyBuilder;
    use sim_core::time::{SimDuration, SimTime};

    #[test]
    #[should_panic(expected = "min_q")]
    fn zero_min_q_rejected() {
        FredCore::new(
            0,
            FredConfig {
                min_q: 0,
                ..FredConfig::default()
            },
        );
    }

    /// Two greedy flows, one aggressive (700 pkt/s) and one modest
    /// (100 pkt/s), through one 500 pkt/s FRED link.
    fn uneven_run() -> netsim::SimReport {
        let mut b = TopologyBuilder::new(88);
        let fast_src = b.node("fast", |_| Box::new(GreedySource::new(700.0)));
        let slow_src = b.node("slow", |_| Box::new(GreedySource::new(100.0)));
        let fred = b.node("fred", |s| {
            Box::new(FredCore::new(s, FredConfig::default()))
        });
        let sink = b.node("sink", |_| Box::new(ForwardLogic));
        let access = LinkSpec::new(40_000_000, SimDuration::from_millis(1), 400);
        b.link(fast_src, fred, access);
        b.link(slow_src, fred, access);
        b.link(
            fred,
            sink,
            LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40),
        );
        b.flow(FlowSpec::new(vec![fast_src, fred, sink], 1).active(SimTime::ZERO, None));
        b.flow(FlowSpec::new(vec![slow_src, fred, sink], 1).active(SimTime::ZERO, None));
        let end = SimTime::from_secs(40);
        let mut net = b.build();
        net.run_until(end);
        net.into_report(end)
    }

    #[test]
    fn fred_protects_the_modest_flow_better_than_its_share_under_red() {
        let report = uneven_run();
        let modest = report.flows[1].delivered_packets as f64 / 40.0;
        // Offered 100 pkt/s; FRED's min_q floor and strikes against the
        // aggressive flow keep most of it flowing.
        assert!(
            modest > 70.0,
            "modest flow should keep most of its 100 pkt/s: {modest}"
        );
        let aggressive = report.flows[0].delivered_packets as f64 / 40.0;
        assert!(
            aggressive < 470.0,
            "aggressive flow must be reined in: {aggressive}"
        );
    }

    #[test]
    fn fred_keeps_per_flow_state_unlike_corelite_cores() {
        // The §5 objection, measured: FRED tracked both flows at once.
        let report = uneven_run();
        assert!(
            report.counter_total("fred_peak_tracked_flows") >= 2.0,
            "FRED must account per active flow"
        );
        assert!(report.counter_total("fred_early_drops") > 0.0);
    }
}
