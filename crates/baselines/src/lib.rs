//! Related-work baselines from the paper's §5 discussion.
//!
//! The paper positions Corelite against queue-management schemes that
//! predate it:
//!
//! * plain drop-tail FIFO forwarding ([`FifoCore`] — what the bare
//!   [`netsim`] substrate gives you),
//! * **RED** (Floyd & Jacobson, cited as \[9\]): random early detection
//!   with an EWMA queue estimate and a probabilistic drop ramp
//!   ([`red::RedCore`]) — *"However, it provides no fairness guarantees"*,
//! * **FRED** (Lin & Morris, cited as \[2\]): RED plus per-active-flow
//!   buffer accounting ([`fred::FredCore`]) — fairer than RED, but
//!   carrying exactly the per-flow state §5 objects to,
//! * greedy, non-adaptive sources ([`greedy::GreedySource`]) to expose
//!   exactly that: under RED (or FIFO), goodput follows the *offered*
//!   load, not the configured rate weights.
//!
//! The integration tests use these to reproduce the §5 claim
//! quantitatively: RED spreads losses but does not equalize (weighted)
//! rates, while Corelite does.

pub mod fred;
pub mod greedy;
pub mod red;

pub use fred::{FredConfig, FredCore};
pub use greedy::GreedySource;
pub use red::{RedConfig, RedCore};

/// Plain drop-tail FIFO forwarding — an alias for the substrate's
/// default behaviour, named for experiment legibility.
pub type FifoCore = netsim::logic::ForwardLogic;
