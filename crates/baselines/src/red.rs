//! Random Early Detection (RED) core router.
//!
//! Implements the Floyd–Jacobson gateway the paper cites as \[9\]: on
//! every packet arrival the router updates an exponentially weighted
//! moving average of the output queue length and drops the packet with a
//! probability that ramps linearly from 0 at `min_thresh` to `max_p` at
//! `max_thresh` (and 1 beyond). RED spreads losses over time and avoids
//! global synchronization, but — as the paper stresses — knows nothing of
//! flows or weights, so it cannot provide (weighted) fairness.

use sim_core::rng::DetRng;
use sim_core::time::SimTime;

use netsim::ids::LinkId;
use netsim::logic::{Ctx, LogicReport, RouterLogic};
use netsim::packet::Packet;

/// RED parameters (classic values from the 1993 paper, scaled to the
/// reproduction's 40-packet queues).
#[derive(Debug, Clone, PartialEq)]
pub struct RedConfig {
    /// EWMA gain `w_q` applied per arriving packet (classic: 0.002; we
    /// default higher because our queues are small).
    pub wq: f64,
    /// No drops while the average queue is below this (packets).
    pub min_thresh: f64,
    /// All packets dropped at or above this average (packets).
    pub max_thresh: f64,
    /// Drop probability at `max_thresh`.
    pub max_p: f64,
}

impl Default for RedConfig {
    fn default() -> Self {
        RedConfig {
            wq: 0.02,
            min_thresh: 5.0,
            max_thresh: 15.0,
            max_p: 0.1,
        }
    }
}

impl RedConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn validate(&self) {
        assert!(self.wq > 0.0 && self.wq <= 1.0, "w_q must be in (0, 1]");
        assert!(
            self.min_thresh >= 0.0 && self.max_thresh > self.min_thresh,
            "thresholds must satisfy 0 <= min < max"
        );
        assert!(
            self.max_p > 0.0 && self.max_p <= 1.0,
            "max_p must be in (0, 1]"
        );
    }
}

#[derive(Debug, Clone, Default)]
struct LinkAvg {
    avg: f64,
    /// Packets since the last drop, for RED's drop-spacing correction.
    count: u64,
}

/// A RED core router: EWMA queue estimate + probabilistic early drop,
/// per outgoing link. No per-flow state of any kind.
#[derive(Debug)]
pub struct RedCore {
    cfg: RedConfig,
    rng: DetRng,
    // Indexed lazily; links discovered on first packet.
    links: netsim::slab::DenseMap<LinkId, LinkAvg>,
    early_drops: u64,
    forwarded: u64,
}

impl RedCore {
    /// Creates RED logic with the given component `seed` and parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`RedConfig::validate`].
    pub fn new(seed: u64, cfg: RedConfig) -> Self {
        cfg.validate();
        RedCore {
            cfg,
            rng: DetRng::new(seed),
            links: netsim::slab::DenseMap::new(),
            early_drops: 0,
            forwarded: 0,
        }
    }
}

impl RouterLogic for RedCore {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        let Some(link) = ctx.next_hop(packet.flow) else {
            return;
        };
        let q = ctx.link_queue_len(link) as f64;
        let state = self.links.entry_or_insert_with(link, LinkAvg::default);
        state.avg = (1.0 - self.cfg.wq) * state.avg + self.cfg.wq * q;
        let p_base = if state.avg < self.cfg.min_thresh {
            0.0
        } else if state.avg >= self.cfg.max_thresh {
            1.0
        } else {
            self.cfg.max_p * (state.avg - self.cfg.min_thresh)
                / (self.cfg.max_thresh - self.cfg.min_thresh)
        };
        // Floyd–Jacobson drop-spacing: p = p_b / (1 − count·p_b) spreads
        // drops roughly uniformly between drops.
        let p = if p_base > 0.0 && p_base < 1.0 {
            (p_base / (1.0 - (state.count as f64) * p_base).max(p_base)).min(1.0)
        } else {
            p_base
        };
        if self.rng.bernoulli(p) {
            state.count = 0;
            self.early_drops += 1;
            ctx.drop_packet(packet);
        } else {
            state.count += 1;
            self.forwarded += 1;
            ctx.forward(link, packet);
        }
    }

    fn report(&self, _now: SimTime) -> LogicReport {
        let mut report = LogicReport::default();
        report
            .counters
            .insert("red_early_drops".to_owned(), self.early_drops as f64);
        report
            .counters
            .insert("red_forwarded".to_owned(), self.forwarded as f64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::flow::FlowSpec;
    use netsim::link::LinkSpec;
    use netsim::logic::{CbrSource, ForwardLogic};
    use netsim::topology::TopologyBuilder;
    use sim_core::time::SimDuration;

    #[test]
    #[should_panic(expected = "thresholds")]
    fn inverted_thresholds_rejected() {
        RedCore::new(
            0,
            RedConfig {
                min_thresh: 20.0,
                max_thresh: 10.0,
                ..RedConfig::default()
            },
        );
    }

    /// One CBR source overdriving a bottleneck through a RED router.
    fn overload_run(rate: f64) -> netsim::SimReport {
        let mut b = TopologyBuilder::new(77);
        let src = b.node("src", move |_| Box::new(CbrSource::new(rate)));
        let red = b.node("red", |s| Box::new(RedCore::new(s, RedConfig::default())));
        let dst = b.node("dst", |_| Box::new(ForwardLogic));
        b.link(
            src,
            red,
            LinkSpec::new(40_000_000, SimDuration::from_millis(1), 400),
        );
        b.link(
            red,
            dst,
            LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40),
        );
        b.flow(FlowSpec::new(vec![src, red, dst], 1).active(SimTime::ZERO, None));
        let end = SimTime::from_secs(30);
        let mut net = b.build();
        net.run_until(end);
        net.into_report(end)
    }

    #[test]
    fn red_drops_early_under_overload() {
        let report = overload_run(700.0); // 700 pkt/s into 500 pkt/s
        let early = report.counter_total("red_early_drops");
        assert!(early > 0.0, "RED should drop before the queue fills");
        // Early drops keep the queue from riding at its 40-packet cap.
        assert!(
            report.links[1].peak_occupancy < 40,
            "peak {} should stay below the drop-tail cap",
            report.links[1].peak_occupancy
        );
    }

    #[test]
    fn red_is_transparent_when_uncongested() {
        let report = overload_run(100.0);
        assert_eq!(report.counter_total("red_early_drops"), 0.0);
        assert_eq!(report.total_drops(), 0);
        assert!(report.flows[0].delivered_packets > 2900);
    }
}
