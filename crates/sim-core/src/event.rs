//! A deterministic event queue for discrete-event simulation.
//!
//! Events are ordered by timestamp; events with equal timestamps are
//! delivered in insertion order (stable FIFO tie-break). This makes a
//! simulation run a pure function of its inputs and seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A timestamped event queue with deterministic ordering.
///
/// # Example
///
/// ```
/// use sim_core::event::EventQueue;
/// use sim_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(1), 'b');
/// q.push(SimTime::from_secs(1), 'c'); // same instant: FIFO order
/// q.push(SimTime::ZERO, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Creates an empty queue with capacity for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Ties are broken by insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            (e.time, e.event)
        })
    }

    /// Returns the timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns the total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "e");
        q.push(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_secs(2), "b");
        q.push(SimTime::from_secs(4), "d");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(SimTime::from_secs(3), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "e");
    }

    #[test]
    fn bookkeeping_counts() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        q.pop();
        assert_eq!(q.delivered(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.delivered(), 1);
    }
}
