//! A deterministic event queue for discrete-event simulation.
//!
//! Events are ordered by timestamp; events with equal timestamps are
//! delivered in insertion order (stable FIFO tie-break). This makes a
//! simulation run a pure function of its inputs and seed.
//!
//! Two interchangeable backends implement the same delivery contract:
//!
//! * [`QueueBackend::Wheel`] (the default) — a hand-rolled hierarchical
//!   timer wheel. Scheduling and delivery are O(1) amortized for the
//!   near-future events that dominate a packet-level simulation (link
//!   serialization plus propagation); events beyond the wheel horizon
//!   spill into a small overflow heap and migrate in as the clock
//!   reaches their window. See DESIGN.md §"Engine performance" for the
//!   layout.
//! * [`QueueBackend::Heap`] — the original `BinaryHeap` implementation,
//!   kept as [`HeapEventQueue`] for differential testing and as a
//!   reference for the ordering contract.
//!
//! The wheel assumes the simulation invariant that time never rewinds:
//! events must not be scheduled earlier than the latest delivered event
//! (debug-asserted; in release builds such a push is clamped to the
//! current tick). The heap backend has no such requirement.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Log2 of the wheel tick in nanoseconds: one tick is 2^17 ns ≈ 131 µs.
/// Events inside one tick are ordered exactly by `(time, seq)` — the
/// tick granularity batches *storage*, never delivery order — so the
/// tick size is a pure performance knob: it trades cascade depth
/// (cheaper with coarse ticks, since link-scale delays land directly in
/// the bottom levels) against the size of the per-tick sort (costlier
/// with coarse ticks). 131 µs keeps the per-tick population at a
/// handful of events for packet-level workloads while eliminating most
/// cascades; see DESIGN.md §"Engine performance".
const TICK_SHIFT: u32 = 17;
/// Bits per wheel level: 64 slots each.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels. Four 64-slot levels cover 2^24 ticks ≈ 36.6 simulated
/// minutes ahead of the current tick; anything farther overflows to a
/// heap.
const LEVELS: usize = 4;
/// Total tick bits the wheel resolves (24).
const WHEEL_BITS: u32 = LEVEL_BITS * LEVELS as u32;

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueBackend {
    /// Hierarchical timer wheel with overflow heap (default).
    Wheel,
    /// Binary heap (the seed implementation; reference semantics).
    Heap,
}

/// A timestamped event queue with deterministic ordering.
///
/// # Example
///
/// ```
/// use sim_core::event::EventQueue;
/// use sim_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(1), 'b');
/// q.push(SimTime::from_secs(1), 'c'); // same instant: FIFO order
/// q.push(SimTime::ZERO, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    backend: Backend<E>,
}

#[derive(Debug, Clone)]
enum Backend<E> {
    Wheel(TimerWheel<E>),
    Heap(HeapEventQueue<E>),
}

impl<E> EventQueue<E> {
    /// Creates an empty wheel-backed queue.
    pub fn new() -> Self {
        EventQueue::with_backend(QueueBackend::Wheel, 0)
    }

    /// Creates an empty wheel-backed queue with capacity for `capacity`
    /// same-tick pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue::with_backend(QueueBackend::Wheel, capacity)
    }

    /// Creates an empty queue on the chosen backend.
    pub fn with_backend(backend: QueueBackend, capacity: usize) -> Self {
        EventQueue {
            backend: match backend {
                QueueBackend::Wheel => Backend::Wheel(TimerWheel::with_capacity(capacity)),
                QueueBackend::Heap => Backend::Heap(HeapEventQueue::with_capacity(capacity)),
            },
        }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match &self.backend {
            Backend::Wheel(_) => QueueBackend::Wheel,
            Backend::Heap(_) => QueueBackend::Heap,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// On the wheel backend, `time` must not precede the latest
    /// delivered event's time (simulation time never rewinds); this is
    /// debug-asserted, and release builds clamp such an event to the
    /// current tick.
    pub fn push(&mut self, time: SimTime, event: E) {
        match &mut self.backend {
            Backend::Wheel(w) => w.push(time, event),
            Backend::Heap(h) => h.push(time, event),
        }
    }

    /// Schedules `event` to fire at `time` under a caller-chosen tie-break
    /// key instead of the internal insertion counter.
    ///
    /// Same-time events pop in ascending `key` order. Keys must be unique
    /// across the queue's lifetime (duplicate `(time, key)` pairs make the
    /// pop order unspecified), and a queue should use either `push` or
    /// `push_keyed` exclusively — mixing them interleaves the two key
    /// spaces arbitrarily. Caller keys let independently filled queues
    /// (e.g. one per topology shard) agree on a global total order.
    pub fn push_keyed(&mut self, time: SimTime, key: u64, event: E) {
        match &mut self.backend {
            Backend::Wheel(w) => w.push_keyed(time, key, event),
            Backend::Heap(h) => h.push_keyed(time, key, event),
        }
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Ties are broken by insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Wheel(w) => w.pop(),
            Backend::Heap(h) => h.pop(),
        }
    }

    /// Removes and returns the earliest event if its timestamp is at or
    /// before `end`; returns `None` (leaving the event pending) when the
    /// earliest event is later, or the queue is empty.
    ///
    /// Equivalent to a `peek_time`-check-then-`pop`, but in one call: a
    /// horizon-bounded dispatch loop pays for locating the minimum once
    /// per event instead of twice.
    pub fn pop_at_or_before(&mut self, end: SimTime) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Wheel(w) => w.pop_at_or_before(end),
            Backend::Heap(h) => h.pop_at_or_before(end),
        }
    }

    /// Returns the timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Wheel(w) => w.peek_time(),
            Backend::Heap(h) => h.peek_time(),
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Wheel(w) => w.len(),
            Backend::Heap(h) => h.len(),
        }
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the total number of events delivered so far. Monotone
    /// over the queue's lifetime; [`clear`](Self::clear) does not reset
    /// it.
    pub fn delivered(&self) -> u64 {
        match &self.backend {
            Backend::Wheel(w) => w.delivered(),
            Backend::Heap(h) => h.delivered(),
        }
    }

    /// Removes all pending events without delivering them.
    ///
    /// Only *pending* state is discarded: [`delivered`](Self::delivered)
    /// keeps its count (cleared events were never delivered), and the
    /// internal FIFO sequence keeps advancing, so events pushed after a
    /// `clear` still tie-break after everything pushed before it. On the
    /// wheel backend the clock rewinds to zero, so a cleared queue can
    /// be reused for a fresh run starting at `SimTime::ZERO`.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Wheel(w) => w.clear(),
            Backend::Heap(h) => h.clear(),
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// One scheduled event: `(time, seq)` is the delivery key.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted so that in a max-heap (and at the *back* of a sorted
        // vec) the earliest (time, seq) comes out first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The seed `BinaryHeap` event queue: same delivery contract as the
/// wheel, O(log n) per operation, no monotonic-push requirement. Kept
/// public for differential testing against the wheel backend.
#[derive(Debug, Clone)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapEventQueue::with_capacity(0)
    }

    /// Creates an empty queue with capacity for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapEventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at `time` (any order allowed).
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Schedules `event` under a caller-chosen tie-break key (see
    /// [`EventQueue::push_keyed`]).
    pub fn push_keyed(&mut self, time: SimTime, key: u64, event: E) {
        self.heap.push(Entry {
            time,
            seq: key,
            event,
        });
    }

    /// Removes and returns the earliest event (FIFO on ties).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            (e.time, e.event)
        })
    }

    /// Pops the earliest event only if it fires at or before `end` (see
    /// [`EventQueue::pop_at_or_before`]).
    pub fn pop_at_or_before(&mut self, end: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek()?.time > end {
            return None;
        }
        self.pop()
    }

    /// Returns the timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns the total number of events delivered so far (see
    /// [`EventQueue::delivered`]).
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Removes all pending events; `delivered()` and the FIFO sequence
    /// are preserved (see [`EventQueue::clear`]).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        HeapEventQueue::new()
    }
}

/// Hierarchical timer wheel.
///
/// Ticks are `time >> TICK_SHIFT`. Level `l` of the wheel stores every
/// pending event whose tick agrees with the current tick on all digits
/// above `l` (base-64 digits) and first differs at digit `l`; the slot
/// index is the event's digit `l`. Events whose tick differs above the
/// top level (≥ 2^24 ticks ahead) wait in `overflow`, a min-heap, and
/// migrate into the wheel when the clock enters their 2^24-tick window.
///
/// `cur` holds the current tick's events sorted ascending in `Entry`'s
/// inverted order (earliest at the back), so delivery is an O(1)
/// comparison-free `Vec::pop`. Events pushed *into the current tick
/// after it started* — a running transmission train scheduling within
/// its own tick, or the adversarial all-one-tick microbench — go to
/// `late`, a small max-heap in the same inverted order, instead of an
/// O(n) sorted insert into `cur`; `pop` merges the two sources by
/// comparing `cur.last()` against `late.peek()`. Since `(time, seq)` is
/// a total order (seqs are unique), the merged sequence is exactly the
/// globally sorted one, and slot events all carry later ticks than
/// anything in `cur`/`late`, so the pending minimum is always: best of
/// `cur`/`late`, else the lowest occupied slot of the lowest occupied
/// level, else the overflow top — which makes `peek_time` cheap and
/// `pop` lazy: the wheel only advances when both same-tick sources run
/// dry.
#[derive(Debug, Clone)]
struct TimerWheel<E> {
    /// Current tick's events, sorted ascending by `Entry`'s (inverted)
    /// order; the earliest event is at the back.
    cur: Vec<Entry<E>>,
    /// `LEVELS * SLOTS` buckets, indexed `level * SLOTS + slot`.
    slots: Vec<Vec<Entry<E>>>,
    /// One occupancy bitmap per level (bit `s` = slot `s` non-empty).
    occupied: [u64; LEVELS],
    /// Events beyond the wheel horizon, min-first.
    overflow: BinaryHeap<Entry<E>>,
    /// The tick of the most recent delivery (starts at 0). May run
    /// ahead of the last delivery up to the earliest *pending* tick: a
    /// bounded [`pop_at_or_before`](Self::pop_at_or_before) advances the
    /// wheel before discovering the next event lies beyond its horizon.
    now_tick: u64,
    /// Timestamp of the most recent delivery — the true monotonic floor
    /// for pushes. Events between `floor` and `now_tick` are still
    /// ordered exactly: they join `late`, which orders by real
    /// `(time, seq)`, ahead of every slot entry (whose ticks are all
    /// `>= now_tick`).
    floor: SimTime,
    /// Pending-event count across `cur`, `late`, `slots` and `overflow`.
    pending: usize,
    next_seq: u64,
    popped: u64,
    /// Same-tick late arrivals, max-first in `Entry`'s inverted order
    /// (top = earliest). Usually empty: most pushes land a full
    /// serialization time ahead, beyond the current tick. Declared last
    /// to keep the hot fields' layout unchanged.
    late: BinaryHeap<Entry<E>>,
}

impl<E> TimerWheel<E> {
    fn with_capacity(capacity: usize) -> Self {
        TimerWheel {
            cur: Vec::with_capacity(capacity),
            // Slots start empty and grow on first touch; the capacity
            // they gain is then pinned by the drain-based delivery, so
            // steady state sees no slot reallocs. (Pre-sizing them was
            // measured and bought nothing once the drain pins capacity.)
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            now_tick: 0,
            floor: SimTime::ZERO,
            pending: 0,
            next_seq: 0,
            popped: 0,
            late: BinaryHeap::new(),
        }
    }

    fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending += 1;
        self.place(Entry { time, seq, event });
    }

    fn push_keyed(&mut self, time: SimTime, key: u64, event: E) {
        self.pending += 1;
        self.place(Entry {
            time,
            seq: key,
            event,
        });
    }

    /// Files `e` into `cur`, a wheel slot, or the overflow heap
    /// according to its tick's highest digit differing from `now_tick`.
    fn place(&mut self, e: Entry<E>) {
        let tick = e.time.as_nanos() >> TICK_SHIFT;
        if tick <= self.now_tick {
            debug_assert!(
                e.time >= self.floor,
                "event scheduled at {:?} before the latest delivery at {:?}",
                e.time,
                self.floor,
            );
            // O(log n) heap push, not an O(n) sorted insert into `cur`;
            // `pop` merges the two sources in exact (time, seq) order.
            self.late.push(e);
            return;
        }
        let diff = tick ^ self.now_tick;
        let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(e);
            return;
        }
        let slot = ((tick >> (level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1)) as usize;
        self.occupied[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push(e);
    }

    /// The earliest pending same-tick entry: the better of `cur`'s back
    /// and `late`'s top (the larger in `Entry`'s inverted order).
    fn peek_same_tick(&self) -> Option<&Entry<E>> {
        match (self.cur.last(), self.late.peek()) {
            (Some(c), Some(l)) => Some(if c > l { c } else { l }),
            (c, l) => c.or(l),
        }
    }

    /// Removes the earliest same-tick entry when `late` is non-empty —
    /// out of the hot path so the common all-in-`cur` case stays a
    /// comparison-free `Vec::pop`.
    #[cold]
    fn pop_merged(&mut self) -> Entry<E> {
        debug_assert!(!self.late.is_empty());
        match self.cur.last() {
            Some(c) if c > self.late.peek().expect("checked non-empty") => {
                self.cur.pop().expect("checked non-empty")
            }
            _ => self.late.pop().expect("checked non-empty"),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = loop {
            if self.late.is_empty() {
                // Fast path: the current tick's events all sit in `cur`,
                // earliest at the back.
                if let Some(e) = self.cur.pop() {
                    break e;
                }
            } else {
                break self.pop_merged();
            }
            if !self.advance() {
                return None;
            }
        };
        self.pending -= 1;
        self.popped += 1;
        self.floor = e.time;
        Some((e.time, e.event))
    }

    fn pop_at_or_before(&mut self, end: SimTime) -> Option<(SimTime, E)> {
        loop {
            let next = if self.late.is_empty() {
                match self.cur.last() {
                    Some(c) => c.time,
                    None => {
                        // The advance may carry `now_tick` past `end`'s
                        // tick; that is harmless (see the `now_tick`
                        // field docs) and the event stays pending for a
                        // later pop.
                        if !self.advance() {
                            return None;
                        }
                        continue;
                    }
                }
            } else {
                self.peek_same_tick().expect("late is non-empty").time
            };
            if next > end {
                return None;
            }
            return self.pop();
        }
    }

    /// Advances the wheel until `cur` or `late` holds the next tick's
    /// events. Returns `false` if nothing is pending.
    fn advance(&mut self) -> bool {
        debug_assert!(self.cur.is_empty() && self.late.is_empty());
        loop {
            let Some(level) = self.occupied.iter().position(|&bits| bits != 0) else {
                // Wheel empty: enter the overflow's next 2^24-tick
                // window and migrate that window's events in.
                let Some(top) = self.overflow.peek() else {
                    return false;
                };
                let min_tick = top.time.as_nanos() >> TICK_SHIFT;
                self.now_tick = min_tick & !((1u64 << WHEEL_BITS) - 1);
                while let Some(top) = self.overflow.peek() {
                    let tick = top.time.as_nanos() >> TICK_SHIFT;
                    if tick >> WHEEL_BITS != self.now_tick >> WHEEL_BITS {
                        break;
                    }
                    let e = self.overflow.pop().expect("peeked entry pops");
                    self.place(e);
                }
                // `place` routes events at the new current tick to
                // `late` (there is no slot for them).
                if !self.late.is_empty() {
                    return true; // window base == an event's tick
                }
                continue;
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            let shift = level as u32 * LEVEL_BITS;
            // Jump to the slot's base tick: digits above `level` keep
            // their value, digit `level` becomes `slot`, lower digits
            // reset to zero. Slots never sit at or below the current
            // digit (pushes are monotone), so this moves time forward.
            self.now_tick = (self.now_tick & !(((1u64) << (shift + LEVEL_BITS)) - 1))
                | ((slot as u64) << shift);
            self.occupied[level] &= !(1u64 << slot);
            if level == 0 {
                // A level-0 slot is exactly one tick: move its events
                // into the (empty) `cur` and order them for back-pop
                // delivery. `append` empties the slot but keeps its
                // capacity pinned in place, so after warmup each slot
                // has grown to its historical maximum and the steady
                // state allocates nothing (a swap would permute
                // capacities around the wheel and re-grow forever).
                let slot_vec = &mut self.slots[slot];
                self.cur.append(slot_vec);
                self.cur.sort_unstable();
                return true;
            }
            // Cascade: redistribute the slot one level down (or into
            // `cur` for events landing exactly on the new current tick).
            let mut moved = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            for e in moved.drain(..) {
                self.place(e);
            }
            self.slots[level * SLOTS + slot] = moved; // recycle capacity
                                                      // Events landing exactly on the new current tick were
                                                      // routed to `late` by `place`.
            if !self.late.is_empty() {
                return true;
            }
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.peek_same_tick() {
            return Some(e.time);
        }
        if let Some(level) = self.occupied.iter().position(|&bits| bits != 0) {
            let slot = self.occupied[level].trailing_zeros() as usize;
            // The earliest (time, seq) is the *maximum* in Entry's
            // inverted order.
            return self.slots[level * SLOTS + slot]
                .iter()
                .max()
                .map(|e| e.time);
        }
        self.overflow.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.pending
    }

    fn delivered(&self) -> u64 {
        self.popped
    }

    fn clear(&mut self) {
        self.cur.clear();
        self.late.clear();
        for slot in &mut self.slots {
            slot.clear();
        }
        self.occupied = [0; LEVELS];
        self.overflow.clear();
        self.now_tick = 0;
        self.floor = SimTime::ZERO;
        self.pending = 0;
        // next_seq and popped survive: see EventQueue::clear.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_backends() -> [EventQueue<u64>; 2] {
        [
            EventQueue::with_backend(QueueBackend::Wheel, 16),
            EventQueue::with_backend(QueueBackend::Heap, 16),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both_backends() {
            q.push(SimTime::from_secs(3), 3);
            q.push(SimTime::from_secs(1), 1);
            q.push(SimTime::from_secs(2), 2);
            assert_eq!(q.pop().unwrap().1, 1);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 3);
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn ties_break_fifo() {
        for mut q in both_backends() {
            let t = SimTime::from_millis(5);
            for i in 0..100 {
                q.push(t, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop().unwrap().1, i);
            }
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        for mut q in both_backends() {
            q.push(SimTime::from_secs(5), 5);
            q.push(SimTime::from_secs(1), 1);
            assert_eq!(q.pop().unwrap().1, 1);
            q.push(SimTime::from_secs(2), 2);
            q.push(SimTime::from_secs(4), 4);
            assert_eq!(q.pop().unwrap().1, 2);
            q.push(SimTime::from_secs(3), 3);
            assert_eq!(q.pop().unwrap().1, 3);
            assert_eq!(q.pop().unwrap().1, 4);
            assert_eq!(q.pop().unwrap().1, 5);
        }
    }

    #[test]
    fn bookkeeping_counts() {
        for mut q in both_backends() {
            assert!(q.is_empty());
            q.push(SimTime::ZERO, 0);
            q.push(SimTime::ZERO, 0);
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(SimTime::ZERO));
            q.pop();
            assert_eq!(q.delivered(), 1);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.delivered(), 1);
        }
    }

    #[test]
    fn clear_preserves_delivered_and_fifo_sequence() {
        for mut q in both_backends() {
            let t = SimTime::from_millis(1);
            q.push(t, 1);
            q.push(t, 2);
            assert_eq!(q.pop(), Some((t, 1)));
            q.clear();
            assert_eq!(q.len(), 0);
            assert_eq!(q.peek_time(), None);
            // delivered() keeps counting across the clear.
            assert_eq!(q.delivered(), 1);
            // Pushes after the clear still tie-break FIFO among
            // themselves, and the queue is usable from t = 0 again.
            q.push(t, 10);
            q.push(SimTime::ZERO, 9);
            q.push(t, 11);
            assert_eq!(q.pop(), Some((SimTime::ZERO, 9)));
            assert_eq!(q.pop(), Some((t, 10)));
            assert_eq!(q.pop(), Some((t, 11)));
            assert_eq!(q.delivered(), 4);
        }
    }

    #[test]
    fn far_future_events_cross_the_wheel_horizon() {
        // 2^24 ticks × 2^17 ns ≈ 2199 s: schedule well past it, in
        // several different overflow windows, plus near-future events.
        for mut q in both_backends() {
            q.push(SimTime::from_secs(9_000), 100);
            q.push(SimTime::from_secs(3_000), 40);
            q.push(SimTime::from_micros(3), 0);
            q.push(SimTime::from_secs(3_000), 41);
            q.push(SimTime::from_secs(2_000), 18);
            assert_eq!(q.pop().unwrap().1, 0);
            assert_eq!(q.pop().unwrap().1, 18);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(3_000)));
            assert_eq!(q.pop().unwrap().1, 40);
            assert_eq!(q.pop().unwrap().1, 41);
            assert_eq!(q.pop().unwrap().1, 100);
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn sub_tick_times_deliver_in_time_order() {
        // Distinct SimTimes inside one tick must still deliver
        // by (time, seq), not insertion order.
        for mut q in both_backends() {
            q.push(SimTime::from_nanos(700), 7);
            q.push(SimTime::from_nanos(100), 1);
            q.push(SimTime::from_nanos(100), 2);
            q.push(SimTime::from_nanos(300), 3);
            let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, [1, 2, 3, 7]);
        }
    }

    #[test]
    fn pop_at_or_before_respects_the_bound() {
        for mut q in both_backends() {
            q.push(SimTime::from_millis(10), 1);
            q.push(SimTime::from_millis(30), 3);
            assert_eq!(q.pop_at_or_before(SimTime::from_millis(5)), None);
            assert_eq!(
                q.pop_at_or_before(SimTime::from_millis(10)),
                Some((SimTime::from_millis(10), 1))
            );
            assert_eq!(q.pop_at_or_before(SimTime::from_millis(20)), None);
            assert_eq!(q.len(), 1);
            assert_eq!(
                q.pop_at_or_before(SimTime::from_secs(1)),
                Some((SimTime::from_millis(30), 3))
            );
            assert_eq!(q.pop_at_or_before(SimTime::from_secs(1)), None);
        }
    }

    #[test]
    fn late_push_after_bounded_pop_stays_ordered() {
        // A bounded pop may advance the wheel to the earliest pending
        // tick before finding it beyond the bound. Events pushed
        // afterwards with earlier timestamps (but not earlier than the
        // last delivery) must still come out first.
        for mut q in both_backends() {
            q.push(SimTime::from_millis(1), 1);
            q.push(SimTime::from_millis(100), 100);
            assert_eq!(q.pop_at_or_before(SimTime::from_millis(1)).unwrap().1, 1);
            // Wheel has advanced toward tick(100 ms) internally.
            assert_eq!(q.pop_at_or_before(SimTime::from_millis(50)), None);
            q.push(SimTime::from_millis(60), 60);
            q.push(SimTime::from_millis(55), 55);
            q.push(SimTime::from_millis(55), 56);
            let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, [55, 56, 60, 100]);
        }
    }

    #[test]
    fn default_backend_is_wheel() {
        assert_eq!(EventQueue::<u32>::new().backend(), QueueBackend::Wheel);
        assert_eq!(
            EventQueue::<u32>::with_backend(QueueBackend::Heap, 0).backend(),
            QueueBackend::Heap
        );
    }
}
