//! Measurement primitives shared by the simulators.
//!
//! * [`TimeSeries`] — append-only `(time, value)` samples with resampling
//!   helpers, used to record allotted rates and cumulative service.
//! * [`TimeWeightedMean`] — exact time-weighted average of a
//!   piecewise-constant signal; this is how a Corelite core router computes
//!   the average queue length `q_avg` over a congestion epoch.
//! * [`ExpAvg`] — the exponential averaging estimator from CSFQ
//!   (`r ← (1 − e^{−T/K})·(l/T) + e^{−T/K}·r`).
//! * [`WindowedRate`] — event count per fixed window, for goodput plots.

use crate::time::{SimDuration, SimTime};

/// An append-only series of `(time, value)` samples.
///
/// Sample times must be non-decreasing.
///
/// # Example
///
/// ```
/// use sim_core::stats::TimeSeries;
/// use sim_core::time::SimTime;
///
/// let mut s = TimeSeries::new();
/// s.push(SimTime::ZERO, 1.0);
/// s.push(SimTime::from_secs(1), 2.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.last_value(), Some(2.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries {
            samples: Vec::new(),
        }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the previous sample's time.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(
                time >= last,
                "TimeSeries samples must be time-ordered: {time} after {last}"
            );
        }
        self.samples.push((time, value));
    }

    /// Returns the number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the most recent value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// Iterates over `(time, value)` samples in time order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// Returns the sample-and-hold value at `t`: the value of the latest
    /// sample at or before `t`, or `None` if `t` precedes the first sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.samples.binary_search_by(|&(st, _)| st.cmp(&t)) {
            Ok(i) => Some(self.samples[i].1),
            Err(0) => None,
            Err(i) => Some(self.samples[i - 1].1),
        }
    }

    /// Returns the plain mean of values sampled within `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in &self.samples {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Returns the samples as a slice.
    pub fn as_slice(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Resamples the series into buckets of width `window`, emitting one
    /// point per bucket (at the bucket's end) holding the mean of the
    /// samples inside it. Empty buckets repeat the previous bucket's
    /// value. Useful for smoothing a sawtooth before convergence
    /// detection.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn resample_mean(&self, window: SimDuration) -> TimeSeries {
        assert!(!window.is_zero(), "resample window must be positive");
        let mut out = TimeSeries::new();
        let Some(&(first, _)) = self.samples.first() else {
            return out;
        };
        let &(last, _) = self.samples.last().expect("non-empty");
        let mut bucket_start = first;
        let mut held = self.samples[0].1;
        let mut i = 0usize;
        while bucket_start <= last {
            let bucket_end = bucket_start + window;
            let mut sum = 0.0;
            let mut n = 0usize;
            while i < self.samples.len() && self.samples[i].0 < bucket_end {
                sum += self.samples[i].1;
                n += 1;
                i += 1;
            }
            if n > 0 {
                held = sum / n as f64;
            }
            out.push(bucket_end, held);
            bucket_start = bucket_end;
        }
        out
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (SimTime, f64)>>(iter: I) -> Self {
        let mut s = TimeSeries::new();
        for (t, v) in iter {
            s.push(t, v);
        }
        s
    }
}

/// Exact time-weighted mean of a piecewise-constant signal.
///
/// Feed it every change of the signal via [`TimeWeightedMean::set`]; read
/// the mean over the elapsed window with [`TimeWeightedMean::mean`] and
/// start a fresh window with [`TimeWeightedMean::restart`].
///
/// Corelite core routers use this to compute `q_avg`, the average aggregate
/// queue length over each congestion epoch.
///
/// # Example
///
/// ```
/// use sim_core::stats::TimeWeightedMean;
/// use sim_core::time::SimTime;
///
/// let mut m = TimeWeightedMean::new(SimTime::ZERO, 0.0);
/// m.set(SimTime::from_secs(1), 10.0); // 0 for 1s
/// let mean = m.mean(SimTime::from_secs(2)); // then 10 for 1s
/// assert_eq!(mean, 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeightedMean {
    window_start: SimTime,
    last_change: SimTime,
    current: f64,
    integral: f64,
}

impl TimeWeightedMean {
    /// Starts integrating at `start` with initial signal value `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeightedMean {
            window_start: start,
            last_change: start,
            current: value,
            integral: 0.0,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        assert!(
            now >= self.last_change,
            "TimeWeightedMean updates must be time-ordered"
        );
        self.integral += self.current * (now - self.last_change).as_secs_f64();
        self.last_change = now;
        self.current = value;
    }

    /// Returns the current signal value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Returns the time-weighted mean over `[window_start, now]`.
    ///
    /// If the window has zero width, returns the current value.
    pub fn mean(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.window_start).as_secs_f64();
        if span <= 0.0 {
            return self.current;
        }
        let tail = self.current * now.saturating_since(self.last_change).as_secs_f64();
        (self.integral + tail) / span
    }

    /// Closes the window at `now` and starts a new one, keeping the current
    /// signal value. Returns the mean of the closed window.
    pub fn restart(&mut self, now: SimTime) -> f64 {
        let mean = self.mean(now);
        self.window_start = now;
        self.last_change = now;
        self.integral = 0.0;
        mean
    }
}

/// The exponential averaging estimator used by CSFQ.
///
/// On each update at inter-arrival gap `T` carrying quantity `l`, the
/// estimate becomes `r ← (1 − e^{−T/K})·(l/T) + e^{−T/K}·r` where `K` is the
/// averaging time constant. The exponential form makes the estimate
/// insensitive to packet-size variation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpAvg {
    k: f64,
    last: Option<SimTime>,
    rate: f64,
}

impl ExpAvg {
    /// Creates an estimator with time constant `k` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not strictly positive.
    pub fn new(k: SimDuration) -> Self {
        assert!(!k.is_zero(), "ExpAvg time constant must be positive");
        ExpAvg {
            k: k.as_secs_f64(),
            last: None,
            rate: 0.0,
        }
    }

    /// Records `amount` units arriving at `now` and returns the updated
    /// rate estimate (units per second).
    ///
    /// The first observation initializes the estimate to `amount / k`.
    pub fn observe(&mut self, now: SimTime, amount: f64) -> f64 {
        match self.last {
            None => {
                // Bootstrap: treat the first packet as spread over one time
                // constant, matching the ns CSFQ implementation.
                self.rate = amount / self.k;
            }
            Some(prev) => {
                let t = now.saturating_since(prev).as_secs_f64();
                if t <= 0.0 {
                    // Simultaneous arrival: fold the amount into the estimate
                    // as an instantaneous burst over a negligible interval.
                    self.rate += amount / self.k;
                } else {
                    let e = (-t / self.k).exp();
                    self.rate = (1.0 - e) * (amount / t) + e * self.rate;
                }
            }
        }
        self.last = Some(now);
        self.rate
    }

    /// Returns the current rate estimate, decayed to `now` with no new
    /// arrival (used when reading the estimate between packets).
    pub fn decayed(&self, now: SimTime) -> f64 {
        match self.last {
            None => 0.0,
            Some(prev) => {
                let t = now.saturating_since(prev).as_secs_f64();
                self.rate * (-t / self.k).exp()
            }
        }
    }

    /// Returns the current (undecayed) rate estimate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// Counts events into fixed-size windows and exposes per-window rates.
///
/// Used to produce the paper's "number of packets per second" plots from
/// discrete delivery events.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedRate {
    window: SimDuration,
    window_start: SimTime,
    in_window: f64,
    series: TimeSeries,
    total: f64,
}

impl WindowedRate {
    /// Creates a meter with the given window size starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(start: SimTime, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "WindowedRate window must be positive");
        WindowedRate {
            window,
            window_start: start,
            in_window: 0.0,
            series: TimeSeries::new(),
            total: 0.0,
        }
    }

    /// Records `amount` units at time `now`, closing any windows that have
    /// elapsed since the last event.
    pub fn record(&mut self, now: SimTime, amount: f64) {
        self.roll_to(now);
        self.in_window += amount;
        self.total += amount;
    }

    /// Closes every window that ends at or before `now`, emitting one
    /// series point per closed window (at the window's *end* time).
    pub fn roll_to(&mut self, now: SimTime) {
        while now >= self.window_start + self.window {
            let end = self.window_start + self.window;
            let rate = self.in_window / self.window.as_secs_f64();
            self.series.push(end, rate);
            self.window_start = end;
            self.in_window = 0.0;
        }
    }

    /// Returns the per-window rate series (units per second, one point per
    /// closed window).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Returns the total amount recorded since creation.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Consumes the meter, closing the final partial window, and returns
    /// the series.
    pub fn finish(mut self, now: SimTime) -> TimeSeries {
        self.roll_to(now);
        self.series
    }
}

/// A logarithmically bucketed histogram for positive quantities spanning
/// many orders of magnitude (packet delays: microseconds to seconds).
///
/// Values are assigned to buckets whose bounds grow geometrically from
/// `min_value`; quantiles are answered by linear interpolation inside the
/// winning bucket. Memory is a fixed ~100 buckets regardless of sample
/// count, and recording is O(1) — suitable for millions of per-packet
/// observations.
///
/// # Example
///
/// ```
/// use sim_core::stats::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for i in 1..=1000 {
///     h.record(i as f64 * 1e-3); // 1 ms .. 1 s, uniform
/// }
/// let p50 = h.quantile(0.5).unwrap();
/// assert!(p50 > 0.4 && p50 < 0.6, "{p50}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    /// bucket i spans [min_value·growth^i, min_value·growth^(i+1))
    buckets: Vec<u64>,
    min_value: f64,
    growth: f64,
    count: u64,
    sum: f64,
    min_seen: f64,
    max_seen: f64,
}

impl LogHistogram {
    /// Number of buckets: covers 1 µs to ~1000 s at 20% growth.
    const BUCKETS: usize = 120;

    /// Creates a histogram covering roughly `1 µs ..= 1000 s`.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; Self::BUCKETS],
            min_value: 1e-6,
            growth: 1.2,
            count: 0,
            sum: 0.0,
            min_seen: f64::INFINITY,
            max_seen: 0.0,
        }
    }

    /// Records one observation (clamped into the covered range).
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN.
    pub fn record(&mut self, value: f64) {
        assert!(
            value >= 0.0 && !value.is_nan(),
            "histogram values must be non-negative, got {value}"
        );
        let idx = if value <= self.min_value {
            0
        } else {
            ((value / self.min_value).ln() / self.growth.ln()) as usize
        }
        .min(Self::BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min_seen = self.min_seen.min(value);
        self.max_seen = self.max_seen.max(value);
    }

    /// Folds `other`'s observations into `self`.
    ///
    /// The result is exactly the histogram that would have been produced
    /// by recording both observation streams into one instance (bucket
    /// counts, count, sum, and extremes are all order-independent), which
    /// lets partial histograms built independently — e.g. one per
    /// topology shard — be combined without re-observing anything.
    pub fn merge(&mut self, other: &LogHistogram) {
        debug_assert_eq!(self.buckets.len(), other.buckets.len());
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded observations (exact, not bucketed).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) by bucket interpolation, or `None`
    /// if nothing was recorded. Accuracy is bounded by the 20% bucket
    /// width; exact `min`/`max` are used at the extremes.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min_seen);
        }
        if q >= 1.0 {
            return Some(self.max_seen);
        }
        let target = q * self.count as f64;
        let mut seen = 0.0;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = seen + n as f64;
            if next >= target {
                let lo = self.min_value * self.growth.powi(i as i32);
                let hi = lo * self.growth;
                let frac = (target - seen) / n as f64;
                let v = lo + frac * (hi - lo);
                return Some(v.clamp(self.min_seen, self.max_seen));
            }
            seen = next;
        }
        Some(self.max_seen)
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn series_value_at_sample_and_hold() {
        let s: TimeSeries = [(t(1.0), 10.0), (t(2.0), 20.0)].into_iter().collect();
        assert_eq!(s.value_at(t(0.5)), None);
        assert_eq!(s.value_at(t(1.0)), Some(10.0));
        assert_eq!(s.value_at(t(1.5)), Some(10.0));
        assert_eq!(s.value_at(t(2.5)), Some(20.0));
    }

    #[test]
    fn series_mean_in_window() {
        let s: TimeSeries = [(t(0.0), 1.0), (t(1.0), 3.0), (t(2.0), 5.0)]
            .into_iter()
            .collect();
        assert_eq!(s.mean_in(t(0.0), t(2.0)), Some(2.0));
        assert_eq!(s.mean_in(t(5.0), t(6.0)), None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn series_rejects_time_travel() {
        let mut s = TimeSeries::new();
        s.push(t(2.0), 0.0);
        s.push(t(1.0), 0.0);
    }

    #[test]
    fn time_weighted_mean_piecewise() {
        let mut m = TimeWeightedMean::new(t(0.0), 4.0);
        m.set(t(2.0), 0.0); // 4 for 2s
        m.set(t(3.0), 8.0); // 0 for 1s
                            // then 8 for 1s → (8 + 0 + 8) / 4 = 4
        assert!((m.mean(t(4.0)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_mean_restart_resets_window() {
        let mut m = TimeWeightedMean::new(t(0.0), 2.0);
        let first = m.restart(t(1.0));
        assert_eq!(first, 2.0);
        m.set(t(1.5), 6.0);
        // window [1, 2]: 2 for 0.5s + 6 for 0.5s = 4
        assert!((m.mean(t(2.0)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_mean_zero_width_window() {
        let m = TimeWeightedMean::new(t(1.0), 7.0);
        assert_eq!(m.mean(t(1.0)), 7.0);
    }

    #[test]
    fn exp_avg_converges_to_constant_rate() {
        let mut e = ExpAvg::new(SimDuration::from_millis(100));
        // 1 unit every 10 ms = 100 units/s.
        let mut now = t(0.0);
        for _ in 0..500 {
            now += SimDuration::from_millis(10);
            e.observe(now, 1.0);
        }
        assert!((e.rate() - 100.0).abs() < 1.0, "rate {}", e.rate());
    }

    #[test]
    fn exp_avg_insensitive_to_packet_size_split() {
        // Same long-run rate delivered as double-size packets half as often.
        let mut a = ExpAvg::new(SimDuration::from_millis(100));
        let mut b = ExpAvg::new(SimDuration::from_millis(100));
        let mut now = t(0.0);
        for i in 0..1000 {
            now += SimDuration::from_millis(5);
            a.observe(now, 1.0);
            if i % 2 == 1 {
                b.observe(now, 2.0);
            }
        }
        assert!((a.rate() - b.rate()).abs() / a.rate() < 0.05);
    }

    #[test]
    fn exp_avg_decays_when_idle() {
        let mut e = ExpAvg::new(SimDuration::from_millis(100));
        let mut now = t(0.0);
        for _ in 0..200 {
            now += SimDuration::from_millis(10);
            e.observe(now, 1.0);
        }
        let busy = e.decayed(now);
        let idle = e.decayed(now + SimDuration::from_secs(1));
        assert!(idle < busy * 0.01);
    }

    #[test]
    fn windowed_rate_emits_per_window_points() {
        let mut w = WindowedRate::new(t(0.0), SimDuration::from_secs(1));
        for i in 0..10 {
            w.record(t(0.25 * i as f64), 1.0);
        }
        let series = w.finish(t(3.0));
        let points: Vec<_> = series.iter().collect();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0], (t(1.0), 4.0));
        assert_eq!(points[1], (t(2.0), 4.0));
    }

    #[test]
    fn windowed_rate_skips_empty_windows_with_zero() {
        let mut w = WindowedRate::new(t(0.0), SimDuration::from_secs(1));
        w.record(t(0.5), 2.0);
        w.record(t(3.5), 2.0);
        let series = w.finish(t(4.0));
        let vals: Vec<f64> = series.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![2.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn windowed_rate_total() {
        let mut w = WindowedRate::new(t(0.0), SimDuration::from_secs(1));
        w.record(t(0.1), 3.0);
        w.record(t(5.0), 4.0);
        assert_eq!(w.total(), 7.0);
    }

    #[test]
    fn histogram_empty_has_no_quantiles() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_quantiles_bracket_uniform_data() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000 {
            h.record(i as f64 * 1e-4); // 0.1 ms .. 1 s
        }
        let p10 = h.quantile(0.1).unwrap();
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p10 < p50 && p50 < p99, "{p10} {p50} {p99}");
        assert!((p50 - 0.5).abs() < 0.12, "p50 {p50}");
        assert!((p99 - 0.99).abs() < 0.2, "p99 {p99}");
        assert_eq!(h.quantile(0.0), Some(1e-4));
        assert_eq!(h.quantile(1.0), Some(1.0));
        assert!((h.mean().unwrap() - 0.5).abs() < 0.01);
    }

    #[test]
    fn histogram_single_value() {
        let mut h = LogHistogram::new();
        h.record(0.042);
        assert_eq!(h.quantile(0.5).unwrap(), 0.042);
        assert_eq!(h.mean(), Some(0.042));
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = LogHistogram::new();
        h.record(0.0); // below min bucket
        h.record(1e9); // above max bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(1e9));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn histogram_rejects_negative() {
        LogHistogram::new().record(-1.0);
    }
}
