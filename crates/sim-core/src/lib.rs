//! Deterministic discrete-event simulation substrate.
//!
//! This crate provides the building blocks every simulator in this
//! workspace is assembled from:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — virtual time with
//!   nanosecond resolution and exact integer arithmetic.
//! * [`event::EventQueue`] — a priority queue of timestamped events with a
//!   stable FIFO tie-break, so runs are bit-for-bit reproducible.
//! * [`rng::DetRng`] — seeded deterministic random streams; every component
//!   derives its own independent stream from one experiment seed.
//! * [`stats`] — time-series recording, time-weighted averages (used for
//!   the paper's `q_avg` congestion signal), windowed rate meters and
//!   exponential averaging (used by the CSFQ baseline).
//!
//! # Example
//!
//! ```
//! use sim_core::event::EventQueue;
//! use sim_core::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_secs_f64(2.0), "later");
//! q.push(SimTime::from_secs_f64(1.0), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "sooner");
//! assert_eq!(t, SimTime::from_secs_f64(1.0));
//! ```

pub mod check;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
