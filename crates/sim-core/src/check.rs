//! A minimal randomized property-testing harness.
//!
//! A drop-in replacement for the subset of `proptest` this workspace used,
//! built on [`DetRng`](crate::rng::DetRng) so it needs no external crates
//! and every failure is reproducible from the printed `(seed, case)` pair.
//!
//! ```
//! use sim_core::check;
//!
//! check::cases(32, 0xC0DE, |g| {
//!     let xs = g.vec_with(1, 10, |g| g.f64_in(0.0, 1.0));
//!     assert!(xs.iter().all(|&x| x < 1.0));
//! });
//! ```

use crate::rng::DetRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A source of random test inputs for one generated case.
pub struct Gen {
    rng: DetRng,
}

impl Gen {
    /// Draws a uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        lo + self.rng.next_u64() % (hi - lo)
    }

    /// Draws a uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        lo + self.rng.index(hi - lo)
    }

    /// Draws a uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.range_f64(lo, hi)
    }

    /// Draws a fair boolean.
    pub fn bool(&mut self) -> bool {
        self.rng.bernoulli(0.5)
    }

    /// Generates a vector whose length is uniform in `[min_len, max_len]`,
    /// filling each slot with `item`.
    pub fn vec_with<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut item: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len + 1);
        (0..len).map(|_| item(self)).collect()
    }

    /// Picks a random non-empty subset of `0..n`, returned sorted.
    pub fn subset(&mut self, n: usize) -> Vec<usize> {
        assert!(n > 0, "subset of an empty range");
        let mut picked: Vec<usize> = (0..n).filter(|_| self.bool()).collect();
        if picked.is_empty() {
            picked.push(self.rng.index(n));
        }
        picked
    }
}

/// Runs `body` against `n` generated cases derived from `seed`.
///
/// Each case gets an independent RNG substream, so inserting or removing
/// draws in one case never perturbs the inputs of another. On failure the
/// panic is re-raised after printing which `(seed, case)` reproduces it.
pub fn cases(n: usize, seed: u64, mut body: impl FnMut(&mut Gen)) {
    for case in 0..n {
        let mut g = Gen {
            rng: DetRng::substream(seed, "check-case", case as u64),
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&mut g))) {
            eprintln!("property failed at seed {seed}, case {case}/{n}");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_values_respect_ranges() {
        cases(64, 42, |g| {
            assert!((3..7).contains(&g.usize_in(3, 7)));
            assert!((10..20).contains(&g.u64_in(10, 20)));
            let x = g.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&x));
            let v = g.vec_with(2, 5, |g| g.bool());
            assert!((2..=5).contains(&v.len()));
            let s = g.subset(4);
            assert!(!s.is_empty() && s.iter().all(|&i| i < 4));
        });
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        cases(8, 7, |g| a.push(g.u64_in(0, 1 << 60)));
        cases(8, 7, |g| b.push(g.u64_in(0, 1 << 60)));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_propagate() {
        cases(4, 1, |_| panic!("deliberate"));
    }
}
