//! Seeded deterministic random streams.
//!
//! Every experiment takes a single `u64` seed. Each component (a router's
//! marker selector, a traffic source, ...) derives its own independent
//! stream with [`DetRng::stream`], keyed by a stable label, so adding a new
//! consumer of randomness never perturbs the draws seen by existing
//! components.
//!
//! The generator is a self-contained xoshiro256++ (public domain, Blackman
//! & Vigna), seeded through SplitMix64 — no external crates, so the
//! simulator builds in hermetic environments and the draw sequences are
//! pinned by this file alone.

/// A deterministic random number generator stream.
///
/// Wraps a xoshiro256++ generator; identical `(seed, label)` pairs always
/// produce identical draw sequences.
///
/// # Example
///
/// ```
/// use sim_core::rng::DetRng;
///
/// let mut a = DetRng::stream(42, "router-1");
/// let mut b = DetRng::stream(42, "router-1");
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut c = DetRng::stream(42, "router-2");
/// assert_ne!(DetRng::stream(42, "router-1").next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

/// SplitMix64 step: a strong 64-bit mixing function used to whiten derived
/// seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label, for stable stream derivation.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl DetRng {
    /// Creates the root stream for `seed`.
    pub fn new(seed: u64) -> Self {
        Self::from_mixed(splitmix64(seed))
    }

    /// Derives the independent stream identified by `label` under `seed`.
    pub fn stream(seed: u64, label: &str) -> Self {
        Self::from_mixed(splitmix64(seed ^ splitmix64(fnv1a(label))))
    }

    /// Derives an independent sub-stream labelled by `label` and `index`
    /// (e.g. one stream per flow).
    pub fn substream(seed: u64, label: &str, index: u64) -> Self {
        Self::from_mixed(splitmix64(
            seed ^ splitmix64(fnv1a(label)) ^ splitmix64(index.wrapping_add(1)),
        ))
    }

    /// Expands a whitened 64-bit seed into the full 256-bit xoshiro state
    /// by iterating SplitMix64, the seeding procedure recommended by the
    /// generator's authors. The state is never all-zero because SplitMix64
    /// is a bijection composed with distinct constants.
    fn from_mixed(mixed: u64) -> Self {
        let mut s = mixed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        DetRng { state }
    }

    /// Advances the generator and returns the next 64 random bits
    /// (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Returns the next 32 random bits (the high half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a uniform value in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Draws a uniform integer in `[0, n)` via Lemire's unbiased
    /// multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "DetRng::index requires a non-empty range");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as usize;
            }
            // Rejection zone: only reached when low < n; recompute the
            // threshold lazily since it is almost never needed.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Draws an exponentially distributed value with the given `rate`
    /// (mean `1/rate`). Used for Poisson traffic in sensitivity ablations.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -u.ln() / rate
    }

    /// Draws a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Draws a Pareto-distributed value with minimum `scale` and tail
    /// index `shape` (inverse-CDF: `scale * u^(-1/shape)`). Heavy-tailed
    /// "web-like" flow sizes in the churn generator use this; the mean is
    /// `scale * shape / (shape - 1)` for `shape > 1` (infinite below).
    ///
    /// # Panics
    ///
    /// Panics unless `scale` and `shape` are strictly positive.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(scale > 0.0, "pareto scale must be positive, got {scale}");
        assert!(shape > 0.0, "pareto shape must be positive, got {shape}");
        let u = 1.0 - self.next_f64(); // in (0, 1]
        scale * u.powf(-1.0 / shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::stream(7, "x");
        let mut b = DetRng::stream(7, "x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let a = DetRng::stream(7, "x").next_u64();
        let b = DetRng::stream(7, "y").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn different_indices_diverge() {
        let a = DetRng::substream(7, "flow", 0).next_u64();
        let b = DetRng::substream(7, "flow", 1).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn bernoulli_edges() {
        let mut r = DetRng::new(1);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        assert!(!r.bernoulli(-0.5));
        assert!(r.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_mean_close_to_p() {
        let mut r = DetRng::new(99);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let mean = hits as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean} too far from 0.3");
    }

    #[test]
    fn exp_mean_close_to_inverse_rate() {
        let mut r = DetRng::new(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean {mean} too far from 0.25");
    }

    #[test]
    fn index_stays_in_bounds() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    fn index_is_unbiased_enough() {
        let mut r = DetRng::new(11);
        let mut counts = [0u32; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[r.index(5)] += 1;
        }
        let expect = n as f64 / 5.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i}: count {c}, expected ≈{expect}");
        }
    }

    #[test]
    fn pareto_respects_scale_and_mean() {
        let mut r = DetRng::new(8);
        let n = 50_000;
        let scale = 2.0;
        let shape = 2.5;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.pareto(scale, shape);
            assert!(x >= scale, "pareto draws never fall below the scale: {x}");
            sum += x;
        }
        let mean = sum / n as f64;
        let expect = scale * shape / (shape - 1.0);
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean}, expected ≈{expect}"
        );
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn pareto_zero_shape_panics() {
        DetRng::new(0).pareto(1.0, 0.0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = DetRng::new(17);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn index_zero_panics() {
        DetRng::new(0).index(0);
    }
}
