//! Seeded deterministic random streams.
//!
//! Every experiment takes a single `u64` seed. Each component (a router's
//! marker selector, a traffic source, ...) derives its own independent
//! stream with [`DetRng::stream`], keyed by a stable label, so adding a new
//! consumer of randomness never perturbs the draws seen by existing
//! components.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator stream.
///
/// Wraps a cryptographically-seeded PRNG; identical `(seed, label)` pairs
/// always produce identical draw sequences.
///
/// # Example
///
/// ```
/// use rand::RngCore;
/// use sim_core::rng::DetRng;
///
/// let mut a = DetRng::stream(42, "router-1");
/// let mut b = DetRng::stream(42, "router-1");
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut c = DetRng::stream(42, "router-2");
/// assert_ne!(DetRng::stream(42, "router-1").next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

/// SplitMix64 step: a strong 64-bit mixing function used to whiten derived
/// seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label, for stable stream derivation.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl DetRng {
    /// Creates the root stream for `seed`.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// Derives the independent stream identified by `label` under `seed`.
    pub fn stream(seed: u64, label: &str) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(fnv1a(label)))),
        }
    }

    /// Derives an independent sub-stream labelled by `label` and `index`
    /// (e.g. one stream per flow).
    pub fn substream(seed: u64, label: &str, index: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(splitmix64(
                seed ^ splitmix64(fnv1a(label)) ^ splitmix64(index.wrapping_add(1)),
            )),
        }
    }

    /// Draws a uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Draws a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "DetRng::index requires a non-empty range");
        self.inner.gen_range(0..n)
    }

    /// Draws an exponentially distributed value with the given `rate`
    /// (mean `1/rate`). Used for Poisson traffic in sensitivity ablations.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -u.ln() / rate
    }

    /// Draws a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::stream(7, "x");
        let mut b = DetRng::stream(7, "x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let a = DetRng::stream(7, "x").next_u64();
        let b = DetRng::stream(7, "y").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn different_indices_diverge() {
        let a = DetRng::substream(7, "flow", 0).next_u64();
        let b = DetRng::substream(7, "flow", 1).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn bernoulli_edges() {
        let mut r = DetRng::new(1);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        assert!(!r.bernoulli(-0.5));
        assert!(r.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_mean_close_to_p() {
        let mut r = DetRng::new(99);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let mean = hits as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean} too far from 0.3");
    }

    #[test]
    fn exp_mean_close_to_inverse_rate() {
        let mut r = DetRng::new(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean {mean} too far from 0.25");
    }

    #[test]
    fn index_stays_in_bounds() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn index_zero_panics() {
        DetRng::new(0).index(0);
    }
}
