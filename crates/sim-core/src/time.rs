//! Virtual time for discrete-event simulation.
//!
//! Time is kept as an integer number of nanoseconds so that event ordering
//! is exact: two events scheduled from the same floating-point second value
//! always compare identically on every platform.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant of virtual time, measured in nanoseconds since the start of
/// the simulation.
///
/// `SimTime` is a transparent newtype over `u64` ([C-NEWTYPE]); it is
/// `Copy`, totally ordered and supports the arithmetic a scheduler needs.
///
/// # Example
///
/// ```
/// use sim_core::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(100);
/// assert_eq!(t.as_secs_f64(), 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in nanoseconds.
///
/// Distinct from [`SimTime`] so that instants and spans cannot be confused:
/// `SimTime + SimDuration = SimTime`, `SimTime - SimTime = SimDuration`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole nanoseconds since the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds since the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from whole milliseconds since the origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant from whole microseconds since the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        let nanos = secs * NANOS_PER_SEC as f64;
        assert!(
            nanos <= u64::MAX as f64,
            "SimTime::from_secs_f64 overflow: {secs} s"
        );
        SimTime(nanos.round() as u64)
    }

    /// Returns the instant as whole nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns the span from `earlier` to `self`, or zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        let nanos = secs * NANOS_PER_SEC as f64;
        assert!(
            nanos <= u64::MAX as f64,
            "SimDuration::from_secs_f64 overflow: {secs} s"
        );
        SimDuration(nanos.round() as u64)
    }

    /// Returns the span as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Divides the span by an integer divisor (truncating).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub const fn div(self, divisor: u64) -> SimDuration {
        SimDuration(self.0 / divisor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: instant + duration exceeds u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: subtracting a later instant from an earlier one"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: duration larger than elapsed time"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow in addition"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow in subtraction"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl From<SimDuration> for f64 {
    fn from(d: SimDuration) -> f64 {
        d.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(250).as_secs_f64(), 0.25);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
    }

    #[test]
    fn arithmetic_relations() {
        let a = SimTime::from_secs(1);
        let d = SimDuration::from_millis(500);
        assert_eq!((a + d) - a, d);
        assert_eq!((a + d) - d, a);
        let mut m = a;
        m += d;
        assert_eq!(m, SimTime::from_millis(1500));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(2),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            [
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(2)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtracting_later_from_earlier_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.saturating_mul(10), SimDuration::from_secs(1));
        assert_eq!(
            SimDuration::from_secs(1).div(4),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{}", SimDuration::ZERO).is_empty());
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
