//! Cross-cutting determinism tests for the RNG stream derivation: stream
//! independence, stability across labels, and distribution sanity.

use sim_core::rng::DetRng;

#[test]
fn streams_are_stable_across_construction_order() {
    // Creating streams in a different order must not change their draws.
    let mut a_first = DetRng::stream(5, "alpha");
    let _ = DetRng::stream(5, "beta");
    let mut b_second = DetRng::stream(5, "alpha");
    for _ in 0..32 {
        assert_eq!(a_first.next_u64(), b_second.next_u64());
    }
}

#[test]
fn substreams_partition_cleanly() {
    // 100 substreams of the same label: all pairwise-different openings.
    let mut first_draws = Vec::new();
    for i in 0..100 {
        first_draws.push(DetRng::substream(9, "flows", i).next_u64());
    }
    let mut sorted = first_draws.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), first_draws.len(), "substream collision");
}

#[test]
fn uniform_bits_look_uniform() {
    // Crude equidistribution check on the low byte.
    let mut rng = DetRng::new(123);
    let mut counts = [0u32; 256];
    let n = 256 * 200;
    for _ in 0..n {
        counts[(rng.next_u64() & 0xff) as usize] += 1;
    }
    let expect = (n / 256) as f64;
    for (b, &c) in counts.iter().enumerate() {
        let dev = (c as f64 - expect).abs() / expect;
        assert!(dev < 0.35, "byte {b}: count {c}, expected ≈{expect}");
    }
}

#[test]
fn exponential_tail_behaves() {
    let mut rng = DetRng::new(7);
    let n = 50_000;
    let lambda = 2.0;
    let over_one = (0..n).filter(|_| rng.exp(lambda) > 1.0).count() as f64 / n as f64;
    // P(X > 1) = e^{-2} ≈ 0.1353.
    assert!((over_one - 0.1353).abs() < 0.01, "tail prob {over_one}");
}
