//! Randomized property tests for the discrete-event substrate, driven by
//! the in-tree `sim_core::check` harness.

use sim_core::check;
use sim_core::event::EventQueue;
use sim_core::stats::{ExpAvg, TimeSeries, TimeWeightedMean};
use sim_core::time::{SimDuration, SimTime};

/// Popping returns events sorted by time, and FIFO within equal times.
#[test]
fn event_queue_pops_sorted_with_fifo_ties() {
    check::cases(64, 0xE0_01, |g| {
        let times = g.vec_with(1, 200, |g| g.u64_in(0, 1_000));
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                assert!(t >= lt, "time went backwards");
                if t == lt {
                    assert!(idx > lidx, "FIFO violated for equal times");
                }
            }
            last = Some((t, idx));
        }
    });
}

/// len/is_empty stay consistent through interleaved push/pop.
#[test]
fn event_queue_len_consistent() {
    check::cases(64, 0xE0_02, |g| {
        let ops = g.vec_with(1, 300, |g| g.bool());
        let mut q = EventQueue::new();
        let mut expected = 0usize;
        for (i, push) in ops.into_iter().enumerate() {
            if push {
                q.push(SimTime::from_nanos(i as u64), i);
                expected += 1;
            } else if q.pop().is_some() {
                expected -= 1;
            }
            assert_eq!(q.len(), expected);
            assert_eq!(q.is_empty(), expected == 0);
        }
    });
}

/// SimTime arithmetic round-trips: (t + d) − d == t and (t + d) − t == d.
#[test]
fn time_arithmetic_round_trips() {
    check::cases(256, 0xE0_03, |g| {
        let t = SimTime::from_nanos(g.u64_in(0, u64::MAX / 4));
        let d = SimDuration::from_nanos(g.u64_in(0, u64::MAX / 4));
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    });
}

/// The time-weighted mean always lies within [min, max] of the values
/// the signal took.
#[test]
fn time_weighted_mean_bounded() {
    check::cases(64, 0xE0_04, |g| {
        let values = g.vec_with(1, 100, |g| (g.u64_in(1, 1_000), g.f64_in(0.0, 100.0)));
        let mut m = TimeWeightedMean::new(SimTime::ZERO, values[0].1);
        let mut now = SimTime::ZERO;
        let mut lo = values[0].1;
        let mut hi = values[0].1;
        for &(gap, v) in &values {
            now += SimDuration::from_micros(gap);
            m.set(now, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let end = now + SimDuration::from_micros(1);
        let mean = m.mean(end);
        assert!(
            mean >= lo - 1e-9 && mean <= hi + 1e-9,
            "mean {mean} outside [{lo}, {hi}]"
        );
    });
}

/// Restarting a window yields the same mean as a fresh integrator fed
/// the same tail.
#[test]
fn time_weighted_mean_restart_equivalence() {
    check::cases(64, 0xE0_05, |g| {
        let values = g.vec_with(2, 50, |g| (g.u64_in(1, 1_000), g.f64_in(0.0, 100.0)));
        let split = values.len() / 2;
        let mut now = SimTime::ZERO;
        let mut m = TimeWeightedMean::new(SimTime::ZERO, 0.0);
        for &(gap, v) in &values[..split] {
            now += SimDuration::from_micros(gap);
            m.set(now, v);
        }
        let split_time = now;
        let carried = m.current();
        m.restart(split_time);
        let mut fresh = TimeWeightedMean::new(split_time, carried);
        for &(gap, v) in &values[split..] {
            now += SimDuration::from_micros(gap);
            m.set(now, v);
            fresh.set(now, v);
        }
        let end = now + SimDuration::from_micros(7);
        assert!((m.mean(end) - fresh.mean(end)).abs() < 1e-9);
    });
}

/// The exponential average of a non-negative input stays non-negative
/// and below the largest instantaneous rate seen.
#[test]
fn exp_avg_bounded() {
    check::cases(64, 0xE0_06, |g| {
        let gaps = g.vec_with(2, 200, |g| g.u64_in(1, 100_000));
        let mut e = ExpAvg::new(SimDuration::from_millis(100));
        let mut now = SimTime::ZERO;
        let mut max_inst: f64 = 1.0 / 0.1; // bootstrap rate: amount / K
        for &gap in &gaps {
            now += SimDuration::from_micros(gap);
            let r = e.observe(now, 1.0);
            max_inst = max_inst.max(1.0 / (gap as f64 * 1e-6));
            assert!(r >= 0.0);
            assert!(
                r <= max_inst + 1e-6,
                "rate {r} above max instantaneous {max_inst}"
            );
        }
        assert!(e.decayed(now + SimDuration::from_secs(10)) <= e.rate());
    });
}

/// Resampling preserves the value range and produces monotone
/// timestamps.
#[test]
fn resample_mean_bounded_and_monotone() {
    check::cases(64, 0xE0_07, |g| {
        let samples = g.vec_with(1, 100, |g| (g.u64_in(1, 1_000_000), g.f64_in(-50.0, 50.0)));
        let mut series = TimeSeries::new();
        let mut now = SimTime::ZERO;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(gap, v) in &samples {
            now += SimDuration::from_micros(gap);
            series.push(now, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let resampled = series.resample_mean(SimDuration::from_millis(10));
        assert!(!resampled.is_empty());
        let mut last_t = None;
        for (t, v) in resampled.iter() {
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            if let Some(lt) = last_t {
                assert!(t > lt);
            }
            last_t = Some(t);
        }
    });
}

/// value_at agrees with a linear scan of the samples.
#[test]
fn value_at_matches_linear_scan() {
    check::cases(128, 0xE0_08, |g| {
        let samples = g.vec_with(1, 50, |g| (g.u64_in(1, 1_000), g.f64_in(0.0, 10.0)));
        let probe = g.u64_in(0, 60_000);
        let mut series = TimeSeries::new();
        let mut now = SimTime::ZERO;
        for &(gap, v) in &samples {
            now += SimDuration::from_micros(gap);
            series.push(now, v);
        }
        let probe = SimTime::from_micros(probe);
        let expected = series
            .iter()
            .take_while(|&(t, _)| t <= probe)
            .last()
            .map(|(_, v)| v);
        assert_eq!(series.value_at(probe), expected);
    });
}

/// Histogram quantiles are monotone in q and bracketed by min/max.
#[test]
fn histogram_quantiles_monotone() {
    use sim_core::stats::LogHistogram;
    check::cases(64, 0xE0_09, |g| {
        let values = g.vec_with(1, 500, |g| g.f64_in(1e-6, 100.0));
        let mut qs = g.vec_with(2, 9, |g| g.f64_in(0.0, 1.0));
        qs.push(0.0);
        qs.push(1.0);
        let mut h = LogHistogram::new();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for &v in &values {
            h.record(v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0f64;
        for &q in &qs {
            let v = h.quantile(q).unwrap();
            assert!(
                v >= lo - 1e-12 && v <= hi + 1e-12,
                "q={q}: {v} outside [{lo}, {hi}]"
            );
            assert!(v >= last - 1e-12, "quantiles not monotone at q={q}");
            last = v;
        }
    });
}
