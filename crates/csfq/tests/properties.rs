//! Property-based tests for the CSFQ estimators.

use csfq::{FairShareEstimator, RateEstimator};
use proptest::prelude::*;
use sim_core::time::{SimDuration, SimTime};

proptest! {
    /// The rate estimate is always non-negative and never exceeds the
    /// fastest instantaneous rate observed so far (1 packet per smallest
    /// gap), up to the bootstrap term.
    #[test]
    fn rate_estimator_bounded(gaps in prop::collection::vec(1u64..1_000_000, 1..300)) {
        let k = SimDuration::from_millis(100);
        let mut est = RateEstimator::new(k);
        let mut now = SimTime::ZERO;
        let bootstrap = 1.0 / k.as_secs_f64();
        let mut max_inst = bootstrap;
        for &gap in &gaps {
            now += SimDuration::from_micros(gap);
            let r = est.on_packet(now);
            max_inst = max_inst.max(1.0 / (gap as f64 * 1e-6));
            prop_assert!(r >= 0.0);
            prop_assert!(r <= max_inst + 1e-6, "estimate {r} above max instantaneous {max_inst}");
        }
        // Decay never increases the estimate.
        prop_assert!(est.rate_at(now + SimDuration::from_secs(1)) <= est.rate() + 1e-12);
    }

    /// Drop probabilities are always in [0, 1], and an uncongested link
    /// never drops.
    #[test]
    fn drop_probability_is_a_probability(
        capacity in 10.0f64..10_000.0,
        labels in prop::collection::vec(0.0f64..5_000.0, 1..500),
        gap_us in 1u64..100_000,
    ) {
        let mut est = FairShareEstimator::new(capacity, SimDuration::from_millis(100));
        let mut now = SimTime::ZERO;
        for &label in &labels {
            now += SimDuration::from_micros(gap_us);
            let p = est.on_arrival(now, label);
            prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
            if !est.is_congested() {
                prop_assert_eq!(p, 0.0, "uncongested link must not drop");
            }
            if p < 0.5 {
                let relabel = est.on_accept(now, label);
                prop_assert!(relabel <= label + 1e-9, "relabel must not increase the label");
            }
        }
    }

    /// The fair-share estimate is positive once set, and the overflow
    /// penalty strictly decreases it.
    #[test]
    fn alpha_positive_and_penalized(
        labels in prop::collection::vec(1.0f64..1_000.0, 10..200),
        penalty_pct in 1u32..99,
    ) {
        let mut est = FairShareEstimator::new(100.0, SimDuration::from_millis(100));
        let mut now = SimTime::ZERO;
        for &label in &labels {
            now += SimDuration::from_micros(500);
            let p = est.on_arrival(now, label);
            if p < 1.0 {
                est.on_accept(now, label);
            }
        }
        if let Some(alpha) = est.alpha() {
            prop_assert!(alpha > 0.0);
            let penalty = penalty_pct as f64 / 100.0;
            est.on_overflow(penalty);
            let after = est.alpha().unwrap();
            prop_assert!((after - alpha * penalty).abs() < 1e-9);
        }
    }

    /// Two estimators fed identical inputs agree exactly (pure function
    /// of the input stream — determinism of the baseline).
    #[test]
    fn estimator_is_deterministic(labels in prop::collection::vec(0.0f64..100.0, 1..100)) {
        let mut a = FairShareEstimator::new(500.0, SimDuration::from_millis(100));
        let mut b = FairShareEstimator::new(500.0, SimDuration::from_millis(100));
        let mut now = SimTime::ZERO;
        for &label in &labels {
            now += SimDuration::from_micros(800);
            prop_assert_eq!(a.on_arrival(now, label), b.on_arrival(now, label));
            prop_assert_eq!(a.on_accept(now, label), b.on_accept(now, label));
        }
        prop_assert_eq!(a.alpha(), b.alpha());
    }
}
