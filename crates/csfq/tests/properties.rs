//! Randomized property tests for the CSFQ estimators.

use csfq::{FairShareEstimator, RateEstimator};
use sim_core::check;
use sim_core::time::{SimDuration, SimTime};

/// The rate estimate is always non-negative and never exceeds the
/// fastest instantaneous rate observed so far (1 packet per smallest
/// gap), up to the bootstrap term.
#[test]
fn rate_estimator_bounded() {
    check::cases(128, 0xCF_01, |g| {
        let gaps = g.vec_with(1, 300, |g| g.u64_in(1, 1_000_000));
        let k = SimDuration::from_millis(100);
        let mut est = RateEstimator::new(k);
        let mut now = SimTime::ZERO;
        let bootstrap = 1.0 / k.as_secs_f64();
        let mut max_inst = bootstrap;
        for &gap in &gaps {
            now += SimDuration::from_micros(gap);
            let r = est.on_packet(now);
            max_inst = max_inst.max(1.0 / (gap as f64 * 1e-6));
            assert!(r >= 0.0);
            assert!(
                r <= max_inst + 1e-6,
                "estimate {r} above max instantaneous {max_inst}"
            );
        }
        // Decay never increases the estimate.
        assert!(est.rate_at(now + SimDuration::from_secs(1)) <= est.rate() + 1e-12);
    });
}

/// Drop probabilities are always in [0, 1], and an uncongested link
/// never drops.
#[test]
fn drop_probability_is_a_probability() {
    check::cases(128, 0xCF_02, |g| {
        let capacity = g.f64_in(10.0, 10_000.0);
        let labels = g.vec_with(1, 500, |g| g.f64_in(0.0, 5_000.0));
        let gap_us = g.u64_in(1, 100_000);
        let mut est = FairShareEstimator::new(capacity, SimDuration::from_millis(100));
        let mut now = SimTime::ZERO;
        for &label in &labels {
            now += SimDuration::from_micros(gap_us);
            let p = est.on_arrival(now, label);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
            if !est.is_congested() {
                assert_eq!(p, 0.0, "uncongested link must not drop");
            }
            if p < 0.5 {
                let relabel = est.on_accept(now, label);
                assert!(
                    relabel <= label + 1e-9,
                    "relabel must not increase the label"
                );
            }
        }
    });
}

/// The fair-share estimate is positive once set, and the overflow
/// penalty strictly decreases it.
#[test]
fn alpha_positive_and_penalized() {
    check::cases(128, 0xCF_03, |g| {
        let labels = g.vec_with(10, 200, |g| g.f64_in(1.0, 1_000.0));
        let penalty_pct = g.u64_in(1, 99) as u32;
        let mut est = FairShareEstimator::new(100.0, SimDuration::from_millis(100));
        let mut now = SimTime::ZERO;
        for &label in &labels {
            now += SimDuration::from_micros(500);
            let p = est.on_arrival(now, label);
            if p < 1.0 {
                est.on_accept(now, label);
            }
        }
        if let Some(alpha) = est.alpha() {
            assert!(alpha > 0.0);
            let penalty = penalty_pct as f64 / 100.0;
            est.on_overflow(penalty);
            let after = est.alpha().unwrap();
            assert!((after - alpha * penalty).abs() < 1e-9);
        }
    });
}

/// Two estimators fed identical inputs agree exactly (pure function
/// of the input stream — determinism of the baseline).
#[test]
fn estimator_is_deterministic() {
    check::cases(128, 0xCF_04, |g| {
        let labels = g.vec_with(1, 100, |g| g.f64_in(0.0, 100.0));
        let mut a = FairShareEstimator::new(500.0, SimDuration::from_millis(100));
        let mut b = FairShareEstimator::new(500.0, SimDuration::from_millis(100));
        let mut now = SimTime::ZERO;
        for &label in &labels {
            now += SimDuration::from_micros(800);
            assert_eq!(a.on_arrival(now, label), b.on_arrival(now, label));
            assert_eq!(a.on_accept(now, label), b.on_accept(now, label));
        }
        assert_eq!(a.alpha(), b.alpha());
    });
}
