//! Behavioural tests for the CSFQ baseline beyond the per-module units:
//! agent restart semantics, label plausibility, and estimator windows.

use csfq::{CsfqConfig, CsfqCore, CsfqEdge, FairShareEstimator};
use netsim::flow::FlowSpec;
use netsim::link::LinkSpec;
use netsim::logic::ForwardLogic;
use netsim::topology::TopologyBuilder;
use netsim::{FlowId, SimReport};
use sim_core::time::{SimDuration, SimTime};

fn run(horizon: u64, activations: Vec<(u64, Option<u64>)>) -> SimReport {
    let cfg = CsfqConfig::default();
    let mut b = TopologyBuilder::new(91);
    let edge = b.node("edge", |s| Box::new(CsfqEdge::new(s, cfg.clone())));
    let core = b.node("core", |s| Box::new(CsfqCore::new(s, cfg.clone())));
    let sink = b.node("sink", |_| Box::new(ForwardLogic));
    b.link(
        edge,
        core,
        LinkSpec::new(40_000_000, SimDuration::from_millis(1), 400),
    );
    b.link(
        core,
        sink,
        LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40),
    );
    let mut spec = FlowSpec::new(vec![edge, core, sink], 1);
    for (start, stop) in activations {
        spec = spec.active(SimTime::from_secs(start), stop.map(SimTime::from_secs));
    }
    b.flow(spec);
    let end = SimTime::from_secs(horizon);
    let mut net = b.build();
    net.run_until(end);
    net.into_report(end)
}

#[test]
fn restarting_agent_ramps_from_scratch() {
    let report = run(40, vec![(0, Some(15)), (20, None)]);
    let series = report.allotted_rate(FlowId::from_index(0)).unwrap();
    // Just after the restart the agent is back near the initial rate.
    let early = series.value_at(SimTime::from_secs_f64(20.6)).unwrap();
    assert!(early < 10.0, "restart rate {early}");
    // And climbing again afterwards.
    let later = series.value_at(SimTime::from_secs(35)).unwrap();
    assert!(later > early, "no ramp after restart: {early} → {later}");
}

#[test]
fn uncongested_csfq_never_drops() {
    // A single agent ramping across 40 s stays below the 500 pkt/s
    // capacity (flat slow-start cap + linear increase) ⇒ zero drops.
    let report = run(40, vec![(0, None)]);
    assert_eq!(report.total_drops(), 0);
    assert!(report.counter_total("packets_labelled") > 0.0);
}

#[test]
fn fair_share_estimator_tracks_capacity_under_saturation() {
    // Feed a saturating single "flow": alpha should end up within an
    // order of magnitude of the capacity (it cannot exceed the largest
    // label seen, and it must stay positive).
    let mut est = FairShareEstimator::new(100.0, SimDuration::from_millis(100));
    let mut now = SimTime::ZERO;
    for i in 0..5_000u64 {
        now += SimDuration::from_millis(5); // 200 pkt/s > 100 capacity
        let p = est.on_arrival(now, 200.0);
        // Accept with probability 1 − p, deterministically interleaved.
        let survive = ((i * 37) % 100) as f64 >= p * 100.0;
        if survive {
            est.on_accept(now, 200.0);
        }
    }
    // Equilibrium: alpha ≈ capacity (100): accepted rate F ≈ C keeps the
    // multiplicative update alpha·C/F ≈ alpha.
    let alpha = est.alpha().expect("alpha set under congestion");
    assert!(alpha > 30.0 && alpha < 300.0, "alpha {alpha}");
    assert!(est.is_congested());
}

#[test]
fn estimator_decongests_when_load_falls() {
    let mut est = FairShareEstimator::new(100.0, SimDuration::from_millis(100));
    let mut now = SimTime::ZERO;
    for _ in 0..2_000 {
        now += SimDuration::from_millis(5);
        est.on_arrival(now, 200.0);
        est.on_accept(now, 200.0);
    }
    assert!(est.is_congested());
    for _ in 0..2_000 {
        now += SimDuration::from_millis(50); // 20 pkt/s ≪ capacity
        let p = est.on_arrival(now, 20.0);
        assert!(p <= 1.0);
        est.on_accept(now, 20.0);
    }
    assert!(!est.is_congested(), "estimator should leave congestion");
}
