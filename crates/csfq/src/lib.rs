//! Weighted **Core-Stateless Fair Queueing** (CSFQ) — the baseline the
//! Corelite paper compares against.
//!
//! CSFQ (Stoica, Shenker, Zhang — SIGCOMM 1998) approximates weighted fair
//! bandwidth allocation without per-flow state in the core:
//!
//! * **Edge routers** estimate each flow's rate with exponential averaging
//!   ([`estimator::RateEstimator`], time constant `K = 100 ms` in the
//!   paper's runs) and label every packet with the flow's *normalized*
//!   estimated rate `r/w` ([`edge::CsfqEdge`]).
//! * **Core routers** estimate the link's fair share `α`
//!   ([`core::FairShareEstimator`]) and drop each arriving packet with
//!   probability `max(0, 1 − α/label)`, relabelling forwarded packets to
//!   `min(label, α)` ([`core::CsfqCore`]).
//!
//! The traffic sources are the same adaptive agents the Corelite paper
//! uses (§4): slow-start that doubles every second until the first
//! congestion indication — here a packet **loss** — or `ss_thresh`, then
//! linear increase / loss-proportional decrease. This makes the two
//! architectures differ only in the mechanism under study, exactly as in
//! the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use csfq::{CsfqConfig, CsfqCore, CsfqEdge};
//! use netsim::flow::FlowSpec;
//! use netsim::link::LinkSpec;
//! use netsim::logic::ForwardLogic;
//! use netsim::topology::TopologyBuilder;
//! use sim_core::time::{SimDuration, SimTime};
//!
//! let cfg = CsfqConfig::default();
//! let mut b = TopologyBuilder::new(17);
//! let edge = b.node("edge", |s| Box::new(CsfqEdge::new(s, cfg.clone())));
//! let core = b.node("core", |s| Box::new(CsfqCore::new(s, cfg.clone())));
//! let sink = b.node("sink", |_| Box::new(ForwardLogic));
//! b.link(edge, core, LinkSpec::new(40_000_000, SimDuration::from_millis(1), 400));
//! b.link(core, sink, LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40));
//! b.flow(FlowSpec::new(vec![edge, core, sink], 1).active(SimTime::ZERO, None));
//! let mut net = b.build();
//! net.run_until(SimTime::from_secs(5));
//! let report = net.into_report(SimTime::from_secs(5));
//! assert!(report.flows[0].delivered_packets > 0);
//! ```

pub mod config;
pub mod core;
pub mod edge;
pub mod estimator;

pub use crate::core::{CsfqCore, FairShareEstimator};
pub use config::CsfqConfig;
pub use edge::CsfqEdge;
pub use estimator::RateEstimator;
