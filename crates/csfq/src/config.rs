//! CSFQ parameters, defaulted to the Corelite paper's comparison setup
//! (§4): `K = K_link = 100 ms`, the same adaptive source agents, 1 KB
//! packets.

use sim_core::time::SimDuration;

/// Tunable parameters of the weighted CSFQ baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CsfqConfig {
    /// Time constant `K` of the per-flow rate estimator at the edge
    /// (paper: 100 ms).
    pub k_flow: SimDuration,
    /// Averaging window `K_link` for the link's aggregate arrival and
    /// accepted-rate estimates and the fair-share update interval
    /// (paper: 100 ms).
    pub k_link: SimDuration,
    /// Source-agent adaptation epoch (identical to the Corelite edges'
    /// 500 ms epoch, per §4's "similar rate adaptation schemes").
    pub edge_epoch: SimDuration,
    /// Linear increase step in packets per second per epoch (paper: 1).
    pub alpha: f64,
    /// Whether the additive increase scales with the flow's rate weight
    /// (`α·w`); matches the Corelite agents.
    pub alpha_per_weight: bool,
    /// Rate decrement in packets per second per congestion indication
    /// (= packet loss for CSFQ; paper: 1).
    pub beta: f64,
    /// Slow-start threshold in packets per second per unit weight
    /// (paper: 32); matches the Corelite agents.
    pub ss_thresh: f64,
    /// Whether `ss_thresh` scales with the flow's rate weight.
    pub ss_thresh_per_weight: bool,
    /// Initial rate of a newly started flow, packets per second.
    pub initial_rate: f64,
    /// Slow-start doubling interval (paper: every second).
    pub slow_start_interval: SimDuration,
    /// Reference packet size in bytes for expressing link capacity in
    /// packets per second (paper: fixed 1 KB packets).
    pub reference_packet_size: u32,
    /// Multiplicative fair-share penalty applied when a packet arrives to
    /// a full queue (the ns implementation's buffer-overflow correction).
    pub overflow_penalty: f64,
}

impl Default for CsfqConfig {
    fn default() -> Self {
        CsfqConfig {
            k_flow: SimDuration::from_millis(100),
            k_link: SimDuration::from_millis(100),
            edge_epoch: SimDuration::from_millis(500),
            alpha: 1.0,
            alpha_per_weight: false,
            beta: 1.0,
            ss_thresh: 32.0,
            ss_thresh_per_weight: true,
            initial_rate: 1.0,
            slow_start_interval: SimDuration::from_secs(1),
            reference_packet_size: 1000,
            overflow_penalty: 0.99,
        }
    }
}

impl CsfqConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on non-positive time constants, steps, or packet size, or an
    /// overflow penalty outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(!self.k_flow.is_zero(), "K (flow) must be positive");
        assert!(!self.k_link.is_zero(), "K_link must be positive");
        assert!(!self.edge_epoch.is_zero(), "edge epoch must be positive");
        assert!(self.alpha > 0.0, "alpha must be positive");
        assert!(self.beta > 0.0, "beta must be positive");
        assert!(self.initial_rate > 0.0, "initial rate must be positive");
        assert!(
            self.reference_packet_size > 0,
            "reference packet size must be positive"
        );
        assert!(
            self.overflow_penalty > 0.0 && self.overflow_penalty <= 1.0,
            "overflow penalty must be in (0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CsfqConfig::default();
        assert_eq!(c.k_flow, SimDuration::from_millis(100));
        assert_eq!(c.k_link, SimDuration::from_millis(100));
        assert_eq!(c.alpha, 1.0);
        assert_eq!(c.beta, 1.0);
        assert_eq!(c.ss_thresh, 32.0);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "overflow penalty")]
    fn bad_penalty_rejected() {
        CsfqConfig {
            overflow_penalty: 1.5,
            ..CsfqConfig::default()
        }
        .validate();
    }
}
