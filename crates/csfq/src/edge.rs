//! The CSFQ edge: per-flow rate estimation, packet labelling, and the
//! paper's adaptive source agent.
//!
//! The edge combines two roles from the paper's evaluation setup:
//!
//! * the CSFQ **ingress edge router**, which estimates each flow's rate
//!   (exponential averaging, `K = 100 ms`) and labels every packet with
//!   the normalized estimate `r/w`, and
//! * the adaptive **source agent** (§4): slow-start doubling every second
//!   until the first congestion indication — a packet *loss* for CSFQ —
//!   or `ss_thresh`, then halve and move to linear increase; in the linear
//!   phase, decrease proportionally to the number of losses observed in
//!   the epoch, else increase by `α`.

use sim_core::stats::TimeSeries;
use sim_core::time::{SimDuration, SimTime};

use netsim::ids::FlowId;
use netsim::logic::{ControlMsg, Ctx, LogicReport, RouterLogic, TimerKind};
use netsim::slab::{ActiveSet, DenseMap};

use crate::config::CsfqConfig;
use crate::estimator::RateEstimator;

const TIMER_EPOCH: u32 = 1;
const TIMER_EMIT: u32 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    SlowStart,
    Linear,
}

#[derive(Debug)]
struct FlowState {
    weight: u32,
    active: bool,
    /// The agent's sending rate, packets per second.
    rate: f64,
    phase: Phase,
    last_double: SimTime,
    losses_this_epoch: u32,
    emission_pending: bool,
    estimator: RateEstimator,
    series: TimeSeries,
}

impl FlowState {
    fn new(weight: u32, k_flow: SimDuration) -> Self {
        FlowState {
            weight,
            active: false,
            rate: 0.0,
            phase: Phase::Linear,
            last_double: SimTime::ZERO,
            losses_this_epoch: 0,
            emission_pending: false,
            estimator: RateEstimator::new(k_flow),
            series: TimeSeries::new(),
        }
    }
}

/// Router logic for a CSFQ (ingress) edge router plus the paper's source
/// agents. See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct CsfqEdge {
    cfg: CsfqConfig,
    flows: DenseMap<FlowId, FlowState>,
    /// Flows currently started here; the adaptation epoch walks this
    /// instead of every slot ever occupied (O(active) under churn).
    active: ActiveSet<FlowId>,
    /// Per-slot emission-chain epoch; see `CoreliteEdge::emission_epochs`.
    /// Start and stop both bump it, so a pending `TIMER_EMIT` from a
    /// finished activation (or a recycled slot's previous occupant)
    /// can never feed the current one.
    emission_epochs: Vec<u32>,
    losses_seen: u64,
    packets_labelled: u64,
    #[allow(dead_code)]
    seed: u64,
}

impl CsfqEdge {
    /// Creates edge logic with the given component `seed` and
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CsfqConfig::validate`].
    pub fn new(seed: u64, cfg: CsfqConfig) -> Self {
        cfg.validate();
        CsfqEdge {
            cfg,
            flows: DenseMap::new(),
            active: ActiveSet::new(),
            emission_epochs: Vec::new(),
            losses_seen: 0,
            packets_labelled: 0,
            seed,
        }
    }

    /// The agent's current sending rate for `flow`, if started here.
    pub fn sending_rate(&self, flow: FlowId) -> Option<f64> {
        self.flows.get(&flow).map(|s| s.rate)
    }

    fn record(&mut self, flow: FlowId, now: SimTime) {
        let s = self.flows.get_mut(&flow).expect("recorded flow exists");
        let value = if s.active { s.rate } else { 0.0 };
        s.series.push(now, value);
    }

    /// Invalidates any outstanding emission chain for `flow`'s slot and
    /// returns the new epoch for arming a fresh one.
    fn bump_epoch(&mut self, flow: FlowId) -> u32 {
        let idx = flow.index();
        if idx >= self.emission_epochs.len() {
            self.emission_epochs.resize(idx + 1, 0);
        }
        self.emission_epochs[idx] = self.emission_epochs[idx].wrapping_add(1);
        self.emission_epochs[idx]
    }

    /// The timer parameter for `flow`'s current emission chain: epoch in
    /// the high 32 bits, slot index in the low 32.
    fn emit_param(&self, flow: FlowId) -> u64 {
        let epoch = self.emission_epochs[flow.index()];
        ((epoch as u64) << 32) | flow.index() as u64
    }

    fn ensure_emission(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let param = self.emit_param(flow);
        let s = self.flows.get_mut(&flow).expect("flow state exists");
        if s.active && s.rate > 0.0 && !s.emission_pending {
            s.emission_pending = true;
            ctx.set_timer(
                SimDuration::from_secs_f64(1.0 / s.rate),
                TimerKind::with_param(TIMER_EMIT, param),
            );
        }
    }

    fn handle_emit(&mut self, ctx: &mut Ctx<'_>, param: u64) {
        let idx = param as u32 as usize;
        let epoch = (param >> 32) as u32;
        // A chain armed under an older epoch belongs to a finished
        // activation (or a recycled slot's previous occupant).
        if self.emission_epochs.get(idx) != Some(&epoch) {
            return;
        }
        // Epoch matched: the slot's current occupant armed this chain;
        // resolve its full id so the packet is attributed to it.
        let flow = ctx.flow(FlowId::from_index(idx)).id;
        let Some(s) = self.flows.get_mut(&flow) else {
            return;
        };
        s.emission_pending = false;
        if !s.active || s.rate <= 0.0 {
            return;
        }
        let now = ctx.now();
        let estimated = s.estimator.on_packet(now);
        let label = estimated / s.weight as f64;
        let packet = ctx.new_packet(flow).with_label(label);
        ctx.emit(packet);
        self.packets_labelled += 1;
        let s = self.flows.get_mut(&flow).expect("flow state exists");
        s.emission_pending = true;
        ctx.set_timer(
            SimDuration::from_secs_f64(1.0 / s.rate),
            TimerKind::with_param(TIMER_EMIT, param),
        );
    }

    fn adapt_all(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        // Only started flows adapt. Skipped flows are observably
        // identical to the full scan this replaces: `on_flow_stop`
        // clears `losses_this_epoch`, losses cannot accumulate while a
        // flow is inactive, and inactive flows neither record samples
        // nor arm emission.
        for pos in 0..self.active.len() {
            let flow = ctx.flow(self.active.get(pos)).id;
            let alpha = self.cfg.alpha;
            let beta = self.cfg.beta;
            let Some(s) = self.flows.get_mut(&flow) else {
                continue;
            };
            if !s.active {
                s.losses_this_epoch = 0;
                continue;
            }
            let m = s.losses_this_epoch;
            if m > 0 {
                s.rate = (s.rate - beta * m as f64).max(0.0);
            } else {
                match s.phase {
                    Phase::SlowStart => {
                        if now.saturating_since(s.last_double) >= self.cfg.slow_start_interval {
                            s.rate *= 2.0;
                            s.last_double = now;
                            let thresh = if self.cfg.ss_thresh_per_weight {
                                self.cfg.ss_thresh * s.weight as f64
                            } else {
                                self.cfg.ss_thresh
                            };
                            if s.rate > thresh {
                                s.rate /= 2.0;
                                s.phase = Phase::Linear;
                            }
                        }
                    }
                    Phase::Linear => {
                        s.rate += if self.cfg.alpha_per_weight {
                            alpha * s.weight as f64
                        } else {
                            alpha
                        };
                    }
                }
            }
            s.losses_this_epoch = 0;
            self.record(flow, now);
            self.ensure_emission(ctx, flow);
        }
    }
}

impl RouterLogic for CsfqEdge {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.cfg.edge_epoch, TimerKind::tagged(TIMER_EPOCH));
    }

    fn on_flow_start(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let now = ctx.now();
        let info = ctx.flow(flow);
        let (weight, transient) = (info.weight, info.is_transient());
        let k_flow = self.cfg.k_flow;
        // Invalidate any chain left over from a previous activation or
        // a recycled slot's previous occupant.
        self.bump_epoch(flow);
        self.active.insert(flow);
        if transient {
            // Churn flows always begin from scratch, even if the slot's
            // previous occupant's stop was swallowed by a pause.
            self.flows.insert(flow, FlowState::new(weight, k_flow));
        }
        let s = self
            .flows
            .entry_or_insert_with(flow, || FlowState::new(weight, k_flow));
        s.active = true;
        s.rate = self.cfg.initial_rate;
        s.phase = Phase::SlowStart;
        s.last_double = now;
        s.losses_this_epoch = 0;
        s.estimator = RateEstimator::new(k_flow);
        s.emission_pending = false;
        self.record(flow, now);
        self.ensure_emission(ctx, flow);
    }

    fn on_flow_stop(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let now = ctx.now();
        // Kill the outstanding emission chain: a pending `TIMER_EMIT`
        // must not survive the stop and leak into a later activation.
        self.bump_epoch(flow);
        self.active.remove(flow);
        if ctx.flow(flow).is_transient() {
            // Departed churn flows never restart; drop their state so
            // edge memory tracks the active set, not total arrivals.
            self.flows.remove(&flow);
            return;
        }
        if let Some(s) = self.flows.get_mut(&flow) {
            s.active = false;
            s.losses_this_epoch = 0;
            s.emission_pending = false;
        }
        self.record(flow, now);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
        match timer.tag {
            TIMER_EPOCH => {
                self.adapt_all(ctx);
                ctx.set_timer(self.cfg.edge_epoch, TimerKind::tagged(TIMER_EPOCH));
            }
            TIMER_EMIT => self.handle_emit(ctx, timer.param),
            _ => {}
        }
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, msg: ControlMsg) {
        if let ControlMsg::Loss { flow, .. } = msg {
            self.losses_seen += 1;
            let now = ctx.now();
            let Some(s) = self.flows.get_mut(&flow) else {
                return;
            };
            if !s.active {
                return;
            }
            if s.phase == Phase::SlowStart {
                // First congestion indication ends slow-start with a
                // halving; the loss is consumed by the halving.
                s.phase = Phase::Linear;
                s.rate /= 2.0;
                self.record(flow, now);
            } else {
                s.losses_this_epoch += 1;
            }
        }
    }

    fn report(&self, _now: SimTime) -> LogicReport {
        let mut report = LogicReport::default();
        for (flow, s) in self.flows.iter() {
            report.flow_rates.insert(flow, s.series.clone());
        }
        report
            .counters
            .insert("losses_seen".to_owned(), self.losses_seen as f64);
        report
            .counters
            .insert("packets_labelled".to_owned(), self.packets_labelled as f64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CsfqCore;
    use netsim::flow::FlowSpec;
    use netsim::link::LinkSpec;
    use netsim::logic::ForwardLogic;
    use netsim::topology::TopologyBuilder;
    use netsim::SimReport;

    /// Two flows (weights `w1`, `w2`) share one 500 pkt/s bottleneck.
    fn bottleneck_scenario(w1: u32, w2: u32, end: SimTime) -> SimReport {
        let cfg = CsfqConfig::default();
        let mut b = TopologyBuilder::new(23);
        let e1 = b.node("edge1", |s| Box::new(CsfqEdge::new(s, cfg.clone())));
        let e2 = b.node("edge2", |s| Box::new(CsfqEdge::new(s, cfg.clone())));
        let core = b.node("core", |s| Box::new(CsfqCore::new(s, cfg.clone())));
        let sink = b.node("sink", |_| Box::new(ForwardLogic));
        let access = LinkSpec::new(40_000_000, SimDuration::from_millis(1), 400);
        b.link(e1, core, access);
        b.link(e2, core, access);
        b.link(
            core,
            sink,
            LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40),
        );
        b.flow(FlowSpec::new(vec![e1, core, sink], w1).active(SimTime::ZERO, None));
        b.flow(FlowSpec::new(vec![e2, core, sink], w2).active(SimTime::ZERO, None));
        let mut net = b.build();
        net.run_until(end);
        net.into_report(end)
    }

    #[test]
    fn csfq_converges_to_weighted_goodput() {
        // Shares are 167/333 pkt/s; the flat +1/epoch increase needs
        // ~150 s to carry the agents there from their slow-start exits.
        let end = SimTime::from_secs(260);
        let report = bottleneck_scenario(1, 2, end);
        let from = SimTime::from_secs(200);
        let g1 = report
            .flow(FlowId::from_index(0))
            .mean_goodput_in(from, end)
            .unwrap();
        let g2 = report
            .flow(FlowId::from_index(1))
            .mean_goodput_in(from, end)
            .unwrap();
        let ratio = g2 / g1;
        assert!(
            (ratio - 2.0).abs() < 0.5,
            "goodput ratio {ratio}, want ≈ 2 (g1 {g1}, g2 {g2})"
        );
        // The bottleneck stays busy.
        let total = g1 + g2;
        assert!(total > 400.0, "aggregate goodput {total}");
    }

    #[test]
    fn csfq_drops_packets_under_congestion() {
        // Unlike Corelite, CSFQ signals congestion through losses. The
        // two agents reach the 500 pkt/s link capacity after ~110 s.
        let end = SimTime::from_secs(200);
        let report = bottleneck_scenario(1, 1, end);
        assert!(
            report.total_drops() > 0,
            "CSFQ must drop packets to signal congestion"
        );
    }

    #[test]
    fn labels_reflect_normalized_rates() {
        let end = SimTime::from_secs(20);
        let report = bottleneck_scenario(1, 2, end);
        assert!(report.counter_total("packets_labelled") > 0.0);
    }
}
