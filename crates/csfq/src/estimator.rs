//! CSFQ's exponentially averaged rate estimator.
//!
//! A thin, domain-named wrapper over [`sim_core::stats::ExpAvg`]:
//! `r_new = (1 − e^{−T/K})·(l/T) + e^{−T/K}·r_old` on each arrival, where
//! `T` is the inter-arrival gap and `l` the packet's contribution (1 for
//! packet-rate estimation). The exponential form makes the estimate
//! insensitive to the packet-size pattern (SIGCOMM '98, §3.3).

use sim_core::stats::ExpAvg;
use sim_core::time::{SimDuration, SimTime};

/// Estimates a flow's (or aggregate's) rate in packets per second.
///
/// # Example
///
/// ```
/// use csfq::estimator::RateEstimator;
/// use sim_core::time::{SimDuration, SimTime};
///
/// let mut est = RateEstimator::new(SimDuration::from_millis(100));
/// let mut now = SimTime::ZERO;
/// for _ in 0..100 {
///     now += SimDuration::from_millis(20); // 50 packets/s
///     est.on_packet(now);
/// }
/// assert!((est.rate() - 50.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RateEstimator {
    inner: ExpAvg,
}

impl RateEstimator {
    /// Creates an estimator with averaging time constant `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: SimDuration) -> Self {
        RateEstimator {
            inner: ExpAvg::new(k),
        }
    }

    /// Records one packet arriving at `now` and returns the updated
    /// packets-per-second estimate.
    pub fn on_packet(&mut self, now: SimTime) -> f64 {
        self.inner.observe(now, 1.0)
    }

    /// The current estimate without decay.
    pub fn rate(&self) -> f64 {
        self.inner.rate()
    }

    /// The estimate decayed to `now` assuming no arrivals since the last
    /// packet.
    pub fn rate_at(&self, now: SimTime) -> f64 {
        self.inner.decayed(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_rate_changes() {
        let mut est = RateEstimator::new(SimDuration::from_millis(100));
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            now += SimDuration::from_millis(10); // 100 pkt/s
            est.on_packet(now);
        }
        assert!((est.rate() - 100.0).abs() < 2.0);
        for _ in 0..200 {
            now += SimDuration::from_millis(40); // drop to 25 pkt/s
            est.on_packet(now);
        }
        assert!((est.rate() - 25.0).abs() < 1.0);
    }

    #[test]
    fn decays_during_silence() {
        let mut est = RateEstimator::new(SimDuration::from_millis(100));
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            now += SimDuration::from_millis(10);
            est.on_packet(now);
        }
        let idle = est.rate_at(now + SimDuration::from_secs(1));
        assert!(idle < est.rate() * 0.001);
    }
}
