//! The CSFQ core router: fair-share estimation and probabilistic dropping.
//!
//! Per outgoing link the router keeps a [`FairShareEstimator`] — the
//! SIGCOMM '98 algorithm: exponentially averaged aggregate arrival rate
//! `A` and accepted rate `F`; when the link is congested (`A ≥ C`) the
//! fair share is updated multiplicatively every `K_link`
//! (`α ← α·C/F`), and while uncongested `α` tracks the largest label
//! seen in the window. Each arriving packet is dropped with probability
//! `max(0, 1 − α/label)` and forwarded packets are relabelled to
//! `min(label, α)`.
//!
//! This estimate-then-drop structure is exactly what the Corelite paper
//! criticises: when the fair share changes faster than the estimator
//! tracks, under-estimates drop packets from flows below their fair share
//! and over-estimates fill the buffer until tail drop (§4.2).

use sim_core::rng::DetRng;
use sim_core::time::{SimDuration, SimTime};

use netsim::ids::LinkId;
use netsim::logic::{Ctx, LogicReport, RouterLogic, TimerKind};
use netsim::packet::Packet;
use netsim::slab::DenseMap;
use netsim::telemetry::Sample;

use crate::config::CsfqConfig;
use crate::estimator::RateEstimator;

/// Telemetry sampling timer, armed only when a probe is installed so a
/// probe-less run's event stream is untouched.
const TIMER_SAMPLE: u32 = 1;

/// The per-link fair-share estimation state of a CSFQ core router.
#[derive(Debug, Clone)]
pub struct FairShareEstimator {
    capacity_pps: f64,
    k_link: SimDuration,
    arrival: RateEstimator,
    accepted: RateEstimator,
    alpha: Option<f64>,
    tmp_alpha: f64,
    congested: bool,
    window_start: SimTime,
}

impl FairShareEstimator {
    /// Creates an estimator for a link of `capacity_pps` packets per
    /// second with update window `k_link`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_pps` is not positive or `k_link` is zero.
    pub fn new(capacity_pps: f64, k_link: SimDuration) -> Self {
        assert!(
            capacity_pps > 0.0,
            "link capacity must be positive, got {capacity_pps}"
        );
        assert!(!k_link.is_zero(), "K_link must be positive");
        FairShareEstimator {
            capacity_pps,
            k_link,
            arrival: RateEstimator::new(k_link),
            accepted: RateEstimator::new(k_link),
            alpha: None,
            tmp_alpha: 0.0,
            congested: false,
            window_start: SimTime::ZERO,
        }
    }

    /// The current fair-share estimate `α` in normalized packets per
    /// second, or `None` before the first estimate exists.
    pub fn alpha(&self) -> Option<f64> {
        self.alpha
    }

    /// Whether the link currently measures as congested (`A ≥ C`).
    pub fn is_congested(&self) -> bool {
        self.congested
    }

    /// Processes one packet arrival with the given `label` (normalized
    /// rate) and returns the probability with which it should be dropped.
    ///
    /// The caller must then report the outcome via
    /// [`FairShareEstimator::on_accept`] for forwarded packets.
    pub fn on_arrival(&mut self, now: SimTime, label: f64) -> f64 {
        let a = self.arrival.on_packet(now);
        if a >= self.capacity_pps {
            if !self.congested {
                self.congested = true;
                self.window_start = now;
                // Entering congestion: adopt the best uncongested estimate
                // (the largest label seen), falling back to the label at
                // hand — mirrors the ns implementation's initialisation.
                if self.alpha.is_none() {
                    self.alpha = Some(if self.tmp_alpha > 0.0 {
                        self.tmp_alpha
                    } else {
                        label
                    });
                }
            } else if now.saturating_since(self.window_start) >= self.k_link {
                let f = self.accepted.rate().max(1e-9);
                let current = self.alpha.unwrap_or(label);
                self.alpha = Some(current * self.capacity_pps / f);
                self.window_start = now;
            }
        } else {
            if self.congested {
                self.congested = false;
                self.window_start = now;
                self.tmp_alpha = 0.0;
            }
            if now.saturating_since(self.window_start) < self.k_link {
                self.tmp_alpha = self.tmp_alpha.max(label);
            } else {
                // An uncongested window elapsed: the fair share is at least
                // the largest normalized rate currently using the link.
                self.alpha = Some(self.tmp_alpha.max(label));
                self.window_start = now;
                self.tmp_alpha = 0.0;
            }
        }
        match self.alpha {
            Some(alpha) if self.congested && label > 0.0 => (1.0 - alpha / label).max(0.0),
            _ => 0.0,
        }
    }

    /// Records that the packet was forwarded (feeds the accepted-rate
    /// estimate `F`) and returns the relabelled value `min(label, α)`.
    pub fn on_accept(&mut self, now: SimTime, label: f64) -> f64 {
        self.accepted.on_packet(now);
        match self.alpha {
            Some(alpha) => label.min(alpha),
            None => label,
        }
    }

    /// Applies the buffer-overflow penalty `α ← α·penalty` (the ns
    /// implementation decreases the estimate when the queue overflows
    /// despite probabilistic dropping).
    pub fn on_overflow(&mut self, penalty: f64) {
        if let Some(alpha) = self.alpha {
            self.alpha = Some(alpha * penalty);
        }
    }
}

/// Router logic for a CSFQ core router: probabilistic, label-driven
/// dropping with no per-flow state.
#[derive(Debug)]
pub struct CsfqCore {
    cfg: CsfqConfig,
    rng: DetRng,
    links: DenseMap<LinkId, FairShareEstimator>,
    policy_drops: u64,
    forwarded: u64,
}

impl CsfqCore {
    /// Creates core logic with the given component `seed` and
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CsfqConfig::validate`].
    pub fn new(seed: u64, cfg: CsfqConfig) -> Self {
        cfg.validate();
        CsfqCore {
            cfg,
            rng: DetRng::new(seed),
            links: DenseMap::new(),
            policy_drops: 0,
            forwarded: 0,
        }
    }

    /// The fair-share estimator of `link`, if the node owns it.
    pub fn estimator(&self, link: LinkId) -> Option<&FairShareEstimator> {
        self.links.get(&link)
    }
}

impl RouterLogic for CsfqCore {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for link in ctx.outgoing_links() {
            let spec = ctx.link_spec(link);
            let capacity = spec.service_rate_pps(self.cfg.reference_packet_size);
            self.links
                .insert(link, FairShareEstimator::new(capacity, self.cfg.k_link));
        }
        // CSFQ has no epoch timer of its own; fair-share telemetry needs
        // a sampling clock. Arm it only under a probe: extra events would
        // otherwise perturb probe-less runs.
        if ctx.probe_enabled() {
            ctx.set_timer(self.cfg.k_link, TimerKind::tagged(TIMER_SAMPLE));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
        if timer.tag != TIMER_SAMPLE {
            return;
        }
        for (link, est) in self.links.iter() {
            if let Some(alpha) = est.alpha() {
                ctx.publish(Sample::for_link("alpha", link, alpha));
            }
            ctx.publish(Sample::for_link(
                "congested",
                link,
                f64::from(est.is_congested()),
            ));
        }
        ctx.set_timer(self.cfg.k_link, TimerKind::tagged(TIMER_SAMPLE));
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, mut packet: Packet) {
        let Some(link) = ctx.next_hop(packet.flow) else {
            return;
        };
        let est = self
            .links
            .get_mut(&link)
            .expect("estimator initialised in on_start");
        let label = packet.label.unwrap_or(0.0);
        let now = ctx.now();
        let p_drop = est.on_arrival(now, label);
        if self.rng.bernoulli(p_drop) {
            self.policy_drops += 1;
            ctx.drop_packet(packet);
            return;
        }
        let new_label = est.on_accept(now, label);
        // Approaching buffer exhaustion means the estimate is too high.
        if ctx.link_queue_len(link) >= ctx.link_spec(link).queue_capacity {
            let penalty = self.cfg.overflow_penalty;
            self.links
                .get_mut(&link)
                .expect("estimator exists")
                .on_overflow(penalty);
        }
        packet.label = Some(new_label);
        self.forwarded += 1;
        ctx.forward(link, packet);
    }

    fn report(&self, _now: SimTime) -> LogicReport {
        let mut report = LogicReport::default();
        report
            .counters
            .insert("csfq_policy_drops".to_owned(), self.policy_drops as f64);
        report
            .counters
            .insert("csfq_forwarded".to_owned(), self.forwarded as f64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn uncongested_link_never_drops() {
        let mut est = FairShareEstimator::new(500.0, SimDuration::from_millis(100));
        // 100 pkt/s aggregate on a 500 pkt/s link.
        for i in 1..=200u64 {
            let p = est.on_arrival(t(i * 10), 100.0);
            assert_eq!(p, 0.0);
            est.on_accept(t(i * 10), 100.0);
        }
        assert!(!est.is_congested());
        // Fair share settles at the largest label seen.
        assert!(est.alpha().unwrap() >= 100.0);
    }

    #[test]
    fn congested_link_drops_over_limit_flows() {
        let mut est = FairShareEstimator::new(500.0, SimDuration::from_millis(100));
        // 1000 pkt/s aggregate: every 1 ms, labels alternating 800 / 200.
        let mut high_drop = 0.0;
        let mut low_drop = 0.0;
        for i in 1..=4000u64 {
            let label = if i % 2 == 0 { 800.0 } else { 200.0 };
            let p = est.on_arrival(SimTime::from_micros(i * 1000), label);
            if i > 2000 {
                if label > 500.0 {
                    high_drop += p;
                } else {
                    low_drop += p;
                }
            }
            if p < 0.5 {
                est.on_accept(SimTime::from_micros(i * 1000), label);
            }
        }
        assert!(est.is_congested());
        assert!(
            high_drop > low_drop * 2.0,
            "high-label flows must be dropped much more: {high_drop} vs {low_drop}"
        );
    }

    #[test]
    fn relabel_caps_at_alpha() {
        let mut est = FairShareEstimator::new(500.0, SimDuration::from_millis(100));
        // Force congestion so alpha exists.
        for i in 1..=2000u64 {
            est.on_arrival(SimTime::from_micros(i * 500), 700.0);
            est.on_accept(SimTime::from_micros(i * 500), 700.0);
        }
        let alpha = est.alpha().unwrap();
        let relabelled = est.on_accept(t(2001), 10_000.0);
        assert!(relabelled <= alpha);
        let kept = est.on_accept(t(2002), alpha / 2.0);
        assert!((kept - alpha / 2.0).abs() < 1e-9);
    }

    #[test]
    fn overflow_penalty_shrinks_alpha() {
        let mut est = FairShareEstimator::new(500.0, SimDuration::from_millis(100));
        for i in 1..=2000u64 {
            est.on_arrival(SimTime::from_micros(i * 500), 700.0);
            est.on_accept(SimTime::from_micros(i * 500), 700.0);
        }
        let before = est.alpha().unwrap();
        est.on_overflow(0.99);
        assert!((est.alpha().unwrap() - before * 0.99).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn invalid_capacity_rejected() {
        FairShareEstimator::new(0.0, SimDuration::from_millis(100));
    }
}
