//! Behavioural tests for the network substrate's configuration surface:
//! measurement windows, loss-notification policy, context accessors, and
//! misuse panics.

use std::cell::RefCell;
use std::rc::Rc;

use netsim::flow::FlowSpec;
use netsim::link::LinkSpec;
use netsim::logic::{CbrSource, ControlMsg, Ctx, ForwardLogic, RouterLogic};
use netsim::topology::TopologyBuilder;
use netsim::FlowId;
use sim_core::time::{SimDuration, SimTime};

fn fast() -> LinkSpec {
    LinkSpec::new(40_000_000, SimDuration::from_millis(5), 400)
}

fn slow() -> LinkSpec {
    LinkSpec::new(4_000_000, SimDuration::from_millis(10), 10)
}

/// Records every control message it sees.
#[derive(Debug, Default)]
struct ControlRecorder {
    losses: Rc<RefCell<u64>>,
}

impl RouterLogic for ControlRecorder {
    fn on_flow_start(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        // Delegate emission to a fixed-rate chain.
        let packet = ctx.new_packet(flow);
        ctx.emit(packet);
        ctx.set_timer(
            SimDuration::from_millis(1),
            netsim::TimerKind::with_param(9, flow.index() as u64),
        );
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: netsim::TimerKind) {
        let flow = FlowId::from_index(timer.param as usize);
        if ctx.flow(flow).is_active_at(ctx.now()) {
            let packet = ctx.new_packet(flow);
            ctx.emit(packet);
            ctx.set_timer(SimDuration::from_millis(1), timer);
        }
    }

    fn on_control(&mut self, _ctx: &mut Ctx<'_>, msg: ControlMsg) {
        if matches!(msg, ControlMsg::Loss { .. }) {
            *self.losses.borrow_mut() += 1;
        }
    }
}

#[test]
fn loss_notifications_can_be_disabled() {
    for notify in [true, false] {
        let losses = Rc::new(RefCell::new(0u64));
        let handle = losses.clone();
        let mut b = TopologyBuilder::new(8);
        b.notify_losses(notify);
        let src = b.node("src", move |_| Box::new(ControlRecorder { losses: handle }));
        let dst = b.node("dst", |_| Box::new(ForwardLogic));
        b.link(src, dst, slow()); // 1000 pkt/s offered into 500 pkt/s
        b.flow(FlowSpec::new(vec![src, dst], 1).active(SimTime::ZERO, None));
        let end = SimTime::from_secs(3);
        let mut net = b.build();
        net.run_until(end);
        let report = net.into_report(end);
        assert!(report.total_drops() > 0, "overload must drop");
        if notify {
            assert_eq!(*losses.borrow(), report.total_drops());
        } else {
            assert_eq!(*losses.borrow(), 0, "notifications were disabled");
        }
    }
}

#[test]
fn measurement_window_changes_series_granularity() {
    let build = |window_ms: u64| {
        let mut b = TopologyBuilder::new(2);
        b.measurement_window(SimDuration::from_millis(window_ms));
        let src = b.node("src", |_| Box::new(CbrSource::new(100.0)));
        let dst = b.node("dst", |_| Box::new(ForwardLogic));
        b.link(src, dst, fast());
        b.flow(FlowSpec::new(vec![src, dst], 1).active(SimTime::ZERO, None));
        let end = SimTime::from_secs(4);
        let mut net = b.build();
        net.run_until(end);
        net.into_report(end)
    };
    let coarse = build(1000);
    let fine = build(250);
    assert!(
        fine.flows[0].goodput.len() >= 4 * coarse.flows[0].goodput.len() - 4,
        "250 ms windows should give ~4x the points: {} vs {}",
        fine.flows[0].goodput.len(),
        coarse.flows[0].goodput.len()
    );
}

#[test]
fn node_names_and_reverse_delays_are_exposed() {
    let mut b = TopologyBuilder::new(1);
    let a = b.node("alpha", |_| Box::new(ForwardLogic));
    let c = b.node("beta", |_| Box::new(ForwardLogic));
    let d = b.node("gamma", |_| Box::new(ForwardLogic));
    b.link(a, c, fast());
    b.link(c, d, slow());
    let f = b.flow(FlowSpec::new(vec![a, c, d], 1).active(SimTime::ZERO, None));
    let net = b.build();
    assert_eq!(net.node_name(a), "alpha");
    assert_eq!(net.node_name(d), "gamma");
    assert_eq!(net.reverse_delay(f, a), SimDuration::ZERO);
    assert_eq!(net.reverse_delay(f, c), SimDuration::from_millis(5));
    assert_eq!(net.reverse_delay(f, d), SimDuration::from_millis(15));
}

#[test]
#[should_panic(expected = "not on the path")]
fn reverse_delay_for_off_path_node_panics() {
    let mut b = TopologyBuilder::new(1);
    let a = b.node("a", |_| Box::new(ForwardLogic));
    let c = b.node("c", |_| Box::new(ForwardLogic));
    let lone = b.node("lone", |_| Box::new(ForwardLogic));
    b.link(a, c, fast());
    let f = b.flow(FlowSpec::new(vec![a, c], 1).active(SimTime::ZERO, None));
    let net = b.build();
    let _ = net.reverse_delay(f, lone);
}

/// Logic that tries to forward on a link it does not own.
#[derive(Debug)]
struct RogueForwarder;

impl RouterLogic for RogueForwarder {
    fn on_flow_start(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let packet = ctx.new_packet(flow);
        // Link 1 belongs to another node.
        ctx.forward(netsim::LinkId::from_index(1), packet);
    }
}

#[test]
#[should_panic(expected = "does not own")]
fn forwarding_on_foreign_link_panics() {
    let mut b = TopologyBuilder::new(1);
    let a = b.node("a", |_| Box::new(RogueForwarder));
    let c = b.node("c", |_| Box::new(ForwardLogic));
    let d = b.node("d", |_| Box::new(ForwardLogic));
    b.link(a, c, fast()); // link 0, owned by a
    b.link(c, d, fast()); // link 1, owned by c
    b.flow(FlowSpec::new(vec![a, c, d], 1).active(SimTime::ZERO, None));
    let mut net = b.build();
    net.run_until(SimTime::from_secs(1));
}

#[test]
fn multiple_flows_share_one_ingress_node() {
    let mut b = TopologyBuilder::new(6);
    let src = b.node("src", |_| Box::new(CbrSource::new(50.0)));
    let dst1 = b.node("dst1", |_| Box::new(ForwardLogic));
    let dst2 = b.node("dst2", |_| Box::new(ForwardLogic));
    b.link(src, dst1, fast());
    b.link(src, dst2, fast());
    let f1 = b.flow(FlowSpec::new(vec![src, dst1], 1).active(SimTime::ZERO, None));
    let f2 = b.flow(FlowSpec::new(vec![src, dst2], 1).active(SimTime::ZERO, None));
    let end = SimTime::from_secs(4);
    let mut net = b.build();
    net.run_until(end);
    let report = net.into_report(end);
    for f in [f1, f2] {
        let d = report.flow(f).delivered_packets;
        assert!((190..=201).contains(&d), "flow {f} delivered {d}");
    }
}

#[test]
fn one_way_delay_is_visible_to_logic() {
    #[derive(Debug)]
    struct DelayProbe {
        seen: Rc<RefCell<Option<SimDuration>>>,
    }
    impl RouterLogic for DelayProbe {
        fn on_flow_start(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
            *self.seen.borrow_mut() = Some(ctx.one_way_delay(flow));
        }
    }
    let seen = Rc::new(RefCell::new(None));
    let handle = seen.clone();
    let mut b = TopologyBuilder::new(1);
    let a = b.node("a", move |_| Box::new(DelayProbe { seen: handle }));
    let c = b.node("c", |_| Box::new(ForwardLogic));
    let d = b.node("d", |_| Box::new(ForwardLogic));
    b.link(a, c, fast());
    b.link(c, d, slow());
    b.flow(FlowSpec::new(vec![a, c, d], 1).active(SimTime::ZERO, None));
    let mut net = b.build();
    net.run_until(SimTime::from_secs(1));
    assert_eq!(*seen.borrow(), Some(SimDuration::from_millis(15)));
    // Keep the node ids alive for readability.
    let _ = (a, c, d);
}

#[test]
fn zero_size_is_rejected_but_small_packets_flow() {
    let mut b = TopologyBuilder::new(3);
    let src = b.node("src", |_| Box::new(CbrSource::new(100.0)));
    let dst = b.node("dst", |_| Box::new(ForwardLogic));
    b.link(src, dst, fast());
    let f = b.flow(
        FlowSpec::new(vec![src, dst], 1)
            .packet_size(40) // ACK-sized
            .active(SimTime::ZERO, None),
    );
    let end = SimTime::from_secs(2);
    let mut net = b.build();
    net.run_until(end);
    let report = net.into_report(end);
    assert!(report.flow(f).delivered_packets >= 195);
    assert_eq!(
        report.flow(f).delivered_bytes,
        report.flow(f).delivered_packets * 40
    );
}
