//! Behavioural tests for the churn subsystem: slot recycling under load,
//! memory bounded by the active set, byte-identical determinism, and the
//! flow-lifecycle staleness guards.

use std::cell::RefCell;
use std::rc::Rc;

use netsim::fault::FaultPlan;
use netsim::flow::FlowSpec;
use netsim::link::LinkSpec;
use netsim::logic::{CbrSource, Ctx, ForwardLogic, RouterLogic};
use netsim::topology::TopologyBuilder;
use netsim::{ChurnSpec, DispatchMode, FlowId};
use sim_core::event::QueueBackend;
use sim_core::time::{SimDuration, SimTime};

fn fast() -> LinkSpec {
    LinkSpec::new(40_000_000, SimDuration::from_millis(5), 400)
}

/// ingress --5ms--> egress with a CBR emitter at the ingress.
fn churn_net(
    spec_rate: f64,
    backend: QueueBackend,
    dispatch: DispatchMode,
) -> (netsim::Network, SimTime) {
    let mut b = TopologyBuilder::new(42);
    b.queue_backend(backend);
    b.dispatch_mode(dispatch);
    let e = b.node("ingress", |_| Box::new(CbrSource::new(200.0)));
    let x = b.node("egress", |_| Box::new(ForwardLogic));
    b.link(e, x, fast());
    b.churn(
        ChurnSpec::new(spec_rate, 10.0, 100.0)
            .route(vec![e, x])
            .weights(vec![1, 2, 4])
            .window(SimTime::ZERO, SimTime::from_secs(5))
            .linger(SimDuration::from_secs(1)),
    );
    (b.build(), SimTime::from_secs(8))
}

#[test]
fn churn_creates_completes_and_retires_flows() {
    let (mut net, end) = churn_net(20.0, QueueBackend::Wheel, DispatchMode::Train);
    net.run_until(end);
    let report = net.into_report(end);
    let churn = report.churn.as_ref().expect("churn report present");
    assert!(churn.arrivals > 50, "arrivals {}", churn.arrivals);
    assert_eq!(
        churn.retired, churn.arrivals,
        "every flow drains before the horizon"
    );
    assert!(
        churn.completed > churn.arrivals / 2,
        "completed {} of {}",
        churn.completed,
        churn.arrivals
    );
    // With a linger covering the 5 ms pipe, no packet ever outlives its
    // slot: the staleness guards must stay silent.
    assert_eq!(churn.stale_events, 0);
    // FCT and settling are sane: settling ≈ one-way delay, FCT bounded
    // by the flow's own duration plus the pipe.
    let settle = churn.settling.mean().expect("settling recorded");
    assert!(settle < 0.1, "mean settling {settle}");
    let fct = churn.mean_fct().expect("fct recorded");
    assert!(fct > settle && fct < 5.0, "mean fct {fct}");
    // Cohort totals reconcile with the global counters.
    let cohort_arrivals: u64 = churn.cohorts.iter().map(|c| c.arrivals).sum();
    let cohort_completed: u64 = churn.cohorts.iter().map(|c| c.completed).sum();
    assert_eq!(cohort_arrivals, churn.arrivals);
    assert_eq!(cohort_completed, churn.completed);
}

#[test]
fn recycled_slots_bound_the_flow_table() {
    let (mut net, end) = churn_net(40.0, QueueBackend::Wheel, DispatchMode::Train);
    net.run_until(end);
    let report = net.into_report(end);
    let churn = report.churn.as_ref().expect("churn report present");
    // ~200 arrivals, each alive ~0.1 s + 1 s linger ⇒ ~45 concurrent
    // slot occupants; the table must not grow with total arrivals.
    assert!(churn.arrivals > 120, "arrivals {}", churn.arrivals);
    assert!(
        churn.peak_slots < (churn.arrivals as usize) / 2,
        "peak_slots {} vs arrivals {}",
        churn.peak_slots,
        churn.arrivals
    );
    assert_eq!(report.flows.len(), churn.peak_slots);
    assert!(churn.peak_active as usize <= churn.peak_slots);
    // The active series returns to zero once the window closes and the
    // last flows drain.
    let (_, last) = churn.active_series.iter().last().expect("series sampled");
    assert_eq!(last, 0.0);
}

/// The acceptance bound: one million arrivals with memory O(active
/// flows). ForwardLogic ingresses emit nothing, so the run is pure
/// lifecycle machinery (~4 M events).
#[test]
fn million_flow_churn_keeps_resident_state_o_active() {
    let mut b = TopologyBuilder::new(7);
    let e = b.node("ingress", |_| Box::new(ForwardLogic));
    let x = b.node("egress", |_| Box::new(ForwardLogic));
    b.link(e, x, fast());
    // The cap, not the window, ends the process: exactly 1 M arrivals
    // (~50 s at 20 k/s), then a generous drain for the Pareto tail.
    b.churn(
        ChurnSpec::new(20_000.0, 10.0, 1_000.0)
            .route(vec![e, x])
            .window(SimTime::ZERO, SimTime::from_secs(200))
            .linger(SimDuration::from_millis(100))
            .max_arrivals(1_000_000),
    );
    let end = SimTime::from_secs(100);
    let mut net = b.build();
    net.run_until(end);
    let report = net.into_report(end);
    let churn = report.churn.as_ref().expect("churn report present");
    assert_eq!(churn.arrivals, 1_000_000);
    assert_eq!(churn.retired, 1_000_000);
    // Slot occupancy ≈ rate × (mean duration 10 ms + linger 100 ms)
    // ≈ 2200 expected; the Pareto tail pushes the peak above that, but
    // the table must stay three orders of magnitude below arrivals.
    assert!(
        churn.peak_slots < 10_000,
        "peak_slots {} is not O(active)",
        churn.peak_slots
    );
    assert_eq!(report.flows.len(), churn.peak_slots);
}

#[test]
fn churn_runs_are_byte_identical_across_backends_and_repeats() {
    let render = |backend, dispatch| {
        let (mut net, end) = churn_net(20.0, backend, dispatch);
        net.run_until(end);
        format!("{:?}", net.into_report(end))
    };
    let baseline = render(QueueBackend::Wheel, DispatchMode::Train);
    assert_eq!(
        baseline,
        render(QueueBackend::Wheel, DispatchMode::Train),
        "repeat run diverged"
    );
    assert_eq!(
        baseline,
        render(QueueBackend::Heap, DispatchMode::Train),
        "heap backend diverged"
    );
    assert_eq!(
        baseline,
        render(QueueBackend::Wheel, DispatchMode::PerPacket),
        "per-packet dispatch diverged"
    );
}

/// Records the lifecycle callbacks its node receives.
#[derive(Debug)]
struct LifecycleRecorder {
    log: Rc<RefCell<Vec<(SimTime, &'static str)>>>,
}

impl RouterLogic for LifecycleRecorder {
    fn on_flow_start(&mut self, ctx: &mut Ctx<'_>, _flow: FlowId) {
        self.log.borrow_mut().push((ctx.now(), "start"));
    }

    fn on_flow_stop(&mut self, ctx: &mut Ctx<'_>, _flow: FlowId) {
        self.log.borrow_mut().push((ctx.now(), "stop"));
    }
}

/// Regression (flow-lifecycle bugfix): a control-plane pause deferring a
/// `FlowStop` to the exact instant a later activation window opens used
/// to deliver the stale stop *after* the new window's start — killing the
/// fresh activation. The dispatcher now drops a stop that lands inside an
/// active window.
#[test]
fn pause_deferred_stop_does_not_kill_a_restart() {
    let log = Rc::new(RefCell::new(Vec::new()));
    let handle = log.clone();
    let mut b = TopologyBuilder::new(5);
    let src = b.node("src", move |_| Box::new(LifecycleRecorder { log: handle }));
    let dst = b.node("dst", |_| Box::new(ForwardLogic));
    b.link(src, dst, fast());
    // Pause the ingress over the first window's stop; the pause ends
    // exactly when the second window starts.
    b.faults(FaultPlan::new().pause(src, SimTime::from_millis(900), SimTime::from_secs(3)));
    b.flow(
        FlowSpec::new(vec![src, dst], 1)
            .active(SimTime::ZERO, Some(SimTime::from_secs(1)))
            .active(SimTime::from_secs(3), Some(SimTime::from_secs(4))),
    );
    let end = SimTime::from_secs(5);
    let mut net = b.build();
    net.run_until(end);
    drop(net);
    let log = log.borrow();
    assert_eq!(
        *log,
        vec![
            (SimTime::ZERO, "start"),
            (SimTime::from_secs(3), "start"),
            (SimTime::from_secs(4), "stop"),
        ],
        "the deferred stop at t=3 must be discarded, not delivered after the restart"
    );
}

/// A start deferred past its own window's end is equally stale.
#[test]
fn pause_deferred_start_outside_its_window_is_dropped() {
    let log = Rc::new(RefCell::new(Vec::new()));
    let handle = log.clone();
    let mut b = TopologyBuilder::new(5);
    let src = b.node("src", move |_| Box::new(LifecycleRecorder { log: handle }));
    let dst = b.node("dst", |_| Box::new(ForwardLogic));
    b.link(src, dst, fast());
    // Pause covers the entire (1 s, 2 s) window: its start slides to
    // t=3, where the flow is no longer scheduled.
    b.faults(FaultPlan::new().pause(src, SimTime::from_millis(500), SimTime::from_secs(3)));
    b.flow(
        FlowSpec::new(vec![src, dst], 1).active(SimTime::from_secs(1), Some(SimTime::from_secs(2))),
    );
    let end = SimTime::from_secs(5);
    let mut net = b.build();
    net.run_until(end);
    drop(net);
    assert!(
        log.borrow().is_empty(),
        "neither lifecycle event may be delivered outside the window: {:?}",
        log.borrow()
    );
}

/// Back-to-back activations (`stop == next start`) are coalesced at spec
/// level, so the engine never sees the ambiguous same-instant pair and
/// traffic flows continuously across the seam.
#[test]
fn back_to_back_activations_never_gap() {
    let mut b = TopologyBuilder::new(9);
    let src = b.node("src", |_| Box::new(CbrSource::new(100.0)));
    let dst = b.node("dst", |_| Box::new(ForwardLogic));
    b.link(src, dst, fast());
    let f = b.flow(
        FlowSpec::new(vec![src, dst], 1)
            .active(SimTime::ZERO, Some(SimTime::from_secs(2)))
            .active(SimTime::from_secs(2), Some(SimTime::from_secs(4))),
    );
    let end = SimTime::from_secs(5);
    let mut net = b.build();
    net.run_until(end);
    let report = net.into_report(end);
    let delivered = report.flow(f).delivered_packets;
    assert!(
        (395..=401).contains(&delivered),
        "delivered {delivered}: the seam at t=2 must not interrupt emission"
    );
}
