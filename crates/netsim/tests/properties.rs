//! Randomized property tests for the link/queue substrate: FIFO order,
//! bounded occupancy, conservation of packets, and serialization timing.

use netsim::ids::{FlowId, NodeId, PacketId};
use netsim::link::{EnqueueOutcome, Link, LinkSpec};
use netsim::packet::Packet;
use sim_core::check;
use sim_core::time::{SimDuration, SimTime};

fn pkt(id: u64, size: u32) -> Packet {
    Packet::data(
        PacketId::from_sequence(id),
        FlowId::from_index(0),
        size,
        SimTime::ZERO,
    )
}

fn spec(capacity: usize) -> LinkSpec {
    LinkSpec::new(8_000_000, SimDuration::from_millis(1), capacity)
}

/// Whatever the arrival pattern: occupancy never exceeds capacity,
/// packets depart in FIFO order, and accepted = departed + queued +
/// dropped at all times.
#[test]
fn queue_invariants_hold() {
    check::cases(64, 0x4E_01, |g| {
        let capacity = g.usize_in(1, 20);
        let ops = g.vec_with(1, 300, |g| (g.bool(), g.u64_in(100, 2000) as u32));
        let mut link = Link::new(NodeId::from_index(0), NodeId::from_index(1), spec(capacity));
        let mut now = SimTime::ZERO;
        let mut next_id = 0u64;
        let mut accepted = 0u64;
        let mut departed = Vec::new();
        let mut dropped = 0u64;
        let mut in_service = false;

        for (enqueue, size) in ops {
            now += SimDuration::from_micros(50);
            if enqueue {
                match link.enqueue(now, pkt(next_id, size)) {
                    EnqueueOutcome::Accepted {
                        starts_transmission,
                    } => {
                        accepted += 1;
                        if starts_transmission.is_some() {
                            assert!(!in_service, "tx started while busy");
                            in_service = true;
                        }
                    }
                    EnqueueOutcome::Dropped(p) => {
                        assert_eq!(p.id.sequence(), next_id);
                        dropped += 1;
                    }
                }
                next_id += 1;
            } else if in_service {
                let (p, next_tx) = link.complete_transmission(now);
                departed.push(p.id.sequence());
                in_service = next_tx.is_some();
            }
            assert!(link.queue_len() <= capacity, "occupancy over capacity");
            assert_eq!(
                accepted,
                departed.len() as u64 + link.queue_len() as u64,
                "packet conservation violated"
            );
            assert_eq!(link.dropped_packets(), dropped);
        }
        // FIFO: departures are the accepted ids in order.
        let mut sorted = departed.clone();
        sorted.sort();
        assert_eq!(departed, sorted, "departures out of order");
    });
}

/// Serialization time is linear in packet size and inversely linear
/// in bandwidth.
#[test]
fn tx_time_scales() {
    check::cases(256, 0x4E_02, |g| {
        let size = g.u64_in(1, 100_000) as u32;
        let bw = g.u64_in(1_000, 1_000_000_000);
        let s = LinkSpec::new(bw, SimDuration::ZERO, 1);
        let t = s.tx_time(size).as_secs_f64();
        let expect = size as f64 * 8.0 / bw as f64;
        // from_nanos truncates below the nanosecond.
        assert!(
            (t - expect).abs() <= 1e-9 + 1e-12 * expect,
            "{t} vs {expect}"
        );
        let double = s.tx_time(size.saturating_mul(2)).as_secs_f64();
        assert!(double >= t * 2.0 - 2e-9);
    });
}

/// The time-weighted queue average is bounded by the peak occupancy.
#[test]
fn queue_average_bounded_by_peak() {
    check::cases(64, 0x4E_03, |g| {
        let arrivals = g.vec_with(1, 100, |g| g.u64_in(1, 5_000));
        let mut link = Link::new(NodeId::from_index(0), NodeId::from_index(1), spec(40));
        let mut now = SimTime::ZERO;
        let mut busy = false;
        for (i, gap) in arrivals.iter().enumerate() {
            now += SimDuration::from_micros(*gap);
            // Alternate arrivals and departures pseudo-randomly.
            if i % 3 == 2 && busy {
                let (_, next) = link.complete_transmission(now);
                busy = next.is_some();
            } else if let EnqueueOutcome::Accepted {
                starts_transmission,
            } = link.enqueue(now, pkt(i as u64, 1000))
            {
                if starts_transmission.is_some() {
                    busy = true;
                }
            }
        }
        let avg = link.queue_average(now + SimDuration::from_millis(1));
        assert!(avg >= 0.0);
        assert!(avg <= link.peak_occupancy() as f64 + 1e-9);
    });
}
