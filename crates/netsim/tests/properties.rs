//! Randomized property tests for the link/queue substrate — FIFO order,
//! bounded occupancy, conservation of packets, serialization timing —
//! and for the slab state plane (`DenseMap` against a `BTreeMap`
//! model).

use std::collections::BTreeMap;

use netsim::ids::{FlowId, NodeId};
use netsim::link::{Link, LinkSpec};
use netsim::slab::DenseMap;
use sim_core::check;
use sim_core::time::{SimDuration, SimTime};

fn spec(capacity: usize) -> LinkSpec {
    LinkSpec::new(8_000_000, SimDuration::from_millis(1), capacity)
}

/// Whatever the arrival pattern: occupancy never exceeds capacity,
/// departures come out in FIFO order along the service curve, and
/// accepted = forwarded + queued + dropped at all times.
#[test]
fn queue_invariants_hold() {
    check::cases(64, 0x4E_01, |g| {
        let capacity = g.usize_in(1, 20);
        let ops = g.vec_with(1, 300, |g| (g.bool(), g.u64_in(100, 2000) as u32));
        let mut link = Link::new(NodeId::from_index(0), NodeId::from_index(1), spec(capacity));
        let mut now = SimTime::ZERO;
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        let mut last_dep = SimTime::ZERO;

        for (enqueue, size) in ops {
            now += SimDuration::from_micros(50);
            if enqueue {
                match link.offer(now, size) {
                    Some(dep) => {
                        accepted += 1;
                        // FIFO service curve: departures are strictly
                        // increasing and never precede the arrival.
                        assert!(dep > last_dep, "departure {dep:?} out of order");
                        assert!(dep > now, "departure before arrival");
                        last_dep = dep;
                    }
                    None => dropped += 1,
                }
            } else {
                // Exercise an accounting checkpoint at a random instant.
                link.sync(now);
            }
            assert!(link.queue_len(now) <= capacity, "occupancy over capacity");
            assert_eq!(
                accepted,
                link.forwarded_packets() + link.queue_len(now) as u64,
                "packet conservation violated (synced part)"
            );
            assert_eq!(link.dropped_packets(), dropped);
        }
        // Drain everything: every accepted packet eventually departs.
        link.sync(last_dep);
        assert_eq!(link.forwarded_packets(), accepted);
        assert_eq!(link.queue_len(last_dep), 0);
    });
}

/// Serialization time is linear in packet size and inversely linear
/// in bandwidth.
#[test]
fn tx_time_scales() {
    check::cases(256, 0x4E_02, |g| {
        let size = g.u64_in(1, 100_000) as u32;
        let bw = g.u64_in(1_000, 1_000_000_000);
        let s = LinkSpec::new(bw, SimDuration::ZERO, 1);
        let t = s.tx_time(size).as_secs_f64();
        let expect = size as f64 * 8.0 / bw as f64;
        // from_nanos truncates below the nanosecond.
        assert!(
            (t - expect).abs() <= 1e-9 + 1e-12 * expect,
            "{t} vs {expect}"
        );
        let double = s.tx_time(size.saturating_mul(2)).as_secs_f64();
        assert!(double >= t * 2.0 - 2e-9);
    });
}

/// Lazy and eager sync schedules produce identical statistics: the
/// departure train carries its own timestamps, so when accounting runs
/// cannot matter.
#[test]
fn sync_schedule_is_unobservable() {
    check::cases(64, 0x4E_04, |g| {
        let capacity = g.usize_in(1, 20);
        let ops = g.vec_with(1, 200, |g| (g.u64_in(1, 5_000), g.u64_in(100, 2000) as u32));
        let mut eager = Link::new(NodeId::from_index(0), NodeId::from_index(1), spec(capacity));
        let mut lazy = Link::new(NodeId::from_index(0), NodeId::from_index(1), spec(capacity));
        let mut now = SimTime::ZERO;
        for (gap, size) in ops {
            now += SimDuration::from_micros(gap);
            assert_eq!(eager.offer(now, size), lazy.offer(now, size));
            eager.sync(now);
        }
        let end = now + SimDuration::from_secs(1);
        assert_eq!(eager.queue_len(end), lazy.queue_len(end));
        assert_eq!(
            eager.take_queue_average(end),
            lazy.take_queue_average(end),
            "occupancy integral depends on sync schedule"
        );
        assert_eq!(eager.forwarded_packets(), lazy.forwarded_packets());
        assert_eq!(eager.forwarded_bytes(), lazy.forwarded_bytes());
        assert_eq!(eager.dropped_packets(), lazy.dropped_packets());
        assert_eq!(eager.peak_occupancy(), lazy.peak_occupancy());
    });
}

/// `DenseMap` is observationally equivalent to the `BTreeMap` it
/// replaced: after any interleaving of inserts, overwrites, removes and
/// clears, lookups, length, iteration order and the `Debug` rendering
/// all match the model exactly.
#[test]
fn dense_map_matches_btreemap_model() {
    check::cases(128, 0x4E_05, |g| {
        let ops = g.vec_with(1, 200, |g| {
            let key = g.usize_in(0, 24);
            match g.u64_in(0, 9) {
                // Insert-or-overwrite dominates; removal and clear are
                // rarer, mirroring real flow churn.
                0..=5 => (0u8, key, g.u64_in(0, 1000)),
                6..=7 => (1, key, 0),
                8 => (2, key, 0),
                _ => (3, key, g.u64_in(0, 1000)),
            }
        });
        let mut dense: DenseMap<FlowId, u64> = DenseMap::new();
        let mut model: BTreeMap<FlowId, u64> = BTreeMap::new();
        for (op, key, value) in ops {
            let key = FlowId::from_index(key);
            match op {
                0 => {
                    assert_eq!(dense.insert(key, value), model.insert(key, value));
                }
                1 => {
                    assert_eq!(dense.remove(&key), model.remove(&key));
                }
                2 => {
                    dense.clear();
                    model.clear();
                }
                _ => {
                    *dense.entry_or_insert_with(key, || value) += 1;
                    *model.entry(key).or_insert(value) += 1;
                }
            }
            assert_eq!(dense.len(), model.len());
            assert_eq!(dense.is_empty(), model.is_empty());
            assert_eq!(dense.get(&key), model.get(&key));
            assert_eq!(dense.contains_key(&key), model.contains_key(&key));
            // Iteration yields the model's ascending key order.
            assert!(dense
                .iter()
                .map(|(k, &v)| (k, v))
                .eq(model.iter().map(|(&k, &v)| (k, v))));
            assert!(dense.keys().eq(model.keys().copied()));
            assert!(dense.values().eq(model.values()));
            // Report rendering byte-matches the map it replaced.
            assert_eq!(format!("{dense:?}"), format!("{model:?}"));
        }
    });
}

/// The time-weighted queue average is bounded by the peak occupancy.
#[test]
fn queue_average_bounded_by_peak() {
    check::cases(64, 0x4E_03, |g| {
        let arrivals = g.vec_with(1, 100, |g| g.u64_in(1, 5_000));
        let mut link = Link::new(NodeId::from_index(0), NodeId::from_index(1), spec(40));
        let mut now = SimTime::ZERO;
        for (i, gap) in arrivals.iter().enumerate() {
            now += SimDuration::from_micros(*gap);
            if i % 3 == 2 {
                link.sync(now);
            } else {
                link.offer(now, 1000);
            }
        }
        let avg = link.queue_average(now + SimDuration::from_millis(1));
        assert!(avg >= 0.0);
        assert!(avg <= link.peak_occupancy() as f64 + 1e-9);
    });
}
