//! Proof that steady-state dispatch performs zero heap allocations.
//!
//! A counting global allocator wraps the system allocator; after a
//! warmup that establishes every one-time capacity (event-queue slots,
//! the ActionBuf spill, link queues, monitor series), continuing the
//! simulation must not allocate at all. This pins the engine's
//! zero-alloc contract (ISSUE 4): the per-forward `vec![Action  ...]`
//! and the per-callback `Vec<Action>` are gone, and a regression
//! reintroducing either fails here, not just in a profiler.
//!
//! This lives in its own integration-test binary so the allocator hook
//! does not interfere with other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use netsim::flow::FlowSpec;
use netsim::link::LinkSpec;
use netsim::logic::{CbrSource, ForwardLogic};
use netsim::topology::TopologyBuilder;
use sim_core::time::{SimDuration, SimTime};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Counts every allocation and reallocation (frees are irrelevant to
/// the steady-state contract).
struct CountingAllocator;

// simlint: allow(hot-alloc) — this file measures allocations.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_dispatch_does_not_allocate() {
    // src --> mid --> dst chain, CBR at 200 pkt/s under a 500 pkt/s
    // link: forwarding, timers and transmissions but no drops. The
    // measurement window is pushed past the horizon so monitors do not
    // roll (window rolls allocate once per window by design).
    let link = LinkSpec::new(4_000_000, SimDuration::from_millis(40), 40);
    let mut b = TopologyBuilder::new(3);
    b.measurement_window(SimDuration::from_secs(10_000));
    let src = b.node("src", |_| Box::new(CbrSource::new(200.0)));
    let mid = b.node("mid", |_| Box::new(ForwardLogic));
    let dst = b.node("dst", |_| Box::new(ForwardLogic));
    b.link(src, mid, link);
    b.link(mid, dst, link);
    let f = b.flow(FlowSpec::new(vec![src, mid, dst], 1).active(SimTime::ZERO, None));
    let mut net = b.build();

    // Warmup: let every lazily-grown capacity reach its steady state.
    // The timer wheel allocates each slot vector on first use, and a
    // near-future event can promote to a *high* wheel level when `now`
    // crosses that level's digit boundary — so every slot of every
    // level gets touched only after one full wheel rotation
    // (2^24 ticks ≈ 2199 simulated seconds). Warm past that.
    net.run_until(SimTime::from_secs(2_300));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    net.run_until(SimTime::from_secs(2_400));
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state dispatch allocated {} times over 100 simulated seconds",
        after - before
    );

    // The run did real work both before and during the measured phase.
    let report = net.into_report(SimTime::from_secs(2_400));
    let fr = report.flow(f);
    assert!(
        fr.delivered_packets > 470_000,
        "delivered {}",
        fr.delivered_packets
    );
    assert_eq!(fr.total_drops(), 0);
}
