//! Proof that steady-state dispatch performs zero heap allocations.
//!
//! A counting global allocator wraps the system allocator; after a
//! warmup that establishes every one-time capacity (event-queue slots,
//! the ActionBuf spill, link queues, monitor series), continuing the
//! simulation must not allocate at all. This pins the engine's
//! zero-alloc contract (ISSUE 4): the per-forward `vec![Action  ...]`
//! and the per-callback `Vec<Action>` are gone, and a regression
//! reintroducing either fails here, not just in a profiler.
//!
//! This lives in its own integration-test binary so the allocator hook
//! does not interfere with other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use netsim::flow::FlowSpec;
use netsim::ids::LinkId;
use netsim::link::LinkSpec;
use netsim::logic::{CbrSource, Ctx, ForwardLogic, RouterLogic, TimerKind};
use netsim::telemetry::{Probe, RingProbe, Sample};
use netsim::topology::TopologyBuilder;
use netsim::FlowId;
use sim_core::time::{SimDuration, SimTime};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The allocation counter is process-global; the two tests must not
/// interleave their measured windows.
static LOCK: Mutex<()> = Mutex::new(());

/// Counts every allocation and reallocation (frees are irrelevant to
/// the steady-state contract).
struct CountingAllocator;

// simlint: allow(hot-alloc) — this file measures allocations.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_dispatch_does_not_allocate() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // src --> mid --> dst chain, CBR at 200 pkt/s under a 500 pkt/s
    // link: forwarding, timers and transmissions but no drops. The
    // measurement window is pushed past the horizon so monitors do not
    // roll (window rolls allocate once per window by design).
    let link = LinkSpec::new(4_000_000, SimDuration::from_millis(40), 40);
    let mut b = TopologyBuilder::new(3);
    b.measurement_window(SimDuration::from_secs(10_000));
    let src = b.node("src", |_| Box::new(CbrSource::new(200.0)));
    let mid = b.node("mid", |_| Box::new(ForwardLogic));
    let dst = b.node("dst", |_| Box::new(ForwardLogic));
    b.link(src, mid, link);
    b.link(mid, dst, link);
    let f = b.flow(FlowSpec::new(vec![src, mid, dst], 1).active(SimTime::ZERO, None));
    let mut net = b.build();

    // Warmup: let every lazily-grown capacity reach its steady state.
    // The timer wheel allocates each slot vector on first use, and a
    // near-future event can promote to a *high* wheel level when `now`
    // crosses that level's digit boundary — so every slot of every
    // level gets touched only after one full wheel rotation
    // (2^24 ticks ≈ 2199 simulated seconds). Warm past that.
    net.run_until(SimTime::from_secs(2_300));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    net.run_until(SimTime::from_secs(2_400));
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state dispatch allocated {} times over 100 simulated seconds",
        after - before
    );

    // The run did real work both before and during the measured phase.
    let report = net.into_report(SimTime::from_secs(2_400));
    let fr = report.flow(f);
    assert!(
        fr.delivered_packets > 470_000,
        "delivered {}",
        fr.delivered_packets
    );
    assert_eq!(fr.total_drops(), 0);
}

const TIMER_SCAN: u32 = 9;

/// A forwarding logic that keeps slab-backed per-flow and per-link
/// state on the packet path — one `DenseMap` counter bumped per packet
/// plus an epoch-grained `key_bound` index scan, the access pattern the
/// corelite gateway/aggregate logics use after the flat-state
/// refactor.
struct SlabCountingForward {
    per_flow: netsim::slab::DenseMap<FlowId, u64>,
    per_link: netsim::slab::DenseMap<LinkId, u64>,
    scanned: u64,
}

impl RouterLogic for SlabCountingForward {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(100), TimerKind::tagged(TIMER_SCAN));
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: netsim::packet::Packet) {
        let Some(link) = ctx.next_hop(packet.flow) else {
            return;
        };
        *self.per_flow.entry_or_insert_with(packet.flow, || 0) += 1;
        *self.per_link.entry_or_insert_with(link, || 0) += 1;
        ctx.forward(link, packet);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
        // Allocation-free iteration: index scan over the slab's key
        // bound, skipping empty slots.
        for i in 0..self.per_flow.key_bound() {
            let flow = FlowId::from_index(i);
            if self.per_flow.get(&flow).is_some() {
                self.scanned += 1;
            }
        }
        ctx.set_timer(SimDuration::from_millis(100), timer);
    }
}

#[test]
fn slab_backed_dispatch_does_not_allocate() {
    // Same chain, but the mid node now updates DenseMap-held per-flow
    // and per-link state on every packet and walks the slab each epoch:
    // the state plane introduced by the flat-state refactor must be as
    // allocation-free in steady state as the event plane (slots are
    // grown once at first insert, then reused forever).
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let link = LinkSpec::new(4_000_000, SimDuration::from_millis(40), 40);
    let mut b = TopologyBuilder::new(3);
    b.measurement_window(SimDuration::from_secs(10_000));
    let src = b.node("src", |_| Box::new(CbrSource::new(200.0)));
    let mid = b.node("mid", |_| {
        Box::new(SlabCountingForward {
            per_flow: netsim::slab::DenseMap::new(),
            per_link: netsim::slab::DenseMap::new(),
            scanned: 0,
        })
    });
    let dst = b.node("dst", |_| Box::new(ForwardLogic));
    b.link(src, mid, link);
    b.link(mid, dst, link);
    let f = b.flow(FlowSpec::new(vec![src, mid, dst], 1).active(SimTime::ZERO, None));
    let mut net = b.build();

    // Warm past one full timer-wheel rotation, as above.
    net.run_until(SimTime::from_secs(2_300));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    net.run_until(SimTime::from_secs(2_400));
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "slab-backed dispatch allocated {} times over 100 simulated seconds",
        after - before
    );

    let report = net.into_report(SimTime::from_secs(2_400));
    assert!(report.flow(f).delivered_packets > 470_000);
}

const TIMER_TELEMETRY: u32 = 7;

/// A forwarding logic that publishes telemetry samples on a 100 ms
/// clock — the epoch-grained cadence the Corelite/CSFQ hooks use.
struct PublishingForward;

impl RouterLogic for PublishingForward {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(
            SimDuration::from_millis(100),
            TimerKind::tagged(TIMER_TELEMETRY),
        );
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
        ctx.publish(Sample::scalar("tick", 1.0));
        ctx.publish(Sample::for_flow("b_g", FlowId::from_index(0), 42.0));
        ctx.publish(Sample::for_link("q_avg", LinkId::from_index(1), 0.5));
        ctx.set_timer(SimDuration::from_millis(100), timer);
    }
}

#[test]
fn telemetry_publishing_does_not_allocate() {
    // Same chain as above, but the mid node publishes three samples per
    // 100 ms epoch into a RingProbe that wraps long before the measured
    // window: the telemetry hot path — `Ctx::publish` through
    // `RingProbe::record`, including the overwrite-oldest branch — must
    // be as allocation-free as dispatch itself (ISSUE 5).
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let probe = Rc::new(RefCell::new(RingProbe::with_capacity(1024)));
    let link = LinkSpec::new(4_000_000, SimDuration::from_millis(40), 40);
    let mut b = TopologyBuilder::new(3);
    b.measurement_window(SimDuration::from_secs(10_000));
    b.probe(probe.clone() as Rc<RefCell<dyn Probe>>);
    let src = b.node("src", |_| Box::new(CbrSource::new(200.0)));
    let mid = b.node("mid", |_| Box::new(PublishingForward));
    let dst = b.node("dst", |_| Box::new(ForwardLogic));
    b.link(src, mid, link);
    b.link(mid, dst, link);
    b.flow(FlowSpec::new(vec![src, mid, dst], 1).active(SimTime::ZERO, None));
    let mut net = b.build();

    // Warm past one full timer-wheel rotation, as above; by then the
    // ring has wrapped thousands of times.
    net.run_until(SimTime::from_secs(2_300));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    net.run_until(SimTime::from_secs(2_400));
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "telemetry-enabled dispatch allocated {} times over 100 simulated seconds",
        after - before
    );

    // The probe really was recording the whole time.
    let p = probe.borrow();
    assert_eq!(p.len(), 1024, "ring should be full");
    assert!(
        p.dropped() > 10_000,
        "ring should have wrapped: {}",
        p.dropped()
    );
    assert!(p.iter().any(|r| r.sample.name == "b_g"));
}
