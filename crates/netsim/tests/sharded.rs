//! Engine-level tests of the sharded executor: the merged trace stream
//! must reproduce the serial tracer's event sequence byte for byte, and
//! the merged report must match the serial report on a topology built
//! directly from netsim primitives (no scenarios layer involved).

use std::cell::RefCell;
use std::rc::Rc;

use netsim::flow::FlowSpec;
use netsim::link::LinkSpec;
use netsim::logic::{ForwardLogic, PoissonSource};
use netsim::shard::run_sharded;
use netsim::topology::TopologyBuilder;
use netsim::trace::{TraceEvent, Tracer};
use sim_core::time::{SimDuration, SimTime};

/// Collects every trace record in arrival order.
#[derive(Debug, Default)]
struct VecTracer {
    log: Vec<(SimTime, TraceEvent)>,
}

impl Tracer for VecTracer {
    fn record(&mut self, now: SimTime, event: &TraceEvent) {
        self.log.push((now, *event));
    }
}

/// A three-hop chain with two competing Poisson flows through a tight
/// middle link — enough contention for enqueues, drops and deliveries
/// to all appear in the trace.
fn chain() -> TopologyBuilder {
    let mut b = TopologyBuilder::new(42);
    let a = b.node("a", |seed| Box::new(PoissonSource::new(seed, 400.0)));
    let m = b.node("m", |_| Box::new(ForwardLogic));
    let z = b.node("z", |_| Box::new(ForwardLogic));
    b.link(
        a,
        m,
        LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40),
    );
    b.link(
        m,
        z,
        LinkSpec::new(1_000_000, SimDuration::from_millis(10), 10),
    );
    b.flow(FlowSpec::new(vec![a, m, z], 1).active(SimTime::ZERO, None));
    b.flow(FlowSpec::new(vec![a, m, z], 2).active(SimTime::ZERO, None));
    b
}

#[test]
fn sharded_trace_log_matches_serial_tracer() {
    let end = SimTime::from_secs(5);

    let tracer = Rc::new(RefCell::new(VecTracer::default()));
    let mut b = chain();
    b.tracer(tracer.clone());
    let mut net = b.build();
    net.run_until(end);
    let serial_report = net.into_report(end);
    let serial_log = std::mem::take(&mut tracer.borrow_mut().log);
    assert!(!serial_log.is_empty(), "serial tracer recorded nothing");

    for shards in [2usize, 3] {
        let outcome = run_sharded(chain, shards, end, false, true);
        assert_eq!(
            serial_log, outcome.trace_log,
            "trace stream diverged at {shards} shards"
        );
        assert_eq!(
            format!("{serial_report:?}"),
            format!("{:?}", outcome.report),
            "report diverged at {shards} shards"
        );
    }
}
