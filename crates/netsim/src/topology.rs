//! Declarative network construction.

use sim_core::event::QueueBackend;
use sim_core::time::SimDuration;

use crate::churn::{ChurnSpec, ChurnState, ResolvedRoute};
use crate::fault::{FaultPlan, FaultState};
use crate::flow::{FlowInfo, FlowSpec};
use crate::ids::{FlowId, LinkId, NodeId};
use crate::link::{Link, LinkSpec};
use crate::logic::RouterLogic;
use crate::network::{DispatchMode, ExecRole, Network, ShardView};
use crate::telemetry::Probe;
use crate::trace::Tracer;

use std::cell::RefCell;
use std::rc::Rc;

/// Builds a [`Network`] from nodes, links and flows.
///
/// # Example
///
/// ```
/// use netsim::flow::FlowSpec;
/// use netsim::link::LinkSpec;
/// use netsim::logic::ForwardLogic;
/// use netsim::topology::TopologyBuilder;
/// use sim_core::time::{SimDuration, SimTime};
///
/// let mut b = TopologyBuilder::new(1);
/// let a = b.node("a", |_| Box::new(ForwardLogic));
/// let c = b.node("c", |_| Box::new(ForwardLogic));
/// b.link(a, c, LinkSpec::new(4_000_000, SimDuration::from_millis(40), 40));
/// b.flow(FlowSpec::new(vec![a, c], 2).active(SimTime::ZERO, None));
/// let net = b.build();
/// assert_eq!(net.flows().len(), 1);
/// ```
pub struct TopologyBuilder {
    seed: u64,
    names: Vec<String>,
    logics: Vec<Box<dyn RouterLogic>>,
    links: Vec<Link>,
    flow_specs: Vec<FlowSpec>,
    window: SimDuration,
    notify_losses: bool,
    tracer: Option<Rc<RefCell<dyn Tracer>>>,
    probe: Option<Rc<RefCell<dyn Probe>>>,
    faults: FaultPlan,
    churn: Option<ChurnSpec>,
    queue_backend: QueueBackend,
    dispatch: DispatchMode,
    shard_view: Option<ShardView>,
}

impl TopologyBuilder {
    /// Creates a builder; `seed` is the experiment seed from which every
    /// component's random stream is derived.
    pub fn new(seed: u64) -> Self {
        TopologyBuilder {
            seed,
            names: Vec::new(),
            logics: Vec::new(),
            links: Vec::new(),
            flow_specs: Vec::new(),
            window: SimDuration::from_secs(1),
            notify_losses: true,
            tracer: None,
            probe: None,
            faults: FaultPlan::default(),
            churn: None,
            queue_backend: QueueBackend::Wheel,
            dispatch: DispatchMode::Train,
            shard_view: None,
        }
    }

    /// Restricts the built network to one shard of a partitioned run
    /// (see [`crate::shard`]); the full topology is still constructed,
    /// but only the view's nodes execute.
    pub(crate) fn shard_view(&mut self, view: ShardView) -> &mut Self {
        self.shard_view = Some(view);
        self
    }

    /// The `(src, dst, delay)` of every link plus the node count — the
    /// inputs the shard partitioner needs, exposed without building.
    pub(crate) fn partition_inputs(&self) -> (usize, Vec<(u32, u32, SimDuration)>) {
        let links = self
            .links
            .iter()
            .map(|l| {
                (
                    l.src().index() as u32,
                    l.dst().index() as u32,
                    l.spec().delay,
                )
            })
            .collect();
        (self.names.len(), links)
    }

    /// Adds a node. `factory` receives a seed derived deterministically
    /// from the experiment seed and the node index, and returns the node's
    /// router logic.
    pub fn node(
        &mut self,
        name: &str,
        factory: impl FnOnce(u64) -> Box<dyn RouterLogic>,
    ) -> NodeId {
        let id = NodeId::from_index(self.names.len());
        // Mix the node index into the experiment seed; DetRng whitens
        // further, so a simple affine mix suffices here.
        let component_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id.index() as u64 + 1);
        self.names.push(name.to_owned());
        self.logics.push(factory(component_seed));
        id
    }

    /// Adds a directed link from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either node does not exist.
    pub fn link(&mut self, src: NodeId, dst: NodeId, spec: LinkSpec) -> LinkId {
        assert!(src.index() < self.names.len(), "unknown src node {src}");
        assert!(dst.index() < self.names.len(), "unknown dst node {dst}");
        assert_ne!(src, dst, "self-links are not allowed");
        let id = LinkId::from_index(self.links.len());
        self.links.push(Link::new(src, dst, spec));
        id
    }

    /// Adds a pair of directed links between `a` and `b` with identical
    /// parameters.
    pub fn duplex_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        (self.link(a, b, spec), self.link(b, a, spec))
    }

    /// Adds a flow.
    ///
    /// # Panics
    ///
    /// Panics if the flow's path revisits a node. [`FlowInfo`] keeps one
    /// next-hop entry per node, so a looping path would silently forward
    /// out of whichever hop was written last — reject it here, where the
    /// offending spec is still identifiable.
    pub fn flow(&mut self, spec: FlowSpec) -> FlowId {
        let id = FlowId::from_index(self.flow_specs.len());
        reject_node_revisit(&spec.path, &format!("flow {id}"));
        self.flow_specs.push(spec);
        id
    }

    /// Sets the measurement window for goodput/cumulative series
    /// (default 1 s, matching the paper's plots).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn measurement_window(&mut self, window: SimDuration) -> &mut Self {
        assert!(!window.is_zero(), "measurement window must be positive");
        self.window = window;
        self
    }

    /// Enables or disables loss notifications to the ingress edge
    /// (default enabled; CSFQ sources need them, Corelite ignores them).
    pub fn notify_losses(&mut self, enabled: bool) -> &mut Self {
        self.notify_losses = enabled;
        self
    }

    /// Installs a packet-level event tracer (see [`crate::trace`]). Keep
    /// a clone of the `Rc` to inspect the tracer after the run.
    pub fn tracer(&mut self, tracer: Rc<RefCell<dyn Tracer>>) -> &mut Self {
        self.tracer = Some(tracer);
        self
    }

    /// Installs a control-plane telemetry probe (see
    /// [`crate::telemetry`]). Keep a clone of the `Rc` to inspect the
    /// collected samples after the run.
    pub fn probe(&mut self, probe: Rc<RefCell<dyn Probe>>) -> &mut Self {
        self.probe = Some(probe);
        self
    }

    /// Selects the event-queue backend (default: the timer wheel). The
    /// heap backend is kept for differential testing; both deliver
    /// events in exactly the same order, so simulation results are
    /// byte-identical across backends.
    pub fn queue_backend(&mut self, backend: QueueBackend) -> &mut Self {
        self.queue_backend = backend;
        self
    }

    /// Selects the link dispatch mode (default: train batching). The
    /// per-packet mode is kept for differential testing; both modes
    /// produce byte-identical simulation results.
    pub fn dispatch_mode(&mut self, mode: DispatchMode) -> &mut Self {
        self.dispatch = mode;
        self
    }

    /// Installs a dynamic flow-churn process (see [`crate::churn`]): the
    /// built network creates and retires flows at runtime, recycling
    /// flow-table slots under generation-counted ids. The churn routes
    /// are resolved against the topology at build time; its random
    /// streams derive from the experiment seed under dedicated labels.
    pub fn churn(&mut self, spec: ChurnSpec) -> &mut Self {
        spec.validate();
        self.churn = Some(spec);
        self
    }

    /// Installs a fault-injection plan (see [`crate::fault`]). The plan's
    /// random streams are derived from the experiment seed under
    /// dedicated labels, so installing faults never perturbs the draws of
    /// other components.
    pub fn faults(&mut self, plan: FaultPlan) -> &mut Self {
        self.faults = plan;
        self
    }

    /// Resolves paths and produces a runnable [`Network`].
    ///
    /// # Panics
    ///
    /// Panics if a flow path references a missing node or an unconnected
    /// node pair.
    pub fn build(self) -> Network {
        let TopologyBuilder {
            seed,
            names,
            logics,
            links,
            flow_specs,
            window,
            notify_losses,
            tracer,
            probe,
            faults,
            churn,
            queue_backend,
            dispatch,
            shard_view,
        } = self;
        let faults = if faults.is_empty() {
            None
        } else {
            Some(FaultState::new(faults, seed, names.len(), links.len()))
        };

        let flows: Vec<FlowInfo> = flow_specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let id = FlowId::from_index(i);
                for &n in &spec.path {
                    assert!(
                        n.index() < names.len(),
                        "flow {id} references unknown node {n}"
                    );
                }
                let hops: Vec<LinkId> = spec
                    .path
                    .windows(2)
                    .map(|pair| {
                        links
                            .iter()
                            .position(|l| l.src() == pair[0] && l.dst() == pair[1])
                            .map(LinkId::from_index)
                            .unwrap_or_else(|| {
                                panic!(
                                    "flow {id}: no link from {} ({}) to {} ({})",
                                    pair[0],
                                    names[pair[0].index()],
                                    pair[1],
                                    names[pair[1].index()]
                                )
                            })
                    })
                    .collect();
                FlowInfo::new(
                    id,
                    spec.weight,
                    spec.packet_size,
                    spec.min_rate,
                    spec.path,
                    hops,
                    spec.activations,
                )
                .with_transport(spec.transport)
            })
            .collect();

        // reverse_delays[f][i] = propagation delay from path[i] back to the
        // ingress (sum of the delays of hops 0..i).
        let reverse_delays: Vec<Vec<SimDuration>> = flows
            .iter()
            .map(|f| {
                let mut acc = SimDuration::ZERO;
                let mut v = Vec::with_capacity(f.path.len());
                v.push(SimDuration::ZERO);
                for &hop in &f.hops {
                    acc += links[hop.index()].spec().delay;
                    v.push(acc);
                }
                v
            })
            .collect();

        // Resolve churn route templates against the topology the same
        // way flow paths are resolved, precomputing the per-route
        // reverse-delay prefix sums reused by every arrival on the route.
        let churn = churn.map(|spec| {
            let routes: Vec<ResolvedRoute> = spec
                .routes
                .iter()
                .map(|path| {
                    reject_node_revisit(path, "churn route");
                    for &n in path {
                        assert!(
                            n.index() < names.len(),
                            "churn route references unknown node {n}"
                        );
                    }
                    let hops: Vec<LinkId> = path
                        .windows(2)
                        .map(|pair| {
                            links
                                .iter()
                                .position(|l| l.src() == pair[0] && l.dst() == pair[1])
                                .map(LinkId::from_index)
                                .unwrap_or_else(|| {
                                    panic!(
                                        "churn route: no link from {} ({}) to {} ({})",
                                        pair[0],
                                        names[pair[0].index()],
                                        pair[1],
                                        names[pair[1].index()]
                                    )
                                })
                        })
                        .collect();
                    let mut acc = SimDuration::ZERO;
                    let mut rds = Vec::with_capacity(path.len());
                    rds.push(SimDuration::ZERO);
                    for &hop in &hops {
                        acc += links[hop.index()].spec().delay;
                        rds.push(acc);
                    }
                    ResolvedRoute {
                        path: path.clone(),
                        hops,
                        reverse_delays: rds,
                    }
                })
                .collect();
            // Sharded runs defer completion metrics into a log replayed in
            // canonical order at merge time (see `ChurnState::retire`).
            ChurnState::new(
                spec,
                routes,
                seed,
                window,
                flows.len(),
                shard_view.is_some(),
            )
        });

        Network::assemble(
            names,
            logics,
            links,
            flows,
            reverse_delays,
            window,
            notify_losses,
            tracer,
            probe,
            faults,
            churn,
            queue_backend,
            dispatch,
            match shard_view {
                Some(view) => ExecRole::Shard(view),
                None => ExecRole::Whole,
            },
        )
    }
}

/// Rejects paths that visit any node twice. The per-node `next_hops`
/// table in [`FlowInfo`] is single-valued, so a revisiting path cannot
/// be represented — before this check it was accepted and forwarded out
/// of the *last* hop written for the node, a silent mis-route.
fn reject_node_revisit(path: &[NodeId], what: &str) {
    for (i, &node) in path.iter().enumerate() {
        if let Some(first) = path[..i].iter().position(|&p| p == node) {
            panic!(
                "{what}: path revisits node {node} (positions {first} and {i}); \
                 per-node forwarding state cannot represent looping paths"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::ForwardLogic;
    use sim_core::time::SimTime;

    fn spec() -> LinkSpec {
        LinkSpec::new(4_000_000, SimDuration::from_millis(40), 40)
    }

    #[test]
    fn build_resolves_hops_and_reverse_delays() {
        let mut b = TopologyBuilder::new(0);
        let a = b.node("a", |_| Box::new(ForwardLogic));
        let c = b.node("c", |_| Box::new(ForwardLogic));
        let d = b.node("d", |_| Box::new(ForwardLogic));
        let l0 = b.link(a, c, spec());
        let l1 = b.link(c, d, spec());
        let f = b.flow(FlowSpec::new(vec![a, c, d], 1).active(SimTime::ZERO, None));
        let net = b.build();
        assert_eq!(net.flows()[f.index()].hops, vec![l0, l1]);
        assert_eq!(net.reverse_delay(f, d), SimDuration::from_millis(80));
        assert_eq!(net.reverse_delay(f, c), SimDuration::from_millis(40));
        assert_eq!(net.reverse_delay(f, a), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "no link from")]
    fn unconnected_path_panics() {
        let mut b = TopologyBuilder::new(0);
        let a = b.node("a", |_| Box::new(ForwardLogic));
        let c = b.node("c", |_| Box::new(ForwardLogic));
        b.flow(FlowSpec::new(vec![a, c], 1));
        b.build();
    }

    #[test]
    #[should_panic(expected = "revisits node")]
    fn looping_path_rejected() {
        // Regression: a-c-d-c-e used to build silently, with node c's
        // single next-hop entry overwritten to the c→e hop, so packets
        // skipped d's second visit and took the wrong link.
        let mut b = TopologyBuilder::new(0);
        let a = b.node("a", |_| Box::new(ForwardLogic));
        let c = b.node("c", |_| Box::new(ForwardLogic));
        let d = b.node("d", |_| Box::new(ForwardLogic));
        let e = b.node("e", |_| Box::new(ForwardLogic));
        b.link(a, c, spec());
        b.link(c, d, spec());
        b.link(d, c, spec());
        b.link(c, e, spec());
        b.flow(FlowSpec::new(vec![a, c, d, c, e], 1).active(SimTime::ZERO, None));
    }

    #[test]
    #[should_panic(expected = "revisits node")]
    fn looping_churn_route_rejected() {
        use crate::churn::ChurnSpec;
        let mut b = TopologyBuilder::new(0);
        let a = b.node("a", |_| Box::new(ForwardLogic));
        let c = b.node("c", |_| Box::new(ForwardLogic));
        b.duplex_link(a, c, spec());
        b.churn(
            ChurnSpec::new(1.0, 10.0, 100.0)
                .route(vec![a, c, a])
                .window(SimTime::ZERO, SimTime::from_secs(1)),
        );
        b.build();
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut b = TopologyBuilder::new(0);
        let a = b.node("a", |_| Box::new(ForwardLogic));
        b.link(a, a, spec());
    }

    #[test]
    fn duplex_creates_both_directions() {
        let mut b = TopologyBuilder::new(0);
        let a = b.node("a", |_| Box::new(ForwardLogic));
        let c = b.node("c", |_| Box::new(ForwardLogic));
        let (ac, ca) = b.duplex_link(a, c, spec());
        assert_ne!(ac, ca);
    }

    #[test]
    fn node_seeds_differ_per_node() {
        let mut seeds = Vec::new();
        let mut b = TopologyBuilder::new(7);
        b.node("a", |s| {
            seeds.push(s);
            Box::new(ForwardLogic)
        });
        b.node("b", |s| {
            seeds.push(s);
            Box::new(ForwardLogic)
        });
        assert_ne!(seeds[0], seeds[1]);
    }
}
