//! Closed-loop transports: a pluggable congestion-control trait and an
//! ack-clocked go-back-N sender.
//!
//! The paper's evaluation drives every flow open loop: the ingress edge
//! shapes a backlogged source to the allowed rate `b_g` and packets are
//! simply counted at the egress. This module adds the other half of a
//! real deployment — senders that are *clocked by acknowledgements*:
//!
//! * [`CongestionControl`] — the window-adaptation strategy, decoupled
//!   from reliability. Implementations here: [`Reno`] (slow start +
//!   AIMD) and [`WindowLimd`] (the paper's weight-proportional LIMD
//!   recast as a window rule). The `corelite` crate adapts its
//!   `RateController` to this trait so ack-clocked flows participate in
//!   marker-feedback fairness.
//! * [`GbnSender`] — a cumulative-ack go-back-N sender installed as
//!   [`RouterLogic`] on the ingress node. It emits sequenced packets
//!   ([`Packet::seq`](crate::packet::Packet::seq)), which the engine's
//!   egress ack sink acknowledges cumulatively along the reverse path
//!   (`ControlMsg::Ack`); the sender maintains SRTT/RTTVAR
//!   ([`RttEstimator`]), retransmits the outstanding window on RTO or
//!   triple duplicate ack, and re-pumps whenever the window opens.
//!
//! Everything here is deterministic by construction: the sender holds no
//! RNG, every state transition is driven by an engine event (ack
//! control message, timer, lifecycle), and timers use the epoch-guarded
//! chain idiom so recycled flow slots never inherit a predecessor's
//! clock.

use std::collections::VecDeque;

use sim_core::stats::TimeSeries;
use sim_core::time::{SimDuration, SimTime};

use crate::flow::{FlowInfo, Transport};
use crate::ids::FlowId;
use crate::logic::{ControlMsg, Ctx, LogicReport, RouterLogic, TimerKind};
use crate::packet::Marker;
use crate::slab::DenseMap;
use crate::telemetry::Sample;

/// Timer tag for the go-back-N retransmission timeout chain. High,
/// distinctive values so a mux hosting this sender next to another logic
/// (e.g. a Corelite edge, whose tags are small integers) can route by tag
/// without collisions.
pub const TIMER_GBN_RTO: u32 = 0x4742_4e01;
/// Timer tag for the congestion-control epoch tick chain.
pub const TIMER_GBN_TICK: u32 = 0x4742_4e02;

/// Jacobson/Karels round-trip estimation with Karn-compatible sampling
/// and exponential RTO backoff.
///
/// The caller is responsible for Karn's rule: samples must only be fed
/// for segments that were *not* retransmitted (the egress echoes the
/// retransmit flag in each ack precisely so the sender can tell).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: f64,
    rttvar: f64,
    rto: f64,
    min_rto: f64,
    max_rto: f64,
}

impl RttEstimator {
    /// Seeds the estimator from the path's base (propagation-only) RTT.
    pub fn new(base_rtt: f64, min_rto: f64, max_rto: f64) -> Self {
        let srtt = base_rtt.max(1e-6);
        let rttvar = srtt / 2.0;
        RttEstimator {
            srtt,
            rttvar,
            rto: (srtt + 4.0 * rttvar).clamp(min_rto, max_rto),
            min_rto,
            max_rto,
        }
    }

    /// Feeds one round-trip sample (seconds): `rttvar ← ¾·rttvar +
    /// ¼·|srtt − s|`, `srtt ← ⅞·srtt + ⅛·s`, `rto = srtt + 4·rttvar`
    /// (clamped). Also clears any accumulated backoff.
    pub fn on_sample(&mut self, sample: f64) {
        let s = sample.max(1e-9);
        self.rttvar = 0.75 * self.rttvar + 0.25 * (self.srtt - s).abs();
        self.srtt = 0.875 * self.srtt + 0.125 * s;
        self.rto = (self.srtt + 4.0 * self.rttvar).clamp(self.min_rto, self.max_rto);
    }

    /// Doubles the RTO after a timeout (capped at the configured max).
    pub fn backoff(&mut self) {
        self.rto = (self.rto * 2.0).min(self.max_rto);
    }

    /// The smoothed round-trip estimate, seconds.
    pub fn srtt(&self) -> f64 {
        self.srtt
    }

    /// The current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.rto)
    }
}

/// A window-based congestion-control strategy, decoupled from the
/// reliability machinery that hosts it.
///
/// The [`GbnSender`] owns reliability (sequencing, acks, retransmission,
/// the RTT estimator) and calls into this trait at the obvious points;
/// the implementation owns only the window. Signals are already
/// deduplicated by the sender (at most one per round trip, via the
/// recovery guard), so implementations may react to every `on_signal`
/// unconditionally.
pub trait CongestionControl: std::fmt::Debug {
    /// The flow (re)started; `base_rtt` is the path's propagation-only
    /// round trip in seconds.
    fn on_start(&mut self, now: SimTime, base_rtt: f64);
    /// `newly_acked` packets were cumulatively acknowledged; `srtt` is
    /// the sender's current smoothed round-trip estimate.
    fn on_ack(&mut self, now: SimTime, newly_acked: u64, srtt: f64);
    /// A congestion signal: Corelite marker feedback or a triple
    /// duplicate ack. At most one per round trip reaches this method.
    fn on_signal(&mut self, now: SimTime);
    /// The retransmission timer expired with the window outstanding.
    fn on_rto(&mut self, now: SimTime);
    /// Periodic adaptation tick (for epoch-driven schemes; per-ack
    /// schemes can ignore it).
    fn on_epoch(&mut self, now: SimTime);
    /// The current congestion window, packets (the sender floors it at
    /// one).
    fn window(&self) -> f64;
    /// The current send-rate estimate, packets per second (window over
    /// the round trip; carried in Corelite markers as the normalized
    /// rate numerator).
    fn rate(&self) -> f64;
}

/// Reno-style AIMD: slow start doubling per round trip, `+1/cwnd` per
/// ack in congestion avoidance, halving on a signal, collapse to one
/// packet on RTO.
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
    rtt: f64,
}

impl Reno {
    /// A fresh Reno controller (initial window of two packets, no
    /// slow-start ceiling until the first signal).
    pub fn new() -> Self {
        Reno {
            cwnd: 2.0,
            ssthresh: f64::INFINITY,
            rtt: 1e-3,
        }
    }
}

impl Default for Reno {
    fn default() -> Self {
        Reno::new()
    }
}

impl CongestionControl for Reno {
    fn on_start(&mut self, _now: SimTime, base_rtt: f64) {
        self.cwnd = 2.0;
        self.ssthresh = f64::INFINITY;
        self.rtt = base_rtt.max(1e-6);
    }

    fn on_ack(&mut self, _now: SimTime, newly_acked: u64, srtt: f64) {
        self.rtt = srtt.max(1e-6);
        let n = newly_acked as f64;
        if self.cwnd < self.ssthresh {
            // Slow start: one packet per acked packet ⇒ doubling per RTT.
            self.cwnd += n;
        } else {
            // Congestion avoidance: +1 packet per window per RTT.
            self.cwnd += n / self.cwnd;
        }
    }

    fn on_signal(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(1.0);
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(1.0);
        self.cwnd = 1.0;
    }

    fn on_epoch(&mut self, _now: SimTime) {}

    fn window(&self) -> f64 {
        self.cwnd.max(1.0)
    }

    fn rate(&self) -> f64 {
        self.cwnd.max(1.0) / self.rtt
    }
}

/// The paper's LIMD recast as a window rule: the window grows by
/// `alpha · w` packets per epoch while no signal arrived that epoch, and
/// halves on a signal — so in steady state a flow's window (and with
/// equal round trips, its rate) is proportional to its weight `w`, the
/// same fixed point the open-loop Corelite controller converges to.
#[derive(Debug, Clone)]
pub struct WindowLimd {
    weight: u32,
    alpha: f64,
    cwnd: f64,
    rtt: f64,
    signalled: bool,
}

impl WindowLimd {
    /// A window-LIMD controller for a flow of the given `weight`;
    /// `alpha` is the per-epoch additive increase per unit weight, in
    /// packets.
    pub fn new(weight: u32, alpha: f64) -> Self {
        WindowLimd {
            weight: weight.max(1),
            alpha,
            cwnd: 1.0,
            rtt: 1e-3,
            signalled: false,
        }
    }
}

impl CongestionControl for WindowLimd {
    fn on_start(&mut self, _now: SimTime, base_rtt: f64) {
        self.cwnd = self.weight as f64;
        self.rtt = base_rtt.max(1e-6);
        self.signalled = false;
    }

    fn on_ack(&mut self, _now: SimTime, _newly_acked: u64, srtt: f64) {
        self.rtt = srtt.max(1e-6);
    }

    fn on_signal(&mut self, _now: SimTime) {
        self.cwnd = (self.cwnd / 2.0).max(1.0);
        self.signalled = true;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.cwnd = 1.0;
        self.signalled = true;
    }

    fn on_epoch(&mut self, _now: SimTime) {
        if !self.signalled {
            self.cwnd += self.alpha * self.weight as f64;
        }
        self.signalled = false;
    }

    fn window(&self) -> f64 {
        self.cwnd.max(1.0)
    }

    fn rate(&self) -> f64 {
        self.cwnd.max(1.0) / self.rtt
    }
}

/// Configuration for the [`GbnSender`].
#[derive(Debug, Clone)]
pub struct GbnConfig {
    /// Congestion-control epoch tick interval (drives
    /// [`CongestionControl::on_epoch`]).
    pub epoch: SimDuration,
    /// Lower RTO clamp.
    pub min_rto: SimDuration,
    /// Upper RTO clamp (backoff ceiling).
    pub max_rto: SimDuration,
    /// Corelite marker cadence `K1`: when `Some`, every `K1·w`-th
    /// first-transmission packet of a weight-`w` flow carries a marker
    /// with the flow's normalized rate `rate/w`. `None` disables
    /// marking (plain best-effort go-back-N).
    pub marker_spacing: Option<u32>,
    /// Duplicate-ack count that triggers a fast retransmit.
    pub dupack_threshold: u32,
    /// Hard cap on the outstanding window, packets.
    pub max_window: u32,
}

impl Default for GbnConfig {
    fn default() -> Self {
        GbnConfig {
            epoch: SimDuration::from_millis(100),
            min_rto: SimDuration::from_millis(50),
            max_rto: SimDuration::from_secs(10),
            marker_spacing: None,
            dupack_threshold: 3,
            max_window: 1 << 14,
        }
    }
}

/// Builds a congestion controller for a starting flow: the sender calls
/// it with the flow's resolved info and base RTT, and the factory picks
/// the strategy (typically off [`FlowInfo::transport`]).
pub type CcFactory = Box<dyn Fn(&FlowInfo, f64) -> Box<dyn CongestionControl>>;

/// Per-flow go-back-N sender state.
#[derive(Debug)]
struct GbnFlow {
    cc: Box<dyn CongestionControl>,
    est: RttEstimator,
    /// Oldest unacknowledged sequence number.
    snd_una: u64,
    /// Next sequence number to send.
    snd_nxt: u64,
    /// Original *first-transmission* times for the outstanding window,
    /// front-aligned to `snd_una`. Retransmits reuse these so delivery
    /// delay (and FCT) is measured from the first attempt.
    sent: VecDeque<SimTime>,
    /// Consecutive duplicate cumulative acks for `snd_una`.
    dup_acks: u32,
    /// Recovery guard: congestion signals are ignored until `snd_una`
    /// passes this sequence, bounding reactions to one per round trip.
    recover: u64,
    /// First-transmission packets since the last marker.
    marker_credit: u32,
    /// Marker cadence `K1 · w` for this flow (`None` = no marking).
    marker_every: Option<u32>,
    weight: u32,
    /// Earliest instant a genuine RTO may fire; pushed forward by every
    /// ack and (re)transmission.
    rto_deadline: SimTime,
    /// Whether an RTO timer event is outstanding (the chain is lazy: a
    /// fire before the deadline re-arms instead of timing out, so at
    /// most one timer event is ever in flight per flow).
    rto_armed: bool,
    /// Allotted-rate record (sampled at epoch ticks) for the report.
    series: TimeSeries,
}

/// An ack-clocked go-back-N sender: [`RouterLogic`] for an ingress edge
/// node driving closed-loop flows.
///
/// The sender keeps the outstanding window full whenever the controller
/// allows: on flow start it bursts the initial window, and every
/// window-opening event (new cumulative ack, epoch growth) pumps more
/// first transmissions. The engine's egress ack sink acknowledges every
/// arrival cumulatively; a cumulative ack advancing `snd_una` slides the
/// window, a duplicate ack counts toward fast retransmit, and an RTO
/// redelivers the whole outstanding window (go-back-N has no selective
/// repeat). Transit packets of other flows are forwarded unchanged, so
/// the sender can share a node with pass-through traffic.
pub struct GbnSender {
    cfg: GbnConfig,
    factory: CcFactory,
    flows: DenseMap<FlowId, GbnFlow>,
    /// Per-slot timer-chain generation (epoch-guard idiom): bumped on
    /// every start/stop so timers armed by a previous activation or a
    /// recycled slot's previous occupant are recognized as stale.
    gens: Vec<u32>,
    acks_received: u64,
    rtos_fired: u64,
    fast_retransmits: u64,
    retransmitted_packets: u64,
    markers_injected: u64,
}

impl GbnSender {
    /// A sender with a custom congestion-controller factory.
    pub fn new(cfg: GbnConfig, factory: CcFactory) -> Self {
        GbnSender {
            cfg,
            factory,
            flows: DenseMap::new(),
            gens: Vec::new(),
            acks_received: 0,
            rtos_fired: 0,
            fast_retransmits: 0,
            retransmitted_packets: 0,
            markers_injected: 0,
        }
    }

    /// A sender whose factory follows each flow's declared
    /// [`Transport`]: Reno for [`Transport::Reno`], window-LIMD (with
    /// the given per-epoch `alpha`) for everything else.
    pub fn by_transport(cfg: GbnConfig, alpha: f64) -> Self {
        Self::new(
            cfg,
            Box::new(
                move |info: &FlowInfo, _base_rtt: f64| match info.transport {
                    Transport::Reno => Box::new(Reno::new()) as Box<dyn CongestionControl>,
                    _ => Box::new(WindowLimd::new(info.weight, alpha)),
                },
            ),
        )
    }

    fn bump_gen(&mut self, flow: FlowId) -> u32 {
        let idx = flow.index();
        if idx >= self.gens.len() {
            self.gens.resize(idx + 1, 0);
        }
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.gens[idx]
    }

    /// Timer param for `flow`'s current chains: generation high,
    /// slot index low.
    fn timer_param(&self, flow: FlowId) -> u64 {
        ((self.gens[flow.index()] as u64) << 32) | flow.index() as u64
    }

    /// Resolves a timer param back to the current occupant, or `None`
    /// when the chain is stale (older generation, or the state is gone).
    fn resolve_timer(&self, ctx: &Ctx<'_>, param: u64) -> Option<FlowId> {
        let idx = param as u32 as usize;
        let gen = (param >> 32) as u32;
        if self.gens.get(idx) != Some(&gen) {
            return None;
        }
        let flow = ctx.flow(FlowId::from_index(idx)).id;
        self.flows.get(&flow).map(|_| flow)
    }

    /// Sends first transmissions until the window is full, then keeps
    /// the RTO chain armed.
    fn pump(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let node = ctx.node();
        let now = ctx.now();
        let param = self.timer_param(flow);
        let max_window = self.cfg.max_window as u64;
        let mut marked = 0u64;
        let Some(s) = self.flows.get_mut(&flow) else {
            return;
        };
        let had_outstanding = s.snd_una < s.snd_nxt;
        let wnd = (s.cc.window().floor() as u64).clamp(1, max_window);
        while s.snd_nxt < s.snd_una + wnd {
            let seq = s.snd_nxt;
            let mut packet = ctx.new_packet(flow).with_seq(seq, false);
            if let Some(every) = s.marker_every {
                s.marker_credit += 1;
                if s.marker_credit >= every {
                    s.marker_credit = 0;
                    marked += 1;
                    packet = packet.with_marker(Marker {
                        flow,
                        edge: node,
                        normalized_rate: s.cc.rate() / s.weight as f64,
                    });
                }
            }
            ctx.emit(packet);
            s.sent.push_back(now);
            s.snd_nxt += 1;
        }
        if s.snd_una < s.snd_nxt {
            let rto = s.est.rto();
            // RFC 6298 discipline: the timer is (re)started when data
            // first goes outstanding or an ack advances the window (the
            // ack path resets the deadline itself) — NOT merely because
            // the pump ran. A pump that sends nothing must leave the
            // deadline alone, or periodic ticks would push a lost
            // window's timeout forever into the future.
            if !had_outstanding {
                s.rto_deadline = now + rto;
            }
            if !s.rto_armed {
                s.rto_armed = true;
                ctx.set_timer(rto, TimerKind::with_param(TIMER_GBN_RTO, param));
            }
        }
        self.markers_injected += marked;
    }

    /// Redelivers the whole outstanding window (go-back-N), keeping each
    /// packet's original first-transmission timestamp.
    fn retransmit_window(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let mut resent = 0u64;
        if let Some(s) = self.flows.get_mut(&flow) {
            for (i, &orig) in s.sent.iter().enumerate() {
                let seq = s.snd_una + i as u64;
                let mut packet = ctx.new_packet(flow).with_seq(seq, true);
                packet.sent_at = orig;
                ctx.emit(packet);
                resent += 1;
            }
        }
        self.retransmitted_packets += resent;
    }

    /// Delivers one recovery-guarded congestion signal to the flow's
    /// controller: Corelite marker feedback and duplicate-ack losses
    /// funnel through here, and at most one signal per outstanding
    /// window reaches the controller.
    fn signal(&mut self, now: SimTime, flow: FlowId) -> bool {
        let Some(s) = self.flows.get_mut(&flow) else {
            return false;
        };
        if s.snd_una < s.recover {
            return false;
        }
        s.recover = s.snd_nxt;
        s.cc.on_signal(now);
        true
    }

    fn handle_ack(
        &mut self,
        ctx: &mut Ctx<'_>,
        flow: FlowId,
        cum_seq: u64,
        echo: SimTime,
        retx: bool,
    ) {
        self.acks_received += 1;
        let now = ctx.now();
        let Some(s) = self.flows.get_mut(&flow) else {
            return;
        };
        if cum_seq > s.snd_nxt {
            // An ack for sequence space this activation never sent: a
            // straggler from a previous activation of the same slot
            // (whose receiver counter was since reset). Ignore it.
            return;
        }
        if cum_seq > s.snd_una {
            let newly = cum_seq - s.snd_una;
            for _ in 0..newly {
                s.sent.pop_front();
            }
            s.snd_una = cum_seq;
            s.dup_acks = 0;
            if !retx {
                // Karn's rule: only unambiguous (first-transmission)
                // segments produce RTT samples.
                s.est.on_sample(now.saturating_since(echo).as_secs_f64());
            }
            let srtt = s.est.srtt();
            s.cc.on_ack(now, newly, srtt);
            s.rto_deadline = now + s.est.rto();
            self.pump(ctx, flow);
        } else {
            s.dup_acks += 1;
            if s.dup_acks >= self.cfg.dupack_threshold && s.snd_una < s.snd_nxt {
                let was_counted = s.dup_acks;
                if self.signal(now, flow) {
                    self.fast_retransmits += 1;
                    if let Some(s) = self.flows.get_mut(&flow) {
                        s.dup_acks = 0;
                        s.rto_deadline = now + s.est.rto();
                    }
                    self.retransmit_window(ctx, flow);
                } else {
                    // Still in recovery: keep counting toward the next
                    // opportunity without re-signalling every ack.
                    if let Some(s) = self.flows.get_mut(&flow) {
                        s.dup_acks = was_counted.saturating_sub(1);
                    }
                }
            }
        }
    }

    fn handle_rto(&mut self, ctx: &mut Ctx<'_>, param: u64) {
        let Some(flow) = self.resolve_timer(ctx, param) else {
            return;
        };
        let now = ctx.now();
        let Some(s) = self.flows.get_mut(&flow) else {
            return;
        };
        s.rto_armed = false;
        if s.snd_una == s.snd_nxt {
            // Nothing outstanding: the chain is re-armed by the next
            // transmission.
            return;
        }
        if now < s.rto_deadline {
            // The deadline moved (acks arrived since this timer was
            // armed): sleep until the new deadline instead of timing out.
            let remaining = s.rto_deadline.saturating_since(now);
            s.rto_armed = true;
            ctx.set_timer(remaining, TimerKind::with_param(TIMER_GBN_RTO, param));
            return;
        }
        self.rtos_fired += 1;
        s.est.backoff();
        s.cc.on_rto(now);
        s.recover = s.snd_nxt;
        s.dup_acks = 0;
        let rto = s.est.rto();
        s.rto_deadline = now + rto;
        s.rto_armed = true;
        ctx.set_timer(rto, TimerKind::with_param(TIMER_GBN_RTO, param));
        self.retransmit_window(ctx, flow);
    }

    fn handle_tick(&mut self, ctx: &mut Ctx<'_>, param: u64) {
        let Some(flow) = self.resolve_timer(ctx, param) else {
            return;
        };
        let now = ctx.now();
        if let Some(s) = self.flows.get_mut(&flow) {
            s.cc.on_epoch(now);
            let rate = s.cc.rate();
            s.series.push(now, rate);
            ctx.publish(Sample::for_flow("b_g", flow, rate));
            ctx.publish(Sample::for_flow("cwnd", flow, s.cc.window()));
        }
        self.pump(ctx, flow);
        ctx.set_timer(self.cfg.epoch, TimerKind::with_param(TIMER_GBN_TICK, param));
    }
}

impl RouterLogic for GbnSender {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: crate::packet::Packet) {
        // Transit traffic of other flows passes through unchanged.
        ctx.emit(packet);
    }

    fn on_flow_start(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let now = ctx.now();
        let base_rtt = 2.0 * ctx.one_way_delay(flow).as_secs_f64();
        let info = ctx.flow(flow);
        let mut cc = (self.factory)(info, base_rtt);
        cc.on_start(now, base_rtt);
        let weight = info.weight;
        let marker_every = self.cfg.marker_spacing.map(|k1| (k1 * weight).max(1));
        self.bump_gen(flow);
        self.flows.insert(
            flow,
            GbnFlow {
                cc,
                est: RttEstimator::new(
                    base_rtt,
                    self.cfg.min_rto.as_secs_f64(),
                    self.cfg.max_rto.as_secs_f64(),
                ),
                snd_una: 0,
                snd_nxt: 0,
                sent: VecDeque::new(),
                dup_acks: 0,
                recover: 0,
                marker_credit: 0,
                marker_every,
                weight,
                rto_deadline: now,
                rto_armed: false,
                series: TimeSeries::new(),
            },
        );
        self.pump(ctx, flow);
        let param = self.timer_param(flow);
        ctx.set_timer(self.cfg.epoch, TimerKind::with_param(TIMER_GBN_TICK, param));
    }

    fn on_flow_stop(&mut self, _ctx: &mut Ctx<'_>, flow: FlowId) {
        // Invalidate both timer chains and drop all connection state; a
        // restart begins from sequence zero, mirroring the egress
        // receiver's reset.
        self.bump_gen(flow);
        self.flows.remove(&flow);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
        match timer.tag {
            TIMER_GBN_RTO => self.handle_rto(ctx, timer.param),
            TIMER_GBN_TICK => self.handle_tick(ctx, timer.param),
            _ => {}
        }
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, msg: ControlMsg) {
        match msg {
            ControlMsg::Ack {
                flow,
                cum_seq,
                echo,
                retx,
            } => self.handle_ack(ctx, flow, cum_seq, echo, retx),
            // Corelite marker feedback: a congestion signal for the
            // flow's controller (recovery-guarded like a loss signal,
            // but with nothing to retransmit).
            ControlMsg::MarkerFeedback { marker, .. } => {
                self.signal(ctx.now(), marker.flow);
            }
            // Loss notifications are redundant with the ack stream.
            ControlMsg::Loss { .. } => {}
        }
    }

    fn report(&self, _now: SimTime) -> LogicReport {
        let mut report = LogicReport::default();
        for (flow, s) in self.flows.iter() {
            report.flow_rates.insert(flow, s.series.clone());
        }
        report
            .counters
            .insert("acks_received".to_owned(), self.acks_received as f64);
        report
            .counters
            .insert("rtos_fired".to_owned(), self.rtos_fired as f64);
        report
            .counters
            .insert("fast_retransmits".to_owned(), self.fast_retransmits as f64);
        report.counters.insert(
            "retransmitted_packets".to_owned(),
            self.retransmitted_packets as f64,
        );
        report
            .counters
            .insert("markers_injected".to_owned(), self.markers_injected as f64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSpec;
    use crate::link::LinkSpec;
    use crate::logic::ForwardLogic;
    use crate::monitor::SimReport;
    use crate::topology::TopologyBuilder;

    #[test]
    fn rtt_estimator_converges_and_backs_off() {
        let mut est = RttEstimator::new(0.1, 0.05, 10.0);
        assert!((est.srtt() - 0.1).abs() < 1e-9);
        for _ in 0..100 {
            est.on_sample(0.2);
        }
        assert!((est.srtt() - 0.2).abs() < 1e-3, "srtt {}", est.srtt());
        let rto = est.rto().as_secs_f64();
        assert!((0.2..0.3).contains(&rto), "rto {rto}");
        est.backoff();
        est.backoff();
        assert!((est.rto().as_secs_f64() - 4.0 * rto).abs() < 1e-6);
        // Backoff is capped.
        for _ in 0..20 {
            est.backoff();
        }
        assert!((est.rto().as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn reno_slow_start_then_aimd() {
        let mut cc = Reno::new();
        cc.on_start(SimTime::ZERO, 0.1);
        assert_eq!(cc.window(), 2.0);
        // Slow start: +1 per acked packet.
        cc.on_ack(SimTime::ZERO, 2, 0.1);
        assert_eq!(cc.window(), 4.0);
        cc.on_signal(SimTime::ZERO);
        assert_eq!(cc.window(), 2.0);
        // Now in congestion avoidance: +n/cwnd.
        cc.on_ack(SimTime::ZERO, 2, 0.1);
        assert!((cc.window() - 3.0).abs() < 1e-9);
        cc.on_rto(SimTime::ZERO);
        assert_eq!(cc.window(), 1.0);
    }

    #[test]
    fn window_limd_grows_with_weight_and_halves_on_signal() {
        let mut w1 = WindowLimd::new(1, 1.0);
        let mut w4 = WindowLimd::new(4, 1.0);
        w1.on_start(SimTime::ZERO, 0.1);
        w4.on_start(SimTime::ZERO, 0.1);
        for _ in 0..10 {
            w1.on_epoch(SimTime::ZERO);
            w4.on_epoch(SimTime::ZERO);
        }
        assert!((w4.window() / w1.window() - 4.0).abs() < 0.3);
        let before = w4.window();
        w4.on_signal(SimTime::ZERO);
        assert!((w4.window() - before / 2.0).abs() < 1e-9);
        // A signalled epoch does not also grow.
        w4.on_epoch(SimTime::ZERO);
        assert!((w4.window() - before / 2.0).abs() < 1e-9);
    }

    fn gbn_chain(cfg: GbnConfig, transport: crate::flow::Transport) -> (SimReport, FlowId) {
        let mut b = TopologyBuilder::new(7);
        let src = b.node("src", move |_| {
            Box::new(GbnSender::by_transport(cfg.clone(), 1.0))
        });
        let mid = b.node("mid", |_| Box::new(ForwardLogic));
        let dst = b.node("dst", |_| Box::new(ForwardLogic));
        let spec = LinkSpec::new(4_000_000, SimDuration::from_millis(10), 40);
        b.link(src, mid, spec);
        b.link(mid, dst, spec);
        let f = b.flow(
            FlowSpec::new(vec![src, mid, dst], 1)
                .transport(transport)
                .active(SimTime::ZERO, None),
        );
        let end = SimTime::from_secs(20);
        let mut net = b.build();
        net.run_until(end);
        (net.into_report(end), f)
    }

    #[test]
    fn gbn_reno_fills_the_pipe_without_duplicate_goodput() {
        let (report, f) = gbn_chain(GbnConfig::default(), crate::flow::Transport::Reno);
        let fr = report.flow(f);
        // The 500 pkt/s bottleneck should be near-saturated by an
        // ack-clocked Reno flow over 20 s.
        assert!(
            fr.delivered_packets > 7_000,
            "delivered {}",
            fr.delivered_packets
        );
        // Go-back-N redelivers whole windows, so duplicates certainly
        // occurred — but none of them may count as goodput: delivered
        // packets are exactly the distinct in-order sequence numbers.
        assert!(
            fr.delivered_packets <= 20 * 500,
            "goodput exceeds link capacity: {}",
            fr.delivered_packets
        );
        let sender = report
            .logic
            .get(&crate::ids::NodeId::from_index(0))
            .unwrap();
        assert!(sender.counters["acks_received"] > 0.0);
    }

    #[test]
    fn gbn_runs_are_deterministic() {
        let a = gbn_chain(GbnConfig::default(), crate::flow::Transport::Reno);
        let b = gbn_chain(GbnConfig::default(), crate::flow::Transport::Reno);
        assert_eq!(format!("{:?}", a.0), format!("{:?}", b.0));
    }

    #[test]
    fn retransmits_are_counted_as_duplicates_not_goodput() {
        // A tiny queue forces drops, RTOs, and whole-window redelivery.
        let mut b = TopologyBuilder::new(7);
        let cfg = GbnConfig::default();
        let src = b.node("src", move |_| {
            Box::new(GbnSender::by_transport(cfg.clone(), 1.0))
        });
        let dst = b.node("dst", |_| Box::new(ForwardLogic));
        b.link(
            src,
            dst,
            LinkSpec::new(400_000, SimDuration::from_millis(10), 4),
        );
        let f = b.flow(
            FlowSpec::new(vec![src, dst], 1)
                .transport(crate::flow::Transport::Reno)
                .active(SimTime::ZERO, None),
        );
        let end = SimTime::from_secs(30);
        let mut net = b.build();
        net.run_until(end);
        let report = net.into_report(end);
        let fr = report.flow(f);
        assert!(fr.tail_drops > 0, "scenario must overdrive the queue");
        assert!(
            fr.duplicate_packets > 0,
            "go-back-N redelivery must surface as duplicates"
        );
        // Goodput accounting remains loss-free: every delivered sequence
        // number is distinct, so delivered counts are bounded by what a
        // 50 pkt/s link can carry.
        assert!(
            fr.delivered_packets <= 30 * 50 + 1,
            "delivered {} exceeds capacity",
            fr.delivered_packets
        );
        assert!(
            fr.delivered_packets > 800,
            "delivered {}",
            fr.delivered_packets
        );
    }
}
