//! Typed identifiers for simulation entities.
//!
//! Newtypes ([C-NEWTYPE]) prevent a `FlowId` from being used where a
//! `NodeId` is expected; all are cheap `Copy` indices into the network's
//! internal tables.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        // `u32` rather than `usize`: identifiers ride inside every
        // queued event, and the event queue moves entries constantly
        // (slot drains, sorts, cascades), so four spare bytes per id
        // are pure memory-traffic overhead. Four billion entities is
        // far beyond any simulation this repo runs.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Returns the raw index of this identifier.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an identifier from a raw index.
            ///
            /// Intended for table-driven scenario construction; an index
            /// that does not name an existing entity will cause a panic
            /// when first used against a network.
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX`.
            pub const fn from_index(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "entity index exceeds u32");
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a node (host, edge router, or core router).
    NodeId,
    "n"
);
id_type!(
    /// Identifies a directed link between two nodes.
    LinkId,
    "l"
);
id_type!(
    /// Identifies an edge-to-edge flow.
    FlowId,
    "f"
);

/// Identifies a single packet; unique over a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub(crate) u64);

impl PacketId {
    /// Returns the raw sequence number of this packet.
    pub const fn sequence(self) -> u64 {
        self.0
    }

    /// Creates a packet id from a raw sequence number. Intended for tests
    /// and tooling that drive [`Link`](crate::link::Link) directly; inside
    /// a simulation, ids are allocated by
    /// [`Ctx::new_packet`](crate::logic::Ctx::new_packet).
    pub const fn from_sequence(sequence: u64) -> Self {
        PacketId(sequence)
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_distinctly() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(3).to_string(), "l3");
        assert_eq!(FlowId(3).to_string(), "f3");
        assert_eq!(PacketId(9).to_string(), "p9");
    }

    #[test]
    fn ids_round_trip_index() {
        assert_eq!(FlowId::from_index(5).index(), 5);
        assert_eq!(NodeId::from_index(2).index(), 2);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(FlowId(1) < FlowId(2));
        assert!(PacketId(1) < PacketId(10));
    }
}
