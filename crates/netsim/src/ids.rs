//! Typed identifiers for simulation entities.
//!
//! Newtypes ([C-NEWTYPE]) prevent a `FlowId` from being used where a
//! `NodeId` is expected; all are cheap `Copy` indices into the network's
//! internal tables.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        // `u32` rather than `usize`: identifiers ride inside every
        // queued event, and the event queue moves entries constantly
        // (slot drains, sorts, cascades), so four spare bytes per id
        // are pure memory-traffic overhead. Four billion entities is
        // far beyond any simulation this repo runs.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Returns the raw index of this identifier.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an identifier from a raw index.
            ///
            /// Intended for table-driven scenario construction; an index
            /// that does not name an existing entity will cause a panic
            /// when first used against a network.
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX`.
            pub const fn from_index(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "entity index exceeds u32");
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a node (host, edge router, or core router).
    NodeId,
    "n"
);
id_type!(
    /// Identifies a directed link between two nodes.
    LinkId,
    "l"
);

/// Identifies an edge-to-edge flow.
///
/// A flow id is a **slot index plus a generation**. Statically declared
/// flows always carry generation 0 and behave exactly like the other
/// plain-index ids. Under churn the network recycles flow-table slots
/// through a free-list, and each new occupant of a slot gets the next
/// generation — so a stale event, packet, or control message addressed
/// to a retired flow can be recognized (its id no longer matches the
/// slot's current occupant) and dropped instead of being misdelivered.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId {
    pub(crate) idx: u32,
    pub(crate) gen: u32,
}

impl FlowId {
    /// Returns the raw slot index of this identifier.
    pub const fn index(self) -> usize {
        self.idx as usize
    }

    /// Creates a generation-0 identifier from a raw index — the id of a
    /// statically declared flow.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    pub const fn from_index(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "entity index exceeds u32");
        FlowId {
            idx: index as u32,
            gen: 0,
        }
    }

    /// The slot generation: 0 for statically declared flows, incremented
    /// for each successive churn occupant of a recycled slot.
    pub const fn generation(self) -> u32 {
        self.gen
    }

    /// Creates an identifier with an explicit generation (churn slot
    /// recycling; tests).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    pub const fn with_generation(index: usize, generation: u32) -> Self {
        assert!(index <= u32::MAX as usize, "entity index exceeds u32");
        FlowId {
            idx: index as u32,
            gen: generation,
        }
    }

    /// Packs the id into a single `u64` timer parameter: generation in
    /// the high 32 bits, slot index in the low 32. Self-rescheduling
    /// timer chains carry this so a chain armed for one slot occupant
    /// dies when the slot is recycled (the unpacked id no longer matches
    /// the occupant).
    pub const fn pack(self) -> u64 {
        ((self.gen as u64) << 32) | self.idx as u64
    }

    /// Inverse of [`FlowId::pack`].
    pub const fn unpack(packed: u64) -> Self {
        FlowId {
            idx: packed as u32,
            gen: (packed >> 32) as u32,
        }
    }
}

impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Generation-0 ids render exactly like the other index newtypes
        // so static-scenario debug output (the determinism oracles'
        // byte-identity surface) is unchanged by the generation field.
        if self.gen == 0 {
            write!(f, "FlowId({})", self.idx)
        } else {
            write!(f, "FlowId({}g{})", self.idx, self.gen)
        }
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.gen == 0 {
            write!(f, "f{}", self.idx)
        } else {
            write!(f, "f{}g{}", self.idx, self.gen)
        }
    }
}

/// Identifies a single packet; unique over a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub(crate) u64);

impl PacketId {
    /// Returns the raw sequence number of this packet.
    pub const fn sequence(self) -> u64 {
        self.0
    }

    /// Creates a packet id from a raw sequence number. Intended for tests
    /// and tooling that drive [`Link`](crate::link::Link) directly; inside
    /// a simulation, ids are allocated by
    /// [`Ctx::new_packet`](crate::logic::Ctx::new_packet).
    pub const fn from_sequence(sequence: u64) -> Self {
        PacketId(sequence)
    }

    /// Packs a packet id from the minting node and its per-node counter:
    /// `(node + 1) << 40 | counter`. Ids minted by different nodes can
    /// never collide, so every node numbers its packets independently —
    /// which lets topology shards mint identical ids without sharing a
    /// global counter.
    pub(crate) const fn for_node(node: NodeId, counter: u64) -> Self {
        debug_assert!(counter < 1 << 40, "per-node packet counter overflow");
        PacketId(((node.index() as u64 + 1) << 40) | counter)
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_distinctly() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(3).to_string(), "l3");
        assert_eq!(FlowId::from_index(3).to_string(), "f3");
        assert_eq!(FlowId::with_generation(3, 2).to_string(), "f3g2");
        assert_eq!(PacketId(9).to_string(), "p9");
    }

    #[test]
    fn ids_round_trip_index() {
        assert_eq!(FlowId::from_index(5).index(), 5);
        assert_eq!(NodeId::from_index(2).index(), 2);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(FlowId::from_index(1) < FlowId::from_index(2));
        assert!(PacketId(1) < PacketId(10));
    }

    #[test]
    fn flow_generations_share_a_slot_but_compare_distinct() {
        let a = FlowId::from_index(4);
        let b = FlowId::with_generation(4, 1);
        assert_eq!(a.index(), b.index());
        assert_ne!(a, b);
        assert!(a < b, "older generations sort first within a slot");
        assert_eq!(a.generation(), 0);
        assert_eq!(b.generation(), 1);
    }

    #[test]
    fn pack_round_trips_index_and_generation() {
        for id in [
            FlowId::from_index(0),
            FlowId::from_index(u32::MAX as usize),
            FlowId::with_generation(17, 5),
            FlowId::with_generation(0, u32::MAX),
        ] {
            assert_eq!(FlowId::unpack(id.pack()), id);
        }
    }

    #[test]
    fn generation_zero_debug_matches_plain_ids() {
        // The determinism oracles Debug-render whole reports; static
        // flows must keep their pre-generation rendering.
        assert_eq!(format!("{:?}", FlowId::from_index(7)), "FlowId(7)");
        assert_eq!(
            format!("{:?}", FlowId::with_generation(7, 3)),
            "FlowId(7g3)"
        );
    }
}
