//! Dynamic flow churn: Poisson arrivals, heavy-tailed flow sizes, and
//! recycled flow-table slots.
//!
//! A [`ChurnSpec`] describes an open-loop arrival process layered on top
//! of a built topology: flows arrive as a Poisson process, pick a route
//! template and a weight, draw a Pareto ("web-like") size, live for
//! `size / nominal_rate` seconds, and depart. Each arrival reuses a
//! retired flow-table slot when one is free — identified by a bumped
//! [`FlowId`](crate::ids::FlowId) generation — so resident per-flow state
//! is bounded by the *peak concurrent* flow count, not by the total
//! number of flows ever created.
//!
//! The process is driven entirely by seeded [`DetRng`] streams and the
//! deterministic event queue, so churn runs are byte-identical across
//! repeat invocations and queue backends like every other experiment.

use sim_core::rng::DetRng;
use sim_core::stats::{LogHistogram, TimeSeries};
use sim_core::time::{SimDuration, SimTime};

use crate::ids::{LinkId, NodeId};

/// Declarative description of a churn process, installed with
/// [`TopologyBuilder::churn`](crate::topology::TopologyBuilder::churn).
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    pub(crate) routes: Vec<Vec<NodeId>>,
    pub(crate) weights: Vec<u32>,
    pub(crate) arrival_rate: f64,
    pub(crate) mean_size_pkts: f64,
    pub(crate) pareto_shape: f64,
    pub(crate) nominal_rate_pps: f64,
    pub(crate) packet_size: u32,
    pub(crate) start: SimTime,
    pub(crate) stop: SimTime,
    pub(crate) linger: SimDuration,
    pub(crate) max_arrivals: Option<u64>,
    pub(crate) cohorts: usize,
}

impl ChurnSpec {
    /// Creates a churn process: `arrival_rate` flows per second, each
    /// drawing a Pareto size with the given mean (in packets) and sending
    /// at `nominal_rate_pps` while alive. Add at least one route with
    /// [`route`](ChurnSpec::route) and set the arrival window with
    /// [`window`](ChurnSpec::window) before building.
    ///
    /// # Panics
    ///
    /// Panics if any argument is not strictly positive and finite.
    pub fn new(arrival_rate: f64, mean_size_pkts: f64, nominal_rate_pps: f64) -> Self {
        for (name, v) in [
            ("arrival rate", arrival_rate),
            ("mean size", mean_size_pkts),
            ("nominal rate", nominal_rate_pps),
        ] {
            assert!(
                v.is_finite() && v > 0.0,
                "churn {name} must be positive and finite, got {v}"
            );
        }
        ChurnSpec {
            routes: Vec::new(),
            weights: vec![1],
            arrival_rate,
            mean_size_pkts,
            pareto_shape: 1.8,
            nominal_rate_pps,
            packet_size: 1000,
            start: SimTime::ZERO,
            stop: SimTime::ZERO,
            linger: SimDuration::from_secs(1),
            max_arrivals: None,
            cohorts: 8,
        }
    }

    /// Adds a route template (builder-style). Each arrival picks one
    /// uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `path` has fewer than two nodes.
    pub fn route(mut self, path: Vec<NodeId>) -> Self {
        assert!(path.len() >= 2, "a churn route needs at least two nodes");
        self.routes.push(path);
        self
    }

    /// Sets the weight classes arrivals draw from uniformly (builder-style;
    /// default: every flow has weight 1).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or contains a zero.
    pub fn weights(mut self, weights: Vec<u32>) -> Self {
        assert!(!weights.is_empty(), "churn weight list must be non-empty");
        assert!(
            weights.iter().all(|&w| w > 0),
            "rate weights must be positive"
        );
        self.weights = weights;
        self
    }

    /// Sets the Pareto tail index for flow sizes (builder-style; default
    /// 1.8 — heavy-tailed with a finite mean).
    ///
    /// # Panics
    ///
    /// Panics unless `shape > 1` (the mean would be infinite otherwise).
    pub fn pareto_shape(mut self, shape: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 1.0,
            "pareto shape must exceed 1 for a finite mean, got {shape}"
        );
        self.pareto_shape = shape;
        self
    }

    /// Sets the arrival window (builder-style): arrivals occur in
    /// `[start, stop)`; flows arriving near `stop` still run to their
    /// natural end.
    ///
    /// # Panics
    ///
    /// Panics unless `stop > start`.
    pub fn window(mut self, start: SimTime, stop: SimTime) -> Self {
        assert!(stop > start, "churn window stop must come after start");
        self.start = start;
        self.stop = stop;
        self
    }

    /// Sets the drain delay between a flow's stop and the recycling of
    /// its table slot (builder-style; default 1 s). The linger must cover
    /// the network's residual in-flight time so a retired slot never
    /// receives packets from its previous occupant.
    pub fn linger(mut self, linger: SimDuration) -> Self {
        self.linger = linger;
        self
    }

    /// Sets the packet size of churn flows in bytes (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn packet_size(mut self, size: u32) -> Self {
        assert!(size > 0, "packet size must be positive");
        self.packet_size = size;
        self
    }

    /// Caps the total number of arrivals (builder-style; default
    /// unlimited within the window).
    pub fn max_arrivals(mut self, n: u64) -> Self {
        self.max_arrivals = Some(n);
        self
    }

    pub(crate) fn validate(&self) {
        assert!(
            !self.routes.is_empty(),
            "a churn process needs at least one route"
        );
        assert!(
            self.stop > self.start,
            "churn window is empty; call ChurnSpec::window"
        );
    }
}

/// Per-arrival-cohort aggregates: flows are bucketed by arrival time into
/// a fixed number of equal-width cohorts over the arrival window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CohortStats {
    /// Flows that arrived in this cohort.
    pub arrivals: u64,
    /// Flows retired with at least one delivered packet.
    pub completed: u64,
    /// Sum of flow completion times (seconds) over completed flows.
    pub fct_sum: f64,
    /// Sum of settling times (arrival to first delivery, seconds) over
    /// completed flows.
    pub settling_sum: f64,
    /// Packets delivered across the cohort's flows.
    pub delivered_packets: u64,
}

impl CohortStats {
    /// Mean flow completion time in seconds, or `None` if no flow in the
    /// cohort completed.
    pub fn mean_fct(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.fct_sum / self.completed as f64)
    }

    /// Mean settling time (arrival to first delivered packet) in seconds.
    pub fn mean_settling(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.settling_sum / self.completed as f64)
    }
}

/// End-of-run churn measurements, attached to
/// [`SimReport::churn`](crate::monitor::SimReport::churn).
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Flows created by the arrival process.
    pub arrivals: u64,
    /// Flows whose table slot was drained and recycled.
    pub retired: u64,
    /// Retired flows that delivered at least one packet.
    pub completed: u64,
    /// Highest concurrent active-flow count observed.
    pub peak_active: u64,
    /// Highest number of flow-table slots ever resident — the memory
    /// footprint bound; stays O(peak active), not O(total arrivals).
    pub peak_slots: usize,
    /// Events referencing a recycled slot's previous occupant that the
    /// engine discarded (stale packets, control messages, flow events).
    pub stale_events: u64,
    /// Flow completion times (arrival to last delivered packet), seconds.
    pub fct: LogHistogram,
    /// Settling times (arrival to first delivered packet), seconds.
    pub settling: LogHistogram,
    /// Concurrent active-flow count, sampled at measurement-window
    /// boundaries (bounded regardless of arrival count).
    pub active_series: TimeSeries,
    /// Per-arrival-cohort aggregates.
    pub cohorts: Vec<CohortStats>,
}

impl ChurnReport {
    /// Mean flow completion time over all completed flows, seconds.
    pub fn mean_fct(&self) -> Option<f64> {
        self.fct.mean()
    }

    /// The `q`-quantile of flow completion time, seconds.
    pub fn fct_quantile(&self, q: f64) -> Option<f64> {
        self.fct.quantile(q)
    }
}

/// A route template resolved against the built topology.
/// A churn flow's raw completion data, logged instead of folded into the
/// running metrics when completion accounting is deferred (sharded runs).
///
/// Float accumulation is order-sensitive, so partial per-shard sums could
/// differ from the serial run in the last ulp. Logging the raw inputs
/// keyed by the retire event's canonical `(time, key)` lets the merge
/// replay completions in exactly the serial dispatch order, making the
/// merged churn report byte-identical by construction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompletionRecord {
    /// The retire event's timestamp.
    pub(crate) time: SimTime,
    /// The retire event's canonical key (total order among same-time
    /// retires).
    pub(crate) key: u64,
    /// The flow's arrival instant (cohort selector).
    pub(crate) arrival: SimTime,
    /// First and last delivery instants.
    pub(crate) first: SimTime,
    pub(crate) last: SimTime,
    pub(crate) delivered_packets: u64,
}

impl ChurnReport {
    /// Folds one deferred completion into the report, exactly as
    /// [`ChurnState::retire`] would have done inline; `start`/`stop` are
    /// the churn window bounds that define the cohort grid. Records must
    /// be absorbed in `(time, key)` order for float sums to reproduce the
    /// serial run bit-for-bit.
    pub(crate) fn absorb_completion(
        &mut self,
        start: SimTime,
        stop: SimTime,
        r: &CompletionRecord,
    ) {
        let fct = r.last.saturating_since(r.arrival).as_secs_f64();
        let settling = r.first.saturating_since(r.arrival).as_secs_f64();
        self.completed += 1;
        self.fct.record(fct);
        self.settling.record(settling);
        let span = stop.saturating_since(start).as_secs_f64();
        let offset = r.arrival.saturating_since(start).as_secs_f64();
        let n = self.cohorts.len();
        let i = if span > 0.0 {
            (((offset / span) * n as f64) as usize).min(n - 1)
        } else {
            0
        };
        let cohort = &mut self.cohorts[i];
        cohort.completed += 1;
        cohort.fct_sum += fct;
        cohort.settling_sum += settling;
        cohort.delivered_packets += r.delivered_packets;
    }
}

#[derive(Debug, Clone)]
pub(crate) struct ResolvedRoute {
    pub(crate) path: Vec<NodeId>,
    pub(crate) hops: Vec<LinkId>,
    pub(crate) reverse_delays: Vec<SimDuration>,
}

/// One planned arrival, returned by [`ChurnState::plan_arrival`]; the
/// network turns it into a resident flow.
pub(crate) struct ArrivalPlan {
    /// Absolute flow-table slot index.
    pub(crate) slot: usize,
    /// Generation for the slot (0 for a fresh slot).
    pub(crate) generation: u32,
    /// Whether the slot extends the flow table (vs. recycling).
    pub(crate) fresh: bool,
    /// Index into the resolved route templates.
    pub(crate) route: usize,
    pub(crate) weight: u32,
    /// The flow's scheduled stop time.
    pub(crate) stop: SimTime,
    /// When to fire the next `ChurnArrival`, if any.
    pub(crate) next_arrival: Option<SimTime>,
}

/// Runtime state of the churn process, owned by the network.
pub(crate) struct ChurnState {
    spec: ChurnSpec,
    routes: Vec<ResolvedRoute>,
    gaps: DetRng,
    sizes: DetRng,
    picks: DetRng,
    /// LIFO free list of churn slots (relative to `base_slots`).
    free: Vec<u32>,
    /// Per-churn-slot generation counters; never shrinks, O(peak slots).
    gens: Vec<u32>,
    /// Per-churn-slot arrival instants of the current occupant.
    arrived_at: Vec<SimTime>,
    /// Whether the current occupant's stop has been delivered (a paused
    /// ingress can defer a stop past the slot's retirement).
    stopped: Vec<bool>,
    /// Slots owned by statically configured flows; churn slots follow.
    base_slots: usize,
    active: u64,
    arrivals: u64,
    retired: u64,
    completed: u64,
    peak_active: u64,
    fct: LogHistogram,
    settling: LogHistogram,
    active_series: TimeSeries,
    last_sample: SimTime,
    window: SimDuration,
    cohorts: Vec<CohortStats>,
    /// When `Some`, completion metrics are logged here instead of folded
    /// into `fct`/`settling`/`cohorts` (see [`CompletionRecord`]).
    completion_log: Option<Vec<CompletionRecord>>,
}

impl ChurnState {
    pub(crate) fn new(
        spec: ChurnSpec,
        routes: Vec<ResolvedRoute>,
        seed: u64,
        window: SimDuration,
        base_slots: usize,
        defer_completions: bool,
    ) -> Self {
        spec.validate();
        debug_assert_eq!(spec.routes.len(), routes.len());
        let cohorts = vec![CohortStats::default(); spec.cohorts];
        ChurnState {
            gaps: DetRng::stream(seed, "churn-gaps"),
            sizes: DetRng::stream(seed, "churn-sizes"),
            picks: DetRng::stream(seed, "churn-picks"),
            routes,
            free: Vec::new(),
            gens: Vec::new(),
            arrived_at: Vec::new(),
            stopped: Vec::new(),
            base_slots,
            active: 0,
            arrivals: 0,
            retired: 0,
            completed: 0,
            peak_active: 0,
            fct: LogHistogram::new(),
            settling: LogHistogram::new(),
            active_series: TimeSeries::new(),
            last_sample: SimTime::ZERO,
            window,
            cohorts,
            spec,
            completion_log: defer_completions.then(Vec::new),
        }
    }

    /// The churn window bounds (the cohort grid for deferred replay).
    pub(crate) fn completion_window(&self) -> (SimTime, SimTime) {
        (self.spec.start, self.spec.stop)
    }

    /// Takes the deferred completion log (empty unless deferring).
    pub(crate) fn take_completions(&mut self) -> Vec<CompletionRecord> {
        self.completion_log.take().unwrap_or_default()
    }

    pub(crate) fn packet_size(&self) -> u32 {
        self.spec.packet_size
    }

    pub(crate) fn linger(&self) -> SimDuration {
        self.spec.linger
    }

    pub(crate) fn route(&self, i: usize) -> &ResolvedRoute {
        &self.routes[i]
    }

    /// Whether `slot` currently belongs to the churn process.
    fn rel(&self, slot: usize) -> usize {
        debug_assert!(slot >= self.base_slots, "static slot in churn path");
        slot - self.base_slots
    }

    /// The first `ChurnArrival` instant, or `None` for a degenerate spec.
    pub(crate) fn first_arrival(&mut self) -> Option<SimTime> {
        if self.spec.max_arrivals == Some(0) {
            return None;
        }
        let gap = self.gaps.exp(self.spec.arrival_rate);
        let t = self.spec.start + SimDuration::from_secs_f64(gap);
        (t < self.spec.stop).then_some(t)
    }

    /// Draws one arrival: route, weight, size, slot, and the next
    /// arrival instant. Called when a `ChurnArrival` event fires at `now`.
    pub(crate) fn plan_arrival(&mut self, now: SimTime) -> ArrivalPlan {
        // Fixed draw order (route, weight, size, next gap) pins the
        // stream consumption pattern regardless of downstream decisions.
        let route = self.picks.index(self.routes.len());
        let weight = self.spec.weights[self.picks.index(self.spec.weights.len())];
        let shape = self.spec.pareto_shape;
        let scale = self.spec.mean_size_pkts * (shape - 1.0) / shape;
        let size_pkts = self.sizes.pareto(scale, shape).max(1.0);
        let duration = SimDuration::from_secs_f64(size_pkts / self.spec.nominal_rate_pps);
        let stop = now + duration.max(SimDuration::from_micros(1));

        let (slot, generation, fresh) = match self.free.pop() {
            Some(rel) => {
                let rel = rel as usize;
                self.gens[rel] += 1;
                self.arrived_at[rel] = now;
                self.stopped[rel] = false;
                (self.base_slots + rel, self.gens[rel], false)
            }
            None => {
                let rel = self.gens.len();
                self.gens.push(0);
                self.arrived_at.push(now);
                self.stopped.push(false);
                (self.base_slots + rel, 0, true)
            }
        };

        self.arrivals += 1;
        self.roll_series(now);
        self.active += 1;
        self.peak_active = self.peak_active.max(self.active);
        let arrived = self.arrivals;
        self.cohort_mut(now).arrivals += 1;

        let next_arrival = if self.spec.max_arrivals.is_some_and(|m| arrived >= m) {
            None
        } else {
            let gap = self.gaps.exp(self.spec.arrival_rate);
            let t = now + SimDuration::from_secs_f64(gap);
            (t < self.spec.stop).then_some(t)
        };

        ArrivalPlan {
            slot,
            generation,
            fresh,
            route,
            weight,
            stop,
            next_arrival,
        }
    }

    /// Notes that the current occupant of `slot` received its stop.
    pub(crate) fn note_stop(&mut self, now: SimTime, slot: usize) {
        let rel = self.rel(slot);
        if !self.stopped[rel] {
            self.stopped[rel] = true;
            self.roll_series(now);
            self.active -= 1;
        }
    }

    /// Retires `slot`'s occupant: records its completion metrics and
    /// returns the slot to the free list.
    pub(crate) fn retire(
        &mut self,
        now: SimTime,
        key: u64,
        slot: usize,
        first_delivery: Option<SimTime>,
        last_delivery: Option<SimTime>,
        delivered_packets: u64,
    ) {
        let rel = self.rel(slot);
        // A paused ingress can hold the stop past the linger; account the
        // departure here so the active count never leaks.
        if !self.stopped[rel] {
            self.stopped[rel] = true;
            self.roll_series(now);
            self.active -= 1;
        }
        let arrival = self.arrived_at[rel];
        self.retired += 1;
        if let Some(log) = &mut self.completion_log {
            // Deferred mode: a shard that saw no delivery for this flow
            // holds no completion data (an empty monitor passes `None`s
            // and zero), so exactly one shard logs each completed flow.
            if let (Some(first), Some(last)) = (first_delivery, last_delivery) {
                log.push(CompletionRecord {
                    time: now,
                    key,
                    arrival,
                    first,
                    last,
                    delivered_packets,
                });
            }
        } else {
            if let (Some(first), Some(last)) = (first_delivery, last_delivery) {
                let fct = last.saturating_since(arrival).as_secs_f64();
                let settling = first.saturating_since(arrival).as_secs_f64();
                self.completed += 1;
                self.fct.record(fct);
                self.settling.record(settling);
                let cohort = self.cohort_mut(arrival);
                cohort.completed += 1;
                cohort.fct_sum += fct;
                cohort.settling_sum += settling;
            }
            self.cohort_mut(arrival).delivered_packets += delivered_packets;
        }
        self.free.push(rel as u32);
    }

    fn cohort_mut(&mut self, arrival: SimTime) -> &mut CohortStats {
        let span = self
            .spec
            .stop
            .saturating_since(self.spec.start)
            .as_secs_f64();
        let offset = arrival.saturating_since(self.spec.start).as_secs_f64();
        let n = self.cohorts.len();
        let i = if span > 0.0 {
            (((offset / span) * n as f64) as usize).min(n - 1)
        } else {
            0
        };
        &mut self.cohorts[i]
    }

    /// Emits active-count samples for every measurement window fully
    /// elapsed before `now` (the count as of the last churn event, which
    /// is exact between events).
    fn roll_series(&mut self, now: SimTime) {
        while now >= self.last_sample + self.window {
            let end = self.last_sample + self.window;
            self.active_series.push(end, self.active as f64);
            self.last_sample = end;
        }
    }

    pub(crate) fn finish(mut self, end: SimTime, stale_events: u64) -> ChurnReport {
        self.roll_series(end);
        ChurnReport {
            arrivals: self.arrivals,
            retired: self.retired,
            completed: self.completed,
            peak_active: self.peak_active,
            peak_slots: self.gens.len(),
            stale_events,
            fct: self.fct,
            settling: self.settling,
            active_series: self.active_series,
            cohorts: self.cohorts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn spec() -> ChurnSpec {
        ChurnSpec::new(10.0, 20.0, 100.0)
            .route(vec![n(0), n(1)])
            .window(SimTime::ZERO, SimTime::from_secs(10))
    }

    fn state(spec: ChurnSpec) -> ChurnState {
        let routes = vec![ResolvedRoute {
            path: vec![n(0), n(1)],
            hops: vec![LinkId::from_index(0)],
            reverse_delays: vec![SimDuration::ZERO, SimDuration::from_millis(40)],
        }];
        ChurnState::new(spec, routes, 7, SimDuration::from_secs(1), 3, false)
    }

    #[test]
    fn slots_are_recycled_lifo_with_bumped_generations() {
        let mut s = state(spec());
        let t = SimTime::from_secs(1);
        let a = s.plan_arrival(t);
        let b = s.plan_arrival(t);
        assert_eq!((a.slot, a.generation, a.fresh), (3, 0, true));
        assert_eq!((b.slot, b.generation, b.fresh), (4, 0, true));
        s.note_stop(SimTime::from_secs(2), a.slot);
        s.retire(SimTime::from_secs(3), 0, a.slot, None, None, 0);
        let c = s.plan_arrival(SimTime::from_secs(4));
        assert_eq!((c.slot, c.generation, c.fresh), (3, 1, false));
    }

    #[test]
    fn retire_without_stop_still_balances_the_active_count() {
        let mut s = state(spec());
        let a = s.plan_arrival(SimTime::from_secs(1));
        // Stop never delivered (paused ingress): retire must not leak.
        s.retire(SimTime::from_secs(3), 0, a.slot, None, None, 0);
        let r = s.finish(SimTime::from_secs(10), 0);
        assert_eq!(r.arrivals, 1);
        assert_eq!(r.retired, 1);
        assert_eq!(r.completed, 0);
        assert_eq!(r.peak_active, 1);
        let last = r.active_series.iter().last().expect("series sampled");
        assert_eq!(last.1, 0.0, "active count must return to zero");
    }

    #[test]
    fn completion_metrics_split_settling_from_fct() {
        let mut s = state(spec());
        let a = s.plan_arrival(SimTime::from_secs(1));
        s.note_stop(SimTime::from_secs(2), a.slot);
        s.retire(
            SimTime::from_secs(3),
            0,
            a.slot,
            Some(SimTime::from_secs_f64(1.25)),
            Some(SimTime::from_secs_f64(2.5)),
            42,
        );
        let r = s.finish(SimTime::from_secs(10), 0);
        assert_eq!(r.completed, 1);
        assert!((r.settling.mean().unwrap() - 0.25).abs() < 1e-6);
        assert!((r.mean_fct().unwrap() - 1.5).abs() < 0.1);
        let delivered: u64 = r.cohorts.iter().map(|c| c.delivered_packets).sum();
        assert_eq!(delivered, 42);
        let completed: u64 = r.cohorts.iter().map(|c| c.completed).sum();
        assert_eq!(completed, 1);
    }

    #[test]
    fn arrival_draws_are_deterministic() {
        let mk = || {
            let mut s = state(spec());
            let mut out = Vec::new();
            let mut t = s.first_arrival().expect("window admits arrivals");
            for _ in 0..20 {
                let p = s.plan_arrival(t);
                out.push((p.slot, p.weight, p.stop));
                match p.next_arrival {
                    Some(next) => t = next,
                    None => break,
                }
            }
            out
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn max_arrivals_caps_the_process() {
        let mut s = state(spec().max_arrivals(2));
        let t = s.first_arrival().expect("first arrival");
        let a = s.plan_arrival(t);
        let b = s.plan_arrival(a.next_arrival.expect("second arrival"));
        assert!(b.next_arrival.is_none(), "cap must end the process");
    }

    #[test]
    #[should_panic(expected = "at least one route")]
    fn route_less_spec_rejected() {
        ChurnSpec::new(1.0, 10.0, 100.0)
            .window(SimTime::ZERO, SimTime::from_secs(1))
            .validate();
    }

    #[test]
    #[should_panic(expected = "window")]
    fn empty_window_rejected() {
        ChurnSpec::new(1.0, 10.0, 100.0)
            .route(vec![n(0), n(1)])
            .validate();
    }
}
