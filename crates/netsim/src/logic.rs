//! Pluggable per-node forwarding behaviour.
//!
//! A node's behaviour — shaping, marking, congestion detection, feedback —
//! is expressed by implementing [`RouterLogic`]. The network invokes the
//! logic on packet arrivals, timer expiries, control-message deliveries and
//! flow activation changes; the logic responds by queueing [`Action`]s on
//! the provided [`Ctx`], which the network applies afterwards. This
//! command-buffer design keeps logic implementations free of aliasing
//! gymnastics and keeps every state change observable by the monitors.

use std::cell::RefCell;
use std::collections::BTreeMap;

use sim_core::rng::DetRng;
use sim_core::stats::TimeSeries;
use sim_core::time::{SimDuration, SimTime};

use crate::flow::FlowInfo;
use crate::ids::{FlowId, LinkId, NodeId, PacketId};
use crate::link::{Link, LinkSpec};
use crate::packet::{Marker, Packet};
use crate::slab::DenseMap;
use crate::telemetry::{Probe, Sample};

/// An opaque timer tag interpreted by the logic that scheduled it.
///
/// `tag` identifies the timer's purpose (e.g. "adaptation epoch"); `param`
/// carries an argument such as a flow index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerKind {
    /// Logic-defined discriminant.
    pub tag: u32,
    /// Logic-defined argument (e.g. a flow index).
    pub param: u64,
}

impl TimerKind {
    /// Creates a timer kind with no argument.
    pub const fn tagged(tag: u32) -> Self {
        TimerKind { tag, param: 0 }
    }

    /// Creates a timer kind carrying an argument.
    pub const fn with_param(tag: u32, param: u64) -> Self {
        TimerKind { tag, param }
    }
}

/// Out-of-band control messages.
///
/// Control messages model signalling that travels the reverse path — they
/// experience propagation delay but never queueing (the reverse direction
/// is uncontended in all of the paper's scenarios; see DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlMsg {
    /// A Corelite marker sent back by a core router upon incipient
    /// congestion, addressed to the edge router that generated it.
    MarkerFeedback {
        /// The returned marker.
        marker: Marker,
        /// The core router that selected the marker (edges react to the
        /// *maximum* per-core count, so the origin matters).
        from: NodeId,
    },
    /// Notification that a packet of `flow` was dropped at node `at`
    /// (CSFQ's congestion indication; Corelite edges ignore these).
    Loss {
        /// The flow whose packet was lost.
        flow: FlowId,
        /// The node at which the drop occurred.
        at: NodeId,
    },
    /// A cumulative acknowledgement returned by the egress ack sink to
    /// the ingress of an ack-clocked (go-back-N) flow. Travels the
    /// reverse path like all control traffic: full reverse-path
    /// propagation delay, no queueing.
    Ack {
        /// The acknowledged flow.
        flow: FlowId,
        /// Next expected sequence number: everything below it has been
        /// delivered in order.
        cum_seq: u64,
        /// Echo of the triggering packet's `sent_at` timestamp — the
        /// sender derives an RTT sample from it.
        echo: SimTime,
        /// Whether the triggering packet was a retransmission (Karn's
        /// rule: such acks must not produce RTT samples).
        retx: bool,
    },
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Tail drop: the FIFO queue was full.
    Tail,
    /// Dropped by router logic (CSFQ's probabilistic dropper).
    Policy,
    /// Lost to an injected fault (e.g. a flapped link); see
    /// [`FaultPlan`](crate::fault::FaultPlan).
    Fault,
}

/// A deferred state change requested by router logic.
#[derive(Debug)]
pub enum Action {
    /// Enqueue `packet` on `link` (which must originate at this node).
    Forward {
        /// Outgoing link.
        link: LinkId,
        /// Packet to enqueue.
        packet: Packet,
    },
    /// Drop `packet` deliberately.
    Drop {
        /// The dropped packet.
        packet: Packet,
        /// Classification for accounting.
        reason: DropReason,
    },
    /// Deliver `msg` to node `to` after `delay`.
    Control {
        /// Destination node.
        to: NodeId,
        /// Delivery delay (usually a reverse-path propagation delay).
        delay: SimDuration,
        /// The message.
        msg: ControlMsg,
    },
    /// Invoke `on_timer(timer)` on this node after `delay`.
    Timer {
        /// Expiry delay.
        delay: SimDuration,
        /// Tag passed back to the logic.
        timer: TimerKind,
    },
}

/// Actions kept inline before spilling to the heap. Typical callbacks
/// emit one or two actions (forward + maybe a timer); epoch timers on
/// busy edges emit one per flow and may spill.
const ACTION_BUF_INLINE: usize = 8;

/// A reusable action buffer with inline capacity — the command queue
/// between router logic and the network.
///
/// The network owns one `ActionBuf` and threads it through every
/// [`Ctx`]; callbacks append with the `Ctx` helpers, the network drains
/// with [`take_next`](ActionBuf::take_next) and calls
/// [`reset`](ActionBuf::reset) before the next event. The first
/// [`ACTION_BUF_INLINE`] actions per callback live inline; the spill
/// vector beyond them is allocated once and recycled, so steady-state
/// dispatch performs no heap allocation (see DESIGN.md §"Engine
/// performance" for the contract).
#[derive(Debug, Default)]
pub struct ActionBuf {
    inline: [Option<Action>; ACTION_BUF_INLINE],
    spill: Vec<Option<Action>>,
    len: usize,
    cursor: usize,
}

impl ActionBuf {
    /// Creates an empty buffer whose spill area holds `spill_capacity`
    /// actions before reallocating.
    pub fn with_capacity(spill_capacity: usize) -> Self {
        ActionBuf {
            inline: Default::default(),
            spill: Vec::with_capacity(spill_capacity),
            len: 0,
            cursor: 0,
        }
    }

    /// Appends an action.
    pub fn push(&mut self, action: Action) {
        if self.len < ACTION_BUF_INLINE {
            self.inline[self.len] = Some(action);
        } else {
            self.spill.push(Some(action));
        }
        self.len += 1;
    }

    /// Removes and returns the next unconsumed action, in push order.
    pub fn take_next(&mut self) -> Option<Action> {
        if self.cursor >= self.len {
            return None;
        }
        let action = if self.cursor < ACTION_BUF_INLINE {
            self.inline[self.cursor].take()
        } else {
            self.spill[self.cursor - ACTION_BUF_INLINE].take()
        };
        self.cursor += 1;
        debug_assert!(action.is_some(), "actions are taken exactly once");
        action
    }

    /// Number of actions pushed and not yet reset.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no actions have been pushed since the last
    /// reset.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the buffer for reuse, keeping the spill capacity. All
    /// pushed actions must have been consumed with
    /// [`take_next`](ActionBuf::take_next) (debug-asserted).
    pub fn reset(&mut self) {
        debug_assert_eq!(self.cursor, self.len, "reset with unconsumed actions");
        // Consumed slots are already None; dropping them is free and
        // `clear` keeps the spill allocation.
        self.spill.clear();
        self.len = 0;
        self.cursor = 0;
    }
}

/// Per-flow and per-node measurements exported by router logic at the end
/// of a run (e.g. Corelite's allotted-rate series `b_g(f)`).
#[derive(Debug, Clone, Default)]
pub struct LogicReport {
    /// Per-flow time series of the logic's principal rate variable
    /// (allotted rate for Corelite/CSFQ edges), in packets per second.
    pub flow_rates: DenseMap<FlowId, TimeSeries>,
    /// Named scalar counters (markers injected, feedback sent, ...).
    pub counters: BTreeMap<String, f64>,
}

/// The environment handed to router logic callbacks.
///
/// Provides read access to the network and buffers the logic's actions;
/// see the crate docs for the execution model.
pub struct Ctx<'a> {
    now: SimTime,
    node: NodeId,
    links: &'a mut [Link],
    flows: &'a [FlowInfo],
    reverse_delays: &'a [Vec<SimDuration>],
    next_packet: &'a mut u64,
    outgoing: &'a [LinkId],
    actions: &'a mut ActionBuf,
    probe: Option<&'a RefCell<dyn Probe>>,
}

impl<'a> Ctx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        now: SimTime,
        node: NodeId,
        links: &'a mut [Link],
        flows: &'a [FlowInfo],
        reverse_delays: &'a [Vec<SimDuration>],
        next_packet: &'a mut u64,
        outgoing: &'a [LinkId],
        actions: &'a mut ActionBuf,
        probe: Option<&'a RefCell<dyn Probe>>,
    ) -> Self {
        Ctx {
            now,
            node,
            links,
            flows,
            reverse_delays,
            next_packet,
            outgoing,
            actions,
            probe,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node whose logic is being invoked.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// All flows in the network.
    pub fn flows(&self) -> &[FlowInfo] {
        self.flows
    }

    /// Looks up a flow.
    ///
    /// # Panics
    ///
    /// Panics if `flow` does not exist.
    pub fn flow(&self, flow: FlowId) -> &FlowInfo {
        &self.flows[flow.index()]
    }

    /// The outgoing link `flow` takes from this node, or `None` if this
    /// node is the flow's egress.
    pub fn next_hop(&self, flow: FlowId) -> Option<LinkId> {
        self.flow(flow).next_hop(self.node)
    }

    /// Outgoing links of this node, in creation order (precomputed at
    /// build time; no allocation). The iterator borrows the network, not
    /// the `Ctx`, so it can be held across `&mut self` calls.
    pub fn outgoing_links(&self) -> std::iter::Copied<std::slice::Iter<'a, LinkId>> {
        self.outgoing.iter().copied()
    }

    /// Static parameters of `link`.
    pub fn link_spec(&self, link: LinkId) -> &LinkSpec {
        self.links[link.index()].spec()
    }

    /// Instantaneous queue occupancy of `link` in packets (as of the
    /// current event's timestamp).
    pub fn link_queue_len(&self, link: LinkId) -> usize {
        self.links[link.index()].queue_len(self.now)
    }

    /// Closes and returns the time-weighted average queue occupancy of
    /// `link` since the previous call — the paper's `q_avg` over one
    /// congestion epoch.
    pub fn take_link_queue_average(&mut self, link: LinkId) -> f64 {
        self.links[link.index()].take_queue_average(self.now)
    }

    /// Propagation delay along the reverse path from this node back to
    /// `flow`'s ingress edge router.
    ///
    /// # Panics
    ///
    /// Panics if this node is not on `flow`'s path.
    pub fn reverse_delay_to_ingress(&self, flow: FlowId) -> SimDuration {
        let info = self.flow(flow);
        let pos = info
            .path
            .iter()
            .position(|&n| n == self.node)
            .unwrap_or_else(|| panic!("node {} is not on the path of {}", self.node, flow));
        self.reverse_delays[flow.index()][pos]
    }

    /// Total propagation delay along `flow`'s path from ingress to
    /// egress (no queueing) — the base for a round-trip-time estimate.
    pub fn one_way_delay(&self, flow: FlowId) -> SimDuration {
        *self.reverse_delays[flow.index()]
            .last()
            .expect("path has at least two nodes")
    }

    /// Allocates a fresh data packet for `flow`, stamped with the current
    /// time and the flow's configured packet size. Ids are node-packed
    /// (`next_packet` counts this node's mints only), so the id stream is
    /// independent of what any other node does.
    pub fn new_packet(&mut self, flow: FlowId) -> Packet {
        let id = PacketId::for_node(self.node, *self.next_packet);
        *self.next_packet += 1;
        let info = self.flow(flow);
        Packet::data(id, flow, info.packet_size, self.now)
    }

    /// Queues `packet` for transmission on `link`.
    pub fn forward(&mut self, link: LinkId, packet: Packet) {
        self.actions.push(Action::Forward { link, packet });
    }

    /// Emits `packet` toward `flow`'s next hop from this node.
    ///
    /// # Panics
    ///
    /// Panics if this node is the flow's egress.
    pub fn emit(&mut self, packet: Packet) {
        let link = self
            .next_hop(packet.flow)
            .unwrap_or_else(|| panic!("{} has no next hop at {}", packet.flow, self.node));
        self.forward(link, packet);
    }

    /// Drops `packet` deliberately (counted as a policy drop).
    pub fn drop_packet(&mut self, packet: Packet) {
        self.actions.push(Action::Drop {
            packet,
            reason: DropReason::Policy,
        });
    }

    /// Sends `msg` to `to`, delivered after `delay`.
    pub fn send_control(&mut self, to: NodeId, delay: SimDuration, msg: ControlMsg) {
        self.actions.push(Action::Control { to, delay, msg });
    }

    /// Sends `marker` back to the edge router that generated it, delayed by
    /// the reverse-path propagation delay from this node (paper §2 step 2).
    pub fn send_marker_feedback(&mut self, marker: Marker) {
        let delay = self.reverse_delay_to_ingress(marker.flow);
        let from = self.node;
        self.send_control(
            marker.edge,
            delay,
            ControlMsg::MarkerFeedback { marker, from },
        );
    }

    /// Schedules `timer` to fire on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, timer: TimerKind) {
        self.actions.push(Action::Timer { delay, timer });
    }

    /// Whether a control-plane [`Probe`] is installed.
    ///
    /// Logic that would schedule *extra events* purely to publish
    /// telemetry (e.g. a sampling timer) must gate them on this, so that
    /// a probe-less run has an event stream identical to a build without
    /// telemetry at all.
    pub fn probe_enabled(&self) -> bool {
        self.probe.is_some()
    }

    /// Publishes a control-plane sample to the installed probe, if any.
    ///
    /// With no probe installed this is a single branch; with one
    /// installed it is a `RefCell` borrow and a `Copy` — no allocation
    /// either way (the zero-alloc contract, see
    /// [`telemetry`](crate::telemetry)).
    pub fn publish(&self, sample: Sample) {
        if let Some(p) = self.probe {
            p.borrow_mut().record(self.now, self.node, &sample);
        }
    }
}

/// Behaviour of a node.
///
/// Implementations are single-threaded and owned by the network; all
/// callbacks receive a [`Ctx`] through which every side effect flows.
/// Default implementations ignore the event.
pub trait RouterLogic {
    /// Invoked once at simulation start; schedule initial timers here.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// A packet has arrived at this node and needs a forwarding decision.
    ///
    /// The default forwards along the flow's path. (Packets arriving at a
    /// flow's egress node are delivered by the network and never reach the
    /// logic.)
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        ctx.emit(packet);
    }

    /// A timer scheduled by this logic has expired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
        let _ = (ctx, timer);
    }

    /// A control message addressed to this node has arrived.
    fn on_control(&mut self, ctx: &mut Ctx<'_>, msg: ControlMsg) {
        let _ = (ctx, msg);
    }

    /// A flow whose ingress is this node has become active.
    fn on_flow_start(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let _ = (ctx, flow);
    }

    /// A flow whose ingress is this node has stopped.
    fn on_flow_stop(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let _ = (ctx, flow);
    }

    /// Exports end-of-run measurements (called once when the report is
    /// assembled).
    fn report(&self, now: SimTime) -> LogicReport {
        let _ = now;
        LogicReport::default()
    }
}

/// Minimal transit logic: forwards every packet along its flow's path.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForwardLogic;

impl RouterLogic for ForwardLogic {}

/// A Poisson traffic source for testing and sensitivity ablations: emits
/// packets with exponentially distributed gaps at a fixed mean rate for
/// every active flow whose ingress is this node.
#[derive(Debug)]
pub struct PoissonSource {
    rng: DetRng,
    rate_pps: f64,
    emitted: u64,
}

const POISSON_EMIT: u32 = 1;

impl PoissonSource {
    /// Creates a source with mean rate `rate_pps` packets per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_pps` is not strictly positive.
    pub fn new(seed: u64, rate_pps: f64) -> Self {
        assert!(rate_pps > 0.0, "source rate must be positive");
        PoissonSource {
            rng: DetRng::new(seed),
            rate_pps,
            emitted: 0,
        }
    }

    fn schedule_next(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let gap = self.rng.exp(self.rate_pps);
        ctx.set_timer(
            SimDuration::from_secs_f64(gap),
            TimerKind::with_param(POISSON_EMIT, flow.pack()),
        );
    }
}

impl RouterLogic for PoissonSource {
    fn on_flow_start(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        self.schedule_next(ctx, flow);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
        if timer.tag != POISSON_EMIT {
            return;
        }
        let flow = FlowId::unpack(timer.param);
        // The chain ends when the flow stops — or when its slot has been
        // recycled to a new generation (the id no longer matches).
        if ctx.flow(flow).id != flow || !ctx.flow(flow).is_active_at(ctx.now()) {
            return;
        }
        let packet = ctx.new_packet(flow);
        ctx.emit(packet);
        self.emitted += 1;
        self.schedule_next(ctx, flow);
    }

    fn report(&self, _now: SimTime) -> LogicReport {
        let mut counters = BTreeMap::new();
        counters.insert("emitted_packets".to_owned(), self.emitted as f64);
        LogicReport {
            flow_rates: DenseMap::new(),
            counters,
        }
    }
}

/// A constant-rate source: emits packets with fixed gaps at `rate_pps` for
/// every active flow whose ingress is this node. Useful as an unmanaged
/// (non-adaptive) load generator.
#[derive(Debug)]
pub struct CbrSource {
    /// Inter-packet gap, fixed for the source's lifetime; precomputed
    /// so the emission path skips the float-to-duration conversion.
    gap: SimDuration,
    emitted: u64,
}

const CBR_EMIT: u32 = 2;

impl CbrSource {
    /// Creates a source with fixed rate `rate_pps` packets per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_pps` is not strictly positive.
    pub fn new(rate_pps: f64) -> Self {
        assert!(rate_pps > 0.0, "source rate must be positive");
        CbrSource {
            gap: SimDuration::from_secs_f64(1.0 / rate_pps),
            emitted: 0,
        }
    }
}

impl RouterLogic for CbrSource {
    fn on_flow_start(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        ctx.set_timer(
            SimDuration::ZERO,
            TimerKind::with_param(CBR_EMIT, flow.pack()),
        );
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerKind) {
        if timer.tag != CBR_EMIT {
            return;
        }
        let flow = FlowId::unpack(timer.param);
        // See `PoissonSource`: a recycled slot ends stale chains too.
        if ctx.flow(flow).id != flow || !ctx.flow(flow).is_active_at(ctx.now()) {
            return;
        }
        let packet = ctx.new_packet(flow);
        ctx.emit(packet);
        self.emitted += 1;
        ctx.set_timer(self.gap, TimerKind::with_param(CBR_EMIT, flow.pack()));
    }

    fn report(&self, _now: SimTime) -> LogicReport {
        let mut counters = BTreeMap::new();
        counters.insert("emitted_packets".to_owned(), self.emitted as f64);
        LogicReport {
            flow_rates: DenseMap::new(),
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_kind_constructors() {
        assert_eq!(TimerKind::tagged(3), TimerKind { tag: 3, param: 0 });
        assert_eq!(TimerKind::with_param(3, 9), TimerKind { tag: 3, param: 9 });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn poisson_rejects_zero_rate() {
        PoissonSource::new(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn cbr_rejects_zero_rate() {
        CbrSource::new(0.0);
    }
}
