//! Dense, id-indexed state storage for the hot path.
//!
//! The simulator's entity ids ([`FlowId`], [`NodeId`], [`LinkId`]) are
//! small contiguous `u32` indices handed out by the topology builder, so
//! per-entity state never needs an ordered tree: a flat slab indexed by
//! [`SlabKey::index`] gives O(1) access with no pointer chasing, and
//! iterating the slab in index order reproduces exactly the ascending-key
//! order a `BTreeMap` would give — which is what keeps report rendering
//! and epoch scans deterministic (DESIGN.md §13).
//!
//! [`DenseMap`] is deliberately map-shaped (`insert`/`get`/`remove`/
//! `iter` and a map-style `Debug`) so converting a `BTreeMap<Id, V>` site
//! is mechanical and the `Debug`-rendered reports used by the
//! byte-identity oracles are unchanged. [`DenseMap::clear`] keeps the
//! backing allocation, so per-epoch state resets stay allocation-free
//! (see `crates/netsim/tests/zero_alloc.rs`).

use std::fmt;
use std::marker::PhantomData;
use std::ops::Index;

use crate::ids::{FlowId, LinkId, NodeId};

/// A key type usable as a dense slab index.
///
/// Implementations must be a bijection between keys and small
/// non-negative integers: `from_index(k.index()) == k`, and indices
/// should be contiguous from zero for the slab to stay dense.
pub trait SlabKey: Copy + Eq {
    /// Returns the raw slab index of this key.
    fn index(self) -> usize;
    /// Reconstructs the key from a raw slab index.
    fn from_index(index: usize) -> Self;
}

macro_rules! slab_key {
    ($($ty:ty),*) => {
        $(impl SlabKey for $ty {
            fn index(self) -> usize {
                <$ty>::index(self)
            }
            fn from_index(index: usize) -> Self {
                <$ty>::from_index(index)
            }
        })*
    };
}

slab_key!(FlowId, NodeId, LinkId);

/// A map from a [`SlabKey`] to `V`, stored as a flat slab.
///
/// Lookup, insertion and removal are O(1); iteration visits entries in
/// ascending key order (the `BTreeMap` order) and is O(capacity), where
/// capacity is one past the largest index ever inserted.
pub struct DenseMap<K: SlabKey, V> {
    slots: Vec<Option<V>>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: SlabKey, V> DenseMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DenseMap {
            slots: Vec::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Creates an empty map with room for keys `0..capacity` without
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        DenseMap {
            slots: Vec::with_capacity(capacity),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Number of entries in the map.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a reference to the value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.slots.get(key.index()).and_then(Option::as_ref)
    }

    /// Returns a mutable reference to the value for `key`, if present.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.slots.get_mut(key.index()).and_then(Option::as_mut)
    }

    /// Whether the map holds an entry for `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `value` for `key`, returning the previous value if any.
    /// Grows the slab if `key` indexes past the current end.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let i = key.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let old = self.slots[i].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value for `key`, if present. The slot (and
    /// the slab's allocation) is retained for reuse.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let old = self.slots.get_mut(key.index()).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Returns a mutable reference to the value for `key`, inserting
    /// `default()` first if absent. The dense replacement for
    /// `entry(key).or_insert_with(default)`.
    pub fn entry_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let i = key.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let slot = &mut self.slots[i];
        if slot.is_none() {
            *slot = Some(default());
            self.len += 1;
        }
        slot.as_mut().expect("slot was just filled")
    }

    /// Removes every entry, keeping the backing allocation so refilling
    /// up to the previous capacity never allocates.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    /// Keeps only the entries for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(K, &mut V) -> bool) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(v) = slot {
                if !keep(K::from_index(i), v) {
                    *slot = None;
                    self.len -= 1;
                }
            }
        }
    }

    /// One past the largest key index ever occupied — the exclusive
    /// bound for an index loop `for i in 0..map.key_bound()`. Such a
    /// loop visits entries in key order without borrowing the map
    /// across iterations (the allocation-free epoch-scan idiom).
    pub fn key_bound(&self) -> usize {
        self.slots.len()
    }

    /// Iterates `(key, &value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (K::from_index(i), v)))
    }

    /// Iterates `(key, &mut value)` pairs in ascending key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_mut().map(|v| (K::from_index(i), v)))
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterates mutable values in ascending key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }
}

impl<K: SlabKey, V> Default for DenseMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: SlabKey, V: Clone> Clone for DenseMap<K, V> {
    fn clone(&self) -> Self {
        DenseMap {
            slots: self.slots.clone(),
            len: self.len,
            _key: PhantomData,
        }
    }
}

impl<K: SlabKey, V: PartialEq> PartialEq for DenseMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        // Trailing empty slots are not observable; compare entries.
        self.len == other.len
            && self
                .iter()
                .zip(other.iter())
                .all(|((ka, va), (kb, vb))| ka == kb && va == vb)
    }
}

impl<K: SlabKey + fmt::Debug, V: fmt::Debug> fmt::Debug for DenseMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Map-shaped, in key order: byte-identical to the rendering of
        // the BTreeMap this type replaces, which is what the full-report
        // byte-identity oracles compare.
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: SlabKey, V> Index<&K> for DenseMap<K, V> {
    type Output = V;

    fn index(&self, key: &K) -> &V {
        self.get(key).expect("no entry for key in DenseMap")
    }
}

impl<K: SlabKey, V> FromIterator<(K, V)> for DenseMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = DenseMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A sorted set of slab keys: the **active subset** of a [`DenseMap`].
///
/// Per-epoch loops used to walk `0..map.key_bound()` — O(total keys
/// ever) per epoch, which under flow churn means every epoch pays for
/// every flow that ever existed. An `ActiveSet` maintained on
/// start/stop keeps those loops O(active): membership is a sorted
/// `Vec<u32>` of slot indices, so iteration still visits keys in
/// ascending order (the same order as the full scan, preserving
/// report and telemetry byte-identity) and insert/remove are a binary
/// search plus a memmove — fine for the arrival/departure rate, and
/// free of per-epoch allocation.
///
/// Position-indexed access ([`len`](ActiveSet::len)/
/// [`get`](ActiveSet::get)) lets callers loop without borrowing the
/// set, so the body can call `&mut self` methods.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActiveSet<K: SlabKey> {
    indices: Vec<u32>,
    _key: PhantomData<K>,
}

impl<K: SlabKey> ActiveSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        ActiveSet {
            indices: Vec::new(),
            _key: PhantomData,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The member at sorted position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    pub fn get(&self, pos: usize) -> K {
        K::from_index(self.indices[pos] as usize)
    }

    /// Whether `key`'s slot is a member.
    pub fn contains(&self, key: K) -> bool {
        self.indices.binary_search(&(key.index() as u32)).is_ok()
    }

    /// Adds `key`'s slot; returns `true` if it was newly added.
    pub fn insert(&mut self, key: K) -> bool {
        let idx = key.index() as u32;
        match self.indices.binary_search(&idx) {
            Ok(_) => false,
            Err(pos) => {
                self.indices.insert(pos, idx);
                true
            }
        }
    }

    /// Removes `key`'s slot; returns `true` if it was a member.
    pub fn remove(&mut self, key: K) -> bool {
        match self.indices.binary_search(&(key.index() as u32)) {
            Ok(pos) => {
                self.indices.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates members in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.indices.iter().map(|&i| K::from_index(i as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: usize) -> FlowId {
        FlowId::from_index(i)
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m: DenseMap<FlowId, u32> = DenseMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(f(3), 30), None);
        assert_eq!(m.insert(f(1), 10), None);
        assert_eq!(m.insert(f(3), 31), Some(30));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&f(3)), Some(&31));
        assert_eq!(m.get(&f(0)), None);
        assert_eq!(m.remove(&f(3)), Some(31));
        assert_eq!(m.remove(&f(3)), None);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&f(1)));
    }

    #[test]
    fn iteration_is_in_key_order() {
        let mut m: DenseMap<FlowId, &str> = DenseMap::new();
        m.insert(f(5), "e");
        m.insert(f(0), "a");
        m.insert(f(2), "c");
        let keys: Vec<usize> = m.keys().map(|k| k.index()).collect();
        assert_eq!(keys, vec![0, 2, 5]);
        let values: Vec<&str> = m.values().copied().collect();
        assert_eq!(values, vec!["a", "c", "e"]);
    }

    #[test]
    fn debug_matches_btreemap_rendering() {
        use std::collections::BTreeMap;
        let mut dense: DenseMap<FlowId, u32> = DenseMap::new();
        let mut tree: BTreeMap<FlowId, u32> = BTreeMap::new();
        for (i, v) in [(4, 44), (1, 11), (9, 99)] {
            dense.insert(f(i), v);
            tree.insert(f(i), v);
        }
        assert_eq!(format!("{dense:?}"), format!("{tree:?}"));
        assert_eq!(format!("{:#?}", dense), format!("{:#?}", tree));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m: DenseMap<FlowId, u64> = DenseMap::new();
        for i in 0..64 {
            m.insert(f(i), i as u64);
        }
        let cap = m.slots.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.slots.capacity(), cap);
        // Slots are retained, so refilling does not grow the Vec.
        for i in 0..64 {
            m.insert(f(i), i as u64);
        }
        assert_eq!(m.slots.capacity(), cap);
    }

    #[test]
    fn entry_or_insert_with_inserts_once() {
        let mut m: DenseMap<NodeId, Vec<u32>> = DenseMap::new();
        m.entry_or_insert_with(NodeId::from_index(2), Vec::new)
            .push(7);
        m.entry_or_insert_with(NodeId::from_index(2), Vec::new)
            .push(8);
        assert_eq!(m.len(), 1);
        assert_eq!(m[&NodeId::from_index(2)], vec![7, 8]);
    }

    #[test]
    fn retain_filters_entries() {
        let mut m: DenseMap<LinkId, u32> = DenseMap::new();
        for i in 0..6 {
            m.insert(LinkId::from_index(i), i as u32);
        }
        m.retain(|k, v| k.index() % 2 == 0 && *v < 4);
        let kept: Vec<u32> = m.values().copied().collect();
        assert_eq!(kept, vec![0, 2]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn equality_ignores_trailing_capacity() {
        let mut a: DenseMap<FlowId, u32> = DenseMap::new();
        let mut b: DenseMap<FlowId, u32> = DenseMap::new();
        a.insert(f(1), 1);
        b.insert(f(9), 9);
        b.insert(f(1), 1);
        b.remove(&f(9));
        assert_eq!(a, b);
    }

    #[test]
    fn active_set_stays_sorted_and_deduplicated() {
        let mut s: ActiveSet<FlowId> = ActiveSet::new();
        assert!(s.insert(f(5)));
        assert!(s.insert(f(1)));
        assert!(s.insert(f(3)));
        assert!(!s.insert(f(3)), "double insert is a no-op");
        assert_eq!(s.len(), 3);
        let order: Vec<usize> = s.iter().map(|k| k.index()).collect();
        assert_eq!(order, vec![1, 3, 5], "iteration is in ascending key order");
        assert!(s.contains(f(3)));
        assert!(s.remove(f(3)));
        assert!(!s.remove(f(3)), "double remove is a no-op");
        assert!(!s.contains(f(3)));
        assert_eq!(s.get(0).index(), 1);
        assert_eq!(s.get(1).index(), 5);
    }

    #[test]
    fn active_set_membership_is_by_slot_not_generation() {
        // The set tracks slots; a recycled slot's new occupant replaces
        // the old membership rather than coexisting with it.
        let mut s: ActiveSet<FlowId> = ActiveSet::new();
        s.insert(FlowId::with_generation(2, 1));
        assert!(s.contains(FlowId::with_generation(2, 5)));
        assert!(!s.insert(f(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn active_set_position_loop_matches_full_scan_order() {
        let mut map: DenseMap<FlowId, u32> = DenseMap::new();
        let mut set: ActiveSet<FlowId> = ActiveSet::new();
        for i in [9, 0, 4, 7] {
            map.insert(f(i), i as u32);
            set.insert(f(i));
        }
        map.remove(&f(4));
        set.remove(f(4));
        let scan: Vec<u32> = (0..map.key_bound())
            .filter_map(|i| map.get(&f(i)).copied())
            .collect();
        let mut via_set = Vec::new();
        for pos in 0..set.len() {
            via_set.push(*map.get(&set.get(pos)).unwrap());
        }
        assert_eq!(scan, via_set);
    }
}
