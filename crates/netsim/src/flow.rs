//! Edge-to-edge flows: paths, rate weights, and activation schedules.

use sim_core::time::SimTime;

use crate::ids::{FlowId, LinkId, NodeId};

/// Which sender drives a flow at its ingress edge.
///
/// The default, [`Limd`](Transport::Limd), is the paper's open-loop model:
/// a shaped source emitting at the edge's allowed rate `b_g`, with no
/// sequencing or acknowledgements. The other two variants are ack-clocked
/// closed-loop transports built on the go-back-N sender
/// ([`transport::GbnSender`](crate::transport::GbnSender)); the enum value
/// selects the congestion controller the sender instantiates for the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Open-loop LIMD shaping at the edge (the paper's model).
    #[default]
    Limd,
    /// Go-back-N with the window-based LIMD controller: weight-
    /// proportional epoch increase, halving on congestion signals.
    Gbn,
    /// Go-back-N with Reno-style AIMD: slow start, per-ack linear
    /// increase, halving on signals, window collapse on RTO.
    Reno,
}

/// Declarative description of a flow, passed to
/// [`TopologyBuilder::flow`](crate::topology::TopologyBuilder::flow).
///
/// A flow is an *edge-to-edge* aggregate (paper §2): it enters the network
/// cloud at the first node of `path` (its ingress edge router) and leaves
/// at the last node (its egress edge router).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Hop-by-hop node path; must contain at least two nodes, and every
    /// consecutive pair must be connected by a link.
    pub path: Vec<NodeId>,
    /// The flow's rate weight `w(f)` (its rate class).
    pub weight: u32,
    /// Payload size of the flow's packets in bytes.
    pub packet_size: u32,
    /// Minimum rate contract in packets per second (0 = best effort).
    /// Rate-adaptive edge logic must never throttle the flow below this
    /// floor; admission control (keeping floors feasible) is the
    /// operator's job.
    pub min_rate: f64,
    /// Periods during which the flow is active: `(start, stop)`; `None`
    /// means "until the end of the simulation".
    pub activations: Vec<(SimTime, Option<SimTime>)>,
    /// The sender driving the flow at its ingress edge.
    pub transport: Transport,
}

impl FlowSpec {
    /// Creates a flow over `path` with rate weight `weight`, 1 KB packets
    /// (the paper's fixed packet size) and no activations yet.
    ///
    /// # Panics
    ///
    /// Panics if `path` has fewer than two nodes or `weight` is zero.
    pub fn new(path: Vec<NodeId>, weight: u32) -> Self {
        assert!(path.len() >= 2, "a flow path needs at least two nodes");
        assert!(weight > 0, "rate weight must be positive");
        FlowSpec {
            path,
            weight,
            packet_size: 1000,
            min_rate: 0.0,
            activations: Vec::new(),
            transport: Transport::default(),
        }
    }

    /// Selects the flow's transport (builder-style); defaults to the
    /// open-loop [`Transport::Limd`].
    pub fn transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Sets a minimum rate contract in packets per second (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `min_rate` is negative or not finite.
    pub fn min_rate(mut self, min_rate: f64) -> Self {
        assert!(
            min_rate.is_finite() && min_rate >= 0.0,
            "minimum rate must be finite and non-negative, got {min_rate}"
        );
        self.min_rate = min_rate;
        self
    }

    /// Adds an activation period (builder-style). `stop = None` keeps the
    /// flow active until the simulation ends.
    pub fn active(mut self, start: SimTime, stop: Option<SimTime>) -> Self {
        if let Some(stop) = stop {
            assert!(stop > start, "flow stop must come after start");
        }
        self.activations.push((start, stop));
        self
    }

    /// Sets the packet size in bytes (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn packet_size(mut self, size: u32) -> Self {
        assert!(size > 0, "packet size must be positive");
        self.packet_size = size;
        self
    }
}

/// Resolved, immutable description of a flow inside a built network.
#[derive(Debug, Clone)]
pub struct FlowInfo {
    /// The flow's identifier.
    pub id: FlowId,
    /// The flow's rate weight `w(f)`.
    pub weight: u32,
    /// Payload size in bytes.
    pub packet_size: u32,
    /// Minimum rate contract in packets per second (0 = best effort).
    pub min_rate: f64,
    /// Hop-by-hop node path.
    pub path: Vec<NodeId>,
    /// `hops[i]` is the link from `path[i]` to `path[i+1]`.
    pub hops: Vec<LinkId>,
    /// Activation periods, normalized: sorted by start, with adjacent or
    /// overlapping windows coalesced (see [`normalize_activations`]).
    pub activations: Vec<(SimTime, Option<SimTime>)>,
    /// The sender driving the flow at its ingress edge.
    pub transport: Transport,
    /// `next_hops[node]` is the outgoing link at that node (O(1) lookup
    /// on the per-packet forwarding path; derived from `path`/`hops`).
    next_hops: Vec<Option<LinkId>>,
    /// A churn-created flow: it runs exactly one activation window and
    /// is then retired, its table slot recycled. Edge logic drops its
    /// per-flow state on stop instead of keeping it for a restart.
    transient: bool,
}

/// Sorts activation windows by start time and coalesces overlapping or
/// back-to-back windows (`next.start <= prev.stop` merges into one).
///
/// This is the **lifecycle-ordering invariant** (DESIGN.md §14): after
/// normalization no flow ever has a stop and a start scheduled at the
/// same instant, so the engine never has to referee the order of a
/// `FlowStop`/`FlowStart` pair at equal timestamps — the pair simply
/// does not exist. A schedule like `(0, 5), (5, 10)` becomes `(0, 10)`.
pub fn normalize_activations(
    mut activations: Vec<(SimTime, Option<SimTime>)>,
) -> Vec<(SimTime, Option<SimTime>)> {
    activations.sort_by_key(|&(start, stop)| (start, stop.is_none(), stop));
    let mut out: Vec<(SimTime, Option<SimTime>)> = Vec::with_capacity(activations.len());
    for (start, stop) in activations {
        match out.last_mut() {
            Some((_, prev_stop)) if prev_stop.is_none_or(|s| start <= s) => {
                // Overlaps or abuts the previous window: extend it.
                *prev_stop = match (*prev_stop, stop) {
                    (None, _) | (_, None) => None,
                    (Some(a), Some(b)) => Some(a.max(b)),
                };
            }
            _ => out.push((start, stop)),
        }
    }
    out
}

impl FlowInfo {
    /// Resolves a flow from its path and hop links. `hops[i]` must be
    /// the link from `path[i]` to `path[i+1]`. Activation windows are
    /// normalized (sorted and coalesced).
    pub fn new(
        id: FlowId,
        weight: u32,
        packet_size: u32,
        min_rate: f64,
        path: Vec<NodeId>,
        hops: Vec<LinkId>,
        activations: Vec<(SimTime, Option<SimTime>)>,
    ) -> Self {
        debug_assert_eq!(hops.len() + 1, path.len(), "one hop per path edge");
        let table_len = path.iter().map(|n| n.index() + 1).max().unwrap_or(0);
        let mut next_hops = vec![None; table_len];
        for (i, &node) in path.iter().enumerate() {
            next_hops[node.index()] = hops.get(i).copied();
        }
        FlowInfo {
            id,
            weight,
            packet_size,
            min_rate,
            path,
            hops,
            activations: normalize_activations(activations),
            transport: Transport::default(),
            next_hops,
            transient: false,
        }
    }

    /// Sets the flow's transport (builder-style); churn-created flows
    /// keep the open-loop default.
    pub(crate) fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Marks the flow as churn-created (builder-style; see
    /// [`FlowInfo::is_transient`]).
    pub(crate) fn transient(mut self) -> Self {
        self.transient = true;
        self
    }

    /// Whether this flow was created by the churn generator: it has a
    /// single activation window, will never restart, and its slot is
    /// recycled after a drain period. Edge logic uses this to drop the
    /// flow's state on stop (keeping resident state O(active flows))
    /// instead of retaining it for a possible reactivation.
    pub fn is_transient(&self) -> bool {
        self.transient
    }

    /// The ingress edge router (first node of the path).
    pub fn ingress(&self) -> NodeId {
        self.path[0]
    }

    /// The egress edge router (last node of the path).
    pub fn egress(&self) -> NodeId {
        *self.path.last().expect("flow path is non-empty")
    }

    /// Returns the outgoing link for this flow at `node`, or `None` if
    /// `node` is the egress (or not on the path).
    pub fn next_hop(&self, node: NodeId) -> Option<LinkId> {
        self.next_hops.get(node.index()).copied().flatten()
    }

    /// Returns `true` if the flow is scheduled to be active at `t`.
    pub fn is_active_at(&self, t: SimTime) -> bool {
        self.activation_index_at(t).is_some()
    }

    /// Returns the index of the activation window covering `t`, if any.
    ///
    /// Windows are normalized (sorted, coalesced), so at most one covers
    /// any instant. The dispatcher uses this to tell a *fresh* start (a
    /// later window whose predecessor's stop was swallowed by a pause)
    /// from a *duplicate* start inside the same window.
    pub fn activation_index_at(&self, t: SimTime) -> Option<usize> {
        self.activations
            .iter()
            .position(|&(start, stop)| t >= start && stop.is_none_or(|s| t < s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn spec_builder_accumulates_activations() {
        let s = FlowSpec::new(vec![n(0), n(1)], 2)
            .active(SimTime::ZERO, Some(SimTime::from_secs(5)))
            .active(SimTime::from_secs(10), None)
            .packet_size(500);
        assert_eq!(s.activations.len(), 2);
        assert_eq!(s.packet_size, 500);
    }

    #[test]
    #[should_panic(expected = "two nodes")]
    fn single_node_path_rejected() {
        FlowSpec::new(vec![n(0)], 1);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn zero_weight_rejected() {
        FlowSpec::new(vec![n(0), n(1)], 0);
    }

    #[test]
    fn min_rate_builder() {
        let s = FlowSpec::new(vec![n(0), n(1)], 1).min_rate(25.0);
        assert_eq!(s.min_rate, 25.0);
        assert_eq!(FlowSpec::new(vec![n(0), n(1)], 1).min_rate, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_min_rate_rejected() {
        FlowSpec::new(vec![n(0), n(1)], 1).min_rate(-1.0);
    }

    #[test]
    #[should_panic(expected = "after start")]
    fn inverted_activation_rejected() {
        FlowSpec::new(vec![n(0), n(1)], 1)
            .active(SimTime::from_secs(2), Some(SimTime::from_secs(1)));
    }

    fn info() -> FlowInfo {
        FlowInfo::new(
            FlowId::from_index(0),
            1,
            1000,
            0.0,
            vec![n(0), n(1), n(2)],
            vec![LinkId(10), LinkId(11)],
            vec![
                (SimTime::ZERO, Some(SimTime::from_secs(5))),
                (SimTime::from_secs(10), None),
            ],
        )
    }

    #[test]
    fn next_hop_follows_path() {
        let f = info();
        assert_eq!(f.next_hop(n(0)), Some(LinkId(10)));
        assert_eq!(f.next_hop(n(1)), Some(LinkId(11)));
        assert_eq!(f.next_hop(n(2)), None);
        assert_eq!(f.next_hop(n(9)), None);
        assert_eq!(f.ingress(), n(0));
        assert_eq!(f.egress(), n(2));
    }

    #[test]
    fn activation_windows() {
        let f = info();
        assert!(f.is_active_at(SimTime::ZERO));
        assert!(f.is_active_at(SimTime::from_secs(4)));
        assert!(!f.is_active_at(SimTime::from_secs(5)));
        assert!(!f.is_active_at(SimTime::from_secs(7)));
        assert!(f.is_active_at(SimTime::from_secs(100)));
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn back_to_back_windows_coalesce() {
        // `stop == next start` used to schedule a FlowStop and a
        // FlowStart at the same instant, and push order decided which
        // won. Normalization removes the pair entirely.
        let norm = normalize_activations(vec![(t(0), Some(t(5))), (t(5), Some(t(10)))]);
        assert_eq!(norm, vec![(t(0), Some(t(10)))]);
    }

    #[test]
    fn overlapping_and_unsorted_windows_coalesce() {
        let norm = normalize_activations(vec![
            (t(20), None),
            (t(0), Some(t(4))),
            (t(3), Some(t(8))),
            (t(12), Some(t(15))),
            (t(22), Some(t(30))),
        ]);
        assert_eq!(
            norm,
            vec![(t(0), Some(t(8))), (t(12), Some(t(15))), (t(20), None)]
        );
    }

    #[test]
    fn disjoint_windows_survive_normalization() {
        let windows = vec![(t(0), Some(t(1))), (t(3), Some(t(4)))];
        assert_eq!(normalize_activations(windows.clone()), windows);
    }

    #[test]
    fn open_window_absorbs_everything_after_it() {
        let norm = normalize_activations(vec![(t(0), None), (t(50), Some(t(60)))]);
        assert_eq!(norm, vec![(t(0), None)]);
    }

    #[test]
    fn flows_are_not_transient_by_default() {
        assert!(!info().is_transient());
        assert!(info().transient().is_transient());
    }
}
